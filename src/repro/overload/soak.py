"""Seeded overload soak: a flooding insider vs. both stacks.

The scenario the §2.3 threat model implies but the reproduction never
ran: a *joined* member (``mallory``) floods the leader with sealed APP
frames — mostly byte-identical replays, the cheapest insider flood —
at several times the leader's service rate, while honest members keep
joining (a trickle, then a 10× surge halfway through).  Two stacks run
the identical seeded workload:

* **unprotected** — the seed arrangement: one unbounded FIFO intake,
  first-come-first-served.  The backlog grows without bound, honest
  join frames queue behind thousands of flood frames, and the join
  p99 blows through the SLO (most surge joins never complete at all).
* **protected** — the same leader behind a
  :class:`~repro.overload.mailbox.BoundedMailbox` with per-sender
  fair-share admission, priority classes (joins outrank app traffic),
  and a :class:`~repro.overload.brownout.BrownoutController` that
  coalesces membership rekeys while saturated.  The queue stays
  bounded, the shed pain lands almost entirely on the flooder, and
  honest join p99 stays inside the SLO.

Everything runs on a :class:`~repro.util.clock.VirtualClock` with a
:class:`~repro.crypto.rng.DeterministicRandom` — two runs of the same
seed produce byte-identical telemetry JSONL (the CI check).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import (
    Joined,
    RekeyPolicy,
    UserDirectory,
)
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.member import MemberProtocol, MemberState
from repro.overload.admission import FairShareAdmission, FairShareConfig
from repro.overload.brownout import BrownoutConfig, BrownoutController
from repro.overload.mailbox import BoundedMailbox, MailboxConfig
from repro.telemetry.events import EventBus
from repro.util.clock import VirtualClock
from repro.wire.message import Envelope

FLOODER = "mallory"


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for one overload soak (both stacks run the same values)."""

    seed: int = 7
    #: Virtual seconds of soak.
    duration: float = 20.0
    #: Scheduler tick.
    dt: float = 0.1
    #: Frames the leader can service per virtual second.
    service_rate: float = 80.0
    #: Insider flood rate (sealed APP frames per virtual second).
    flood_rate: float = 240.0
    #: The flood stops here (< duration), so the protected stack's
    #: brownout hysteresis and recovery are part of the soak too.
    flood_until: float = 16.0
    #: Honest members joining as a baseline trickle.
    baseline_members: int = 8
    #: Seconds between baseline join starts (first at t=1).
    baseline_spacing: float = 1.0
    #: The surge: this many extra members all start at ``surge_at`` —
    #: with spacing 1.0 that is a 10× instantaneous join rate.
    surge_members: int = 10
    surge_at: float = 12.0
    #: Joining members retransmit a half-open handshake this often.
    retransmit_interval: float = 1.0
    #: Honest-member join p99 objective (virtual seconds).
    slo_join_p99: float = 2.0
    #: Protected-stack intake bound.
    mailbox_capacity: int = 128
    #: Protected-stack per-sender fair share.
    fair_rate: float = 10.0
    fair_burst: float = 20.0

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.dt <= 0:
            raise ValueError("duration and dt must be > 0")
        if self.service_rate <= 0 or self.flood_rate < 0:
            raise ValueError("rates must be sensible")
        if self.baseline_members < 1:
            raise ValueError("need at least one honest member")


@dataclass
class StackReport:
    """What one stack did under the identical seeded workload."""

    stack: str
    joins_started: int = 0
    joins_completed: int = 0
    joins_pending: int = 0
    join_p50: float | None = None
    join_p99: float | None = None
    slo_met: bool = False
    max_queue_depth: int = 0
    frames_offered: int = 0
    frames_shed: int = 0
    shed_capacity: int = 0
    shed_fair_share: int = 0
    shed_brownout: int = 0
    shed_flooder: int = 0
    shed_honest: int = 0
    flood_frames_serviced: int = 0
    rekeys_issued: int = 0
    coalesced_rekeys: int = 0
    brownout_episodes: int = 0
    saturation_episodes: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class OverloadReport:
    """Both stacks side by side, plus the headline verdict."""

    seed: int
    duration: float
    slo_join_p99: float
    protected: StackReport = field(default_factory=lambda: StackReport("protected"))
    unprotected: StackReport = field(default_factory=lambda: StackReport("unprotected"))

    @property
    def protection_holds(self) -> bool:
        """The acceptance shape: the protected stack meets the SLO the
        unprotected one demonstrably violates."""
        return self.protected.slo_met and not self.unprotected.slo_met

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "slo_join_p99": self.slo_join_p99,
            "protection_holds": self.protection_holds,
            "protected": self.protected.as_dict(),
            "unprotected": self.unprotected.as_dict(),
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over a sorted, non-empty list."""
    idx = max(0, min(len(sorted_values) - 1,
                     int(q * len(sorted_values) + 0.999999) - 1))
    return sorted_values[idx]


@dataclass
class _Joiner:
    member: MemberProtocol
    start_at: float
    started: bool = False
    completed_at: float | None = None
    last_retransmit: float = 0.0


class _StackRun:
    """One stack's soak: identical workload, different intake."""

    def __init__(
        self,
        stack: str,
        config: OverloadConfig,
        telemetry: EventBus | None,
    ) -> None:
        self.stack = stack
        self.config = config
        self.protected = stack == "protected"
        self.clock = VirtualClock()
        self.telemetry = telemetry
        if telemetry is not None:
            # Before any emission (the flooder's setup join below), so
            # every timestamp in the export is virtual time.
            telemetry.set_clock(self.clock)
        rng = DeterministicRandom(config.seed)
        self.directory = UserDirectory()
        self.leader = GroupLeader(
            "leader", self.directory,
            config=LeaderConfig(rekey_policy=RekeyPolicy.MANUAL),
            rng=rng.fork(f"{stack}-leader"),
            clock=self.clock,
            telemetry=telemetry,
        )
        if self.protected:
            self.mailbox = BoundedMailbox(
                f"leader/{stack}-intake",
                MailboxConfig(
                    capacity=config.mailbox_capacity,
                    fair_share=FairShareAdmission(FairShareConfig(
                        rate=config.fair_rate, burst=config.fair_burst,
                    )),
                ),
                telemetry=telemetry,
            )
            self.brownout = BrownoutController(
                f"leader/{stack}", telemetry=telemetry,
            )
        else:
            self.mailbox = None
            self.brownout = None
            self._fifo: deque[Envelope] = deque()
            self._fifo_max = 0

        # The flooding insider joins before the soak starts.
        creds = self.directory.register_password(FLOODER, "pw-mallory")
        self.flooder = MemberProtocol(
            creds, "leader", rng=rng.fork(f"{stack}-{FLOODER}"),
        )
        self._pump_direct(self.flooder, self.flooder.start_join())
        assert self.flooder.state is MemberState.CONNECTED

        # Honest joiners: a baseline trickle plus the surge batch.
        self.joiners: dict[str, _Joiner] = {}
        for i in range(config.baseline_members):
            start = 1.0 + i * config.baseline_spacing
            self._add_joiner(f"user-{i:03d}", start, rng)
        for i in range(config.surge_members):
            self._add_joiner(
                f"surge-{i:03d}", config.surge_at, rng
            )

        self.report = StackReport(stack)
        self._service_credit = 0.0
        self._flood_credit = 0.0
        self._flood_frame: Envelope | None = None

    def _add_joiner(self, user_id: str, start: float,
                    rng: DeterministicRandom) -> None:
        creds = self.directory.register_password(user_id, f"pw-{user_id}")
        member = MemberProtocol(
            creds, "leader", rng=rng.fork(f"{self.stack}-{user_id}"),
        )
        self.joiners[user_id] = _Joiner(member, start)

    # -- plumbing ------------------------------------------------------------

    def _pump_direct(self, member: MemberProtocol, first: Envelope) -> None:
        """Drive one handshake leader<->member without the intake
        (pre-soak setup only)."""
        pending = [first]
        while pending:
            frame = pending.pop(0)
            if frame.recipient == "leader":
                out, _ = self.leader.handle(frame)
            else:
                out, _ = member.handle(frame)
            pending.extend(out)

    def _offer(self, envelope: Envelope, now: float) -> None:
        """One frame arrives at the leader's intake."""
        self.report.frames_offered += 1
        if self.mailbox is not None:
            self.mailbox.offer(envelope, now)
        else:
            self._fifo.append(envelope)
            if len(self._fifo) > self._fifo_max:
                self._fifo_max = len(self._fifo)

    def _take(self) -> Envelope | None:
        if self.mailbox is not None:
            return self.mailbox.take()
        return self._fifo.popleft() if self._fifo else None

    def _deliver_to_member(self, envelope: Envelope, now: float) -> None:
        """Leader -> member direction (members are never saturated)."""
        if envelope.recipient == FLOODER:
            out, _ = self.flooder.handle(envelope)
            for frame in out:
                self._offer(frame, now)
            return
        joiner = self.joiners.get(envelope.recipient)
        if joiner is None:
            return
        out, events = joiner.member.handle(envelope)
        if joiner.completed_at is None and any(
            isinstance(e, Joined) for e in events
        ):
            joiner.completed_at = now
            self._on_join_completed(now)
        for frame in out:
            self._offer(frame, now)

    def _on_join_completed(self, now: float) -> None:
        """Membership changed: rotate the group key (maybe coalesced)."""
        issue = True
        if self.brownout is not None:
            issue = self.brownout.note_rekey_wanted(now)
        if issue:
            self.report.rekeys_issued += 1
            for frame in self.leader.rekey_now():
                self._deliver_to_member(frame, now)

    # -- the soak loop -------------------------------------------------------

    def run(self) -> StackReport:
        cfg = self.config
        now = 0.0
        flood_payload = b"flood"
        while now < cfg.duration:
            self.clock.set(now)

            # 1. The leader services its budget (last tick's backlog
            #    first, so a join always costs at least one tick).
            self._service_credit += cfg.service_rate * cfg.dt
            while self._service_credit >= 1.0:
                self._service_credit -= 1.0
                frame = self._take()
                if frame is None:
                    break
                if frame.sender == FLOODER:
                    self.report.flood_frames_serviced += 1
                out, _ = self.leader.handle(frame)
                for reply in out:
                    self._deliver_to_member(reply, now)

            tick_offered = tick_shed = 0
            if self.mailbox is not None:
                stats = self.mailbox.stats
                tick_offered = stats.offered
                tick_shed = (stats.shed_capacity + stats.shed_fair_share
                             + stats.shed_brownout)

            # 2. The insider floods: one fresh sealed frame per tick,
            #    replayed up to the flood rate (the cheap insider DoS).
            if now < cfg.flood_until:
                self._flood_credit += cfg.flood_rate * cfg.dt
                if self._flood_credit >= 1.0:
                    self._flood_frame = self.flooder.seal_app(
                        flood_payload
                    )
                while self._flood_credit >= 1.0:
                    self._flood_credit -= 1.0
                    self._offer(self._flood_frame, now)

            # 3. Honest joins start / retransmit on their schedule.
            for joiner in self.joiners.values():
                if joiner.completed_at is not None:
                    continue
                if not joiner.started and now >= joiner.start_at:
                    joiner.started = True
                    joiner.last_retransmit = now
                    self.report.joins_started += 1
                    self._offer(joiner.member.start_join(), now)
                elif joiner.started and (
                    now - joiner.last_retransmit
                    >= cfg.retransmit_interval
                ):
                    joiner.last_retransmit = now
                    frame = joiner.member.retransmit_last()
                    if frame is not None:
                        self._offer(frame, now)

            # 4. Brownout control loop (protected stack only).  The
            #    saturation signal is occupancy *or* admission pressure
            #    (this tick's shed fraction): a fair-share-contained
            #    flood keeps the queue short, but sustained shedding is
            #    still overload the leader should degrade under.
            if self.brownout is not None:
                stats = self.mailbox.stats
                offered = stats.offered - tick_offered
                shed = (stats.shed_capacity + stats.shed_fair_share
                        + stats.shed_brownout) - tick_shed
                pressure = shed / offered if offered else 0.0
                signal = max(self.mailbox.saturation, pressure)
                self.brownout.observe(signal, now)
                self.mailbox.set_brownout_classes(
                    self.brownout.shed_classes
                )
                if (not self.brownout.active
                        and self.brownout.flush_pending_rekey()):
                    self.report.rekeys_issued += 1
                    for frame in self.leader.rekey_now():
                        self._deliver_to_member(frame, now)

            now = round(now + cfg.dt, 9)

        return self._finish()

    def _finish(self) -> StackReport:
        rep = self.report
        cfg = self.config
        latencies = sorted(
            j.completed_at - j.start_at
            for j in self.joiners.values()
            if j.completed_at is not None
        )
        rep.joins_completed = len(latencies)
        rep.joins_pending = rep.joins_started - rep.joins_completed
        if latencies:
            rep.join_p50 = _percentile(latencies, 0.50)
            rep.join_p99 = _percentile(latencies, 0.99)
        # A join that never completed is an SLO violation no latency
        # percentile can hide.
        rep.slo_met = (
            rep.joins_pending == 0
            and rep.join_p99 is not None
            and rep.join_p99 <= cfg.slo_join_p99
        )
        if self.mailbox is not None:
            stats = self.mailbox.stats
            rep.max_queue_depth = stats.max_depth
            rep.shed_capacity = stats.shed_capacity
            rep.shed_fair_share = stats.shed_fair_share
            rep.shed_brownout = stats.shed_brownout
            rep.frames_shed = (
                stats.shed_capacity + stats.shed_fair_share
                + stats.shed_brownout
            )
            rep.shed_flooder = stats.shed_by_sender.get(FLOODER, 0)
            rep.shed_honest = rep.frames_shed - rep.shed_flooder
            rep.saturation_episodes = stats.saturation_episodes
        else:
            rep.max_queue_depth = self._fifo_max
        if self.brownout is not None:
            rep.brownout_episodes = self.brownout.episodes
            rep.coalesced_rekeys = self.brownout.coalesced_rekeys
        return rep


def run_overload_soak(
    config: OverloadConfig | None = None,
    *,
    telemetry: EventBus | None = None,
) -> OverloadReport:
    """Run the identical seeded workload through both stacks.

    The unprotected stack runs first, then the protected one, both on
    the supplied bus (if any) — so one exported JSONL stream tells the
    whole before/after story with one monotone sequence.
    """
    cfg = config if config is not None else OverloadConfig()
    report = OverloadReport(cfg.seed, cfg.duration, cfg.slo_join_p99)
    for stack in ("unprotected", "protected"):
        run = _StackRun(stack, cfg, telemetry)
        setattr(report, stack, run.run())
    return report


def render_report(report: OverloadReport) -> str:
    """The CLI's comparison table."""
    lines = [
        f"overload soak  seed={report.seed}  "
        f"duration={report.duration:g}s  "
        f"SLO join p99 <= {report.slo_join_p99:g}s",
        "",
        f"{'':>24}  {'unprotected':>12}  {'protected':>12}",
    ]
    rows = [
        ("joins started", "joins_started", "d"),
        ("joins completed", "joins_completed", "d"),
        ("joins pending", "joins_pending", "d"),
        ("join p50 (s)", "join_p50", "f"),
        ("join p99 (s)", "join_p99", "f"),
        ("SLO met", "slo_met", "b"),
        ("max queue depth", "max_queue_depth", "d"),
        ("frames offered", "frames_offered", "d"),
        ("frames shed", "frames_shed", "d"),
        ("  shed from flooder", "shed_flooder", "d"),
        ("  shed from honest", "shed_honest", "d"),
        ("flood frames serviced", "flood_frames_serviced", "d"),
        ("rekeys issued", "rekeys_issued", "d"),
        ("rekeys coalesced", "coalesced_rekeys", "d"),
        ("brownout episodes", "brownout_episodes", "d"),
    ]
    for title, attr, kind in rows:
        cells = []
        for rep in (report.unprotected, report.protected):
            value = getattr(rep, attr)
            if value is None:
                cells.append("-")
            elif kind == "f":
                cells.append(f"{value:.2f}")
            elif kind == "b":
                cells.append("yes" if value else "NO")
            else:
                cells.append(str(value))
        lines.append(f"{title:>24}  {cells[0]:>12}  {cells[1]:>12}")
    lines.append("")
    verdict = (
        "protection holds: bounded queue, honest joins within SLO"
        if report.protection_holds
        else "PROTECTION DID NOT HOLD"
    )
    lines.append(verdict)
    return "\n".join(lines)


__all__ = [
    "FLOODER",
    "OverloadConfig",
    "OverloadReport",
    "StackReport",
    "render_report",
    "run_overload_soak",
]
