"""Bounded, priority-aware ingest mailboxes.

The seed transport merged every peer's frames into one *unbounded*
queue — the textbook insider availability attack surface: a flooding
member grows the queue faster than the leader drains it, and honest
frames wait behind an ever-longer tail.  :class:`BoundedMailbox`
replaces that with:

* a hard **capacity** across all priority classes;
* **class queues** served strictly highest-priority-first (FIFO within
  a class), so a join never waits behind ten thousand app frames;
* **eviction**: a full mailbox accepts a higher-priority arrival by
  shedding the newest frame of the lowest occupied class — control
  traffic is never the victim of app traffic;
* **fair-share admission** (optional, a
  :class:`~repro.overload.admission.FairShareAdmission`) applied
  before capacity, so the shed pain lands on the sender causing it;
* **typed telemetry**: every shed is a
  :class:`~repro.telemetry.events.FrameShed`; crossing into
  saturation emits one
  :class:`~repro.telemetry.events.QueueSaturated` per episode
  (re-armed after draining below half capacity).

The mailbox is synchronous and time-explicit: callers pass ``now``
(virtual seconds) into :meth:`offer`.  Async drivers layer their own
wakeup primitive on top (see ``TcpLeaderEndpoint``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.overload.admission import (
    FairShareAdmission,
    PriorityClass,
    classify_frame,
)
from repro.telemetry.events import EventBus, FrameShed, QueueSaturated
from repro.wire.message import Envelope

#: Shed reasons carried in FrameShed events.
SHED_CAPACITY = "capacity"
SHED_FAIR_SHARE = "fair_share"
SHED_BROWNOUT = "brownout"


@dataclass(frozen=True)
class MailboxConfig:
    """Capacity and admission knobs for one bounded mailbox."""

    capacity: int = 1024
    #: Optional per-sender pacing; None admits everything the capacity
    #: allows.
    fair_share: object | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")


@dataclass
class MailboxStats:
    """Counters the soak report and the bench read."""

    offered: int = 0
    accepted: int = 0
    shed_capacity: int = 0
    shed_fair_share: int = 0
    shed_brownout: int = 0
    evicted: int = 0
    max_depth: int = 0
    saturation_episodes: int = 0
    #: sender -> frames shed (all reasons), the fairness evidence.
    shed_by_sender: dict[str, int] = field(default_factory=dict)


class BoundedMailbox:
    """A capacity-bounded multi-class FIFO with loud shedding."""

    def __init__(
        self,
        node: str,
        config: MailboxConfig | None = None,
        *,
        telemetry: EventBus | None = None,
    ) -> None:
        self.node = node
        self.config = config if config is not None else MailboxConfig()
        self._telemetry = telemetry
        self._classes: dict[PriorityClass, deque] = {
            cls: deque() for cls in PriorityClass
        }
        self._depth = 0
        self._saturated = False
        self.stats = MailboxStats()
        #: Priorities the brownout controller is currently shedding.
        self._browned_out: frozenset[PriorityClass] = frozenset()

    # -- state ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def capacity(self) -> int:
        return self.config.capacity

    @property
    def saturation(self) -> float:
        """Occupancy fraction in [0, 1] — the brownout input signal."""
        return self._depth / self.config.capacity

    def set_brownout_classes(self, classes) -> None:
        """Shed these priority classes at the door (brownout mode)."""
        self._browned_out = frozenset(classes)

    # -- ingest --------------------------------------------------------------

    def offer(
        self,
        envelope: Envelope,
        now: float = 0.0,
        *,
        priority: PriorityClass | None = None,
    ) -> bool:
        """Admit one frame; False (plus telemetry) when it was shed."""
        self.stats.offered += 1
        cls = priority if priority is not None else classify_frame(envelope)
        sender = envelope.sender
        if cls in self._browned_out:
            self.stats.shed_brownout += 1
            self._shed(envelope, sender, cls, SHED_BROWNOUT)
            return False
        fair = self.config.fair_share
        if fair is not None and not fair.admit(sender, cls, now):
            self.stats.shed_fair_share += 1
            self._shed(envelope, sender, cls, SHED_FAIR_SHARE)
            return False
        if self._depth >= self.config.capacity:
            self._note_saturated()
            if not self._evict_below(cls):
                self.stats.shed_capacity += 1
                self._shed(envelope, sender, cls, SHED_CAPACITY)
                return False
        self._classes[cls].append(envelope)
        self._depth += 1
        self.stats.accepted += 1
        if self._depth > self.stats.max_depth:
            self.stats.max_depth = self._depth
        if self._depth >= self.config.capacity:
            self._note_saturated()
        return True

    def _evict_below(self, cls: PriorityClass) -> bool:
        """Make room for ``cls`` by shedding the newest frame of the
        lowest-priority occupied class strictly below it."""
        for victim_cls in reversed(list(PriorityClass)):
            if victim_cls <= cls:
                return False
            queue = self._classes[victim_cls]
            if queue:
                victim = queue.pop()
                self._depth -= 1
                self.stats.evicted += 1
                self._shed(
                    victim, victim.sender, victim_cls, SHED_CAPACITY
                )
                return True
        return False

    def _shed(
        self,
        envelope: Envelope,
        sender: str,
        cls: PriorityClass,
        reason: str,
    ) -> None:
        by = self.stats.shed_by_sender
        by[sender] = by.get(sender, 0) + 1
        if self._telemetry:
            self._telemetry.emit(FrameShed(
                self.node, sender, envelope.label.name, cls.name, reason
            ))

    def _note_saturated(self) -> None:
        if self._saturated:
            return
        self._saturated = True
        self.stats.saturation_episodes += 1
        if self._telemetry:
            self._telemetry.emit(QueueSaturated(
                self.node, self._depth, self.config.capacity
            ))

    # -- drain ---------------------------------------------------------------

    def take(self) -> Envelope | None:
        """Dequeue the oldest frame of the highest occupied class."""
        for cls in PriorityClass:
            queue = self._classes[cls]
            if queue:
                self._depth -= 1
                if self._saturated and self._depth <= self.capacity // 2:
                    self._saturated = False  # re-arm the episode latch
                return queue.popleft()
        return None

    def drain(self, budget: int) -> list[Envelope]:
        """Up to ``budget`` frames, priority order (one service tick)."""
        out: list[Envelope] = []
        for _ in range(budget):
            envelope = self.take()
            if envelope is None:
                break
            out.append(envelope)
        return out


__all__ = [
    "BoundedMailbox",
    "MailboxConfig",
    "MailboxStats",
    "SHED_BROWNOUT",
    "SHED_CAPACITY",
    "SHED_FAIR_SHARE",
]
