"""Overload tolerance: the graceful-degradation substrate.

The paper's intrusion-tolerance claim is about *availability under
compromise* — yet crash, partition, and Byzantine faults were the only
ones the reproduction survived.  A single compromised member flooding
JOIN/APP frames could grow the leader's unbounded mailbox without
bound and starve honest members: an insider availability attack
squarely inside the §2.3 threat model.  This package closes that gap
with four cooperating mechanisms, each independently useful and all
free when off:

* :mod:`repro.overload.admission` — priority classes for wire frames
  (control > heartbeat > join > app) and per-sender fair-share token
  buckets, so no single sender can crowd out honest peers.
* :mod:`repro.overload.mailbox` — bounded ingest queues with typed
  :class:`~repro.telemetry.events.FrameShed` /
  :class:`~repro.telemetry.events.QueueSaturated` telemetry instead of
  silent unbounded growth; higher-priority arrivals evict the lowest
  class when full.
* :mod:`repro.overload.deadline` — EWMA-tracked operation latency
  feeding adaptive deadlines, plus deposit/withdraw retry budgets
  layered on the existing :class:`~repro.util.backoff.BackoffPolicy`.
* :mod:`repro.overload.breaker` — per-link circuit breakers
  (closed / open / half-open) with deterministic, injected time.
* :mod:`repro.overload.brownout` — a leader-side controller that,
  under sustained saturation, coalesces rekeys, defers rebalancing,
  and sheds lowest-priority work, with recovery hysteresis.

The seeded soak (:mod:`repro.overload.soak`, ``python -m repro
overload soak``) runs a flooding insider plus a 10× join surge against
the protected and unprotected stacks and shows honest-member join p99
within SLO on one and collapsing on the other.
"""

from repro.overload.admission import (
    FairShareAdmission,
    FairShareConfig,
    PriorityClass,
    TokenBucket,
    classify_frame,
)
from repro.overload.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.overload.brownout import BrownoutConfig, BrownoutController
from repro.overload.deadline import (
    AdaptiveDeadline,
    LatencyTracker,
    RetryBudget,
)
from repro.overload.mailbox import BoundedMailbox, MailboxConfig

__all__ = [
    "AdaptiveDeadline",
    "BoundedMailbox",
    "BreakerConfig",
    "BreakerState",
    "BrownoutConfig",
    "BrownoutController",
    "CircuitBreaker",
    "FairShareAdmission",
    "FairShareConfig",
    "LatencyTracker",
    "MailboxConfig",
    "PriorityClass",
    "RetryBudget",
    "TokenBucket",
    "classify_frame",
]
