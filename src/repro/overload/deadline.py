"""Adaptive deadlines and retry budgets.

Fixed timeouts are wrong twice under overload: too short, and a merely
slow system is treated as dead (retry storms that deepen the overload);
too long, and a dead link ties up a recovery path for the full budget.
:class:`LatencyTracker` follows the classic RTO estimator (RFC 6298 /
Jacobson): an EWMA of the mean plus an EWMA of the deviation, giving a
deadline of ``srtt + multiplier * dev`` clamped to ``[floor, cap]``.
It is pure arithmetic over caller-supplied samples — no clock, fully
deterministic.

:class:`RetryBudget` is the deposit/withdraw scheme from production RPC
stacks (Finagle's ``RetryBudget``): every *original* request deposits a
fraction of a retry token; every retry withdraws a whole one.  Steady
traffic earns a steady retry allowance; a correlated failure (dead
leader, partition) drains the budget after at most ``ratio`` of recent
traffic has been retried, converting a thundering retry herd into a
bounded, observable give-up.  A ``min_reserve`` floor keeps cold-start
retries (first reconnect of a quiet client) possible.

Both layer on — not replace — :class:`~repro.util.backoff.BackoffPolicy`:
backoff decides *when* the next attempt happens; the budget decides
*whether* it happens; the deadline decides *how long* it may run.
"""

from __future__ import annotations

from dataclasses import dataclass


class LatencyTracker:
    """EWMA mean + deviation over operation latencies (seconds)."""

    __slots__ = ("alpha", "beta", "srtt", "dev", "samples")

    def __init__(self, alpha: float = 0.125, beta: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise ValueError("alpha and beta must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.srtt = 0.0
        self.dev = 0.0
        self.samples = 0

    def observe(self, sample: float) -> None:
        """Fold one latency sample into the estimator."""
        if sample < 0:
            raise ValueError("latency samples must be >= 0")
        if self.samples == 0:
            self.srtt = sample
            self.dev = sample / 2.0
        else:
            err = sample - self.srtt
            self.srtt += self.alpha * err
            self.dev += self.beta * (abs(err) - self.dev)
        self.samples += 1


@dataclass(frozen=True)
class AdaptiveDeadline:
    """A deadline derived from a :class:`LatencyTracker`.

    Until ``warmup`` samples arrive the deadline is ``floor`` — a
    fresh system has no business guessing tight deadlines from one or
    two observations.
    """

    tracker: LatencyTracker
    multiplier: float = 4.0
    floor: float = 0.25
    cap: float = 30.0
    warmup: int = 3

    def __post_init__(self) -> None:
        if self.floor < 0 or self.cap < self.floor:
            raise ValueError("need 0 <= floor <= cap")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be > 0")

    def current(self) -> float:
        """The deadline (seconds) for the next operation."""
        if self.tracker.samples < self.warmup:
            return self.floor
        raw = self.tracker.srtt + self.multiplier * self.tracker.dev
        return min(self.cap, max(self.floor, raw))

    def observe(self, sample: float) -> None:
        """Convenience passthrough to the tracker."""
        self.tracker.observe(sample)


class RetryBudget:
    """Deposit-per-request / withdraw-per-retry token budget.

    ``ratio`` is the long-run retries-per-request allowance; the token
    pool is capped at ``ratio * window`` so an idle-then-failing client
    cannot burst an unbounded hoard; ``min_reserve`` whole retries are
    always available even with zero deposits (cold start).
    """

    __slots__ = ("ratio", "window", "min_reserve", "_tokens",
                 "requests", "retries", "denied")

    def __init__(
        self,
        ratio: float = 0.2,
        window: int = 50,
        min_reserve: int = 3,
    ) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("ratio must be in [0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_reserve < 0:
            raise ValueError("min_reserve must be >= 0")
        self.ratio = ratio
        self.window = window
        self.min_reserve = min_reserve
        self._tokens = float(min_reserve)
        self.requests = 0
        self.retries = 0
        self.denied = 0

    @property
    def balance(self) -> float:
        return self._tokens

    def record_request(self) -> None:
        """One original (non-retry) operation: deposit ``ratio``."""
        self.requests += 1
        cap = max(self.min_reserve, self.ratio * self.window)
        self._tokens = min(cap, self._tokens + self.ratio)

    def can_retry(self) -> bool:
        return self._tokens >= 1.0

    def record_retry(self) -> bool:
        """Withdraw one retry token; False when the budget is dry."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.retries += 1
            return True
        self.denied += 1
        return False


__all__ = ["AdaptiveDeadline", "LatencyTracker", "RetryBudget"]
