"""Admission control: priority classes + per-sender fair share.

Two orthogonal questions are answered before a frame enters a bounded
mailbox:

1. **How important is it?**  :func:`classify_frame` maps a wire label
   to a :class:`PriorityClass`.  The ordering encodes the paper's
   availability argument: losing a view-change/rekey/close frame
   (CONTROL) desyncs sessions and costs a re-authentication storm;
   losing a heartbeat costs a spurious suspicion; losing a join frame
   delays one member; losing an app frame costs a retransmission.
   Under saturation the cheap losses must happen first.
2. **Is the sender within its fair share?**  :class:`FairShareAdmission`
   keeps one :class:`TokenBucket` per sender, so one flooding insider
   exhausts *its own* bucket while honest peers' buckets stay full.
   CONTROL frames get a *separate, generous* per-sender bucket rather
   than a blanket exemption: the class is derived from the plaintext
   wire label, which the leader must not trust (see
   ``repro.net.tcp``), so an exemption would let an insider label its
   flood ``ACK``/``ADMIN_MSG`` and skip pacing entirely — filling the
   mailbox at top priority, where lower classes can never evict it.
   The control bucket is sized so honest control traffic (a handful of
   acks and rekey legs per sender) never hits it, while a mislabeled
   flood is shed just like any other flood.

Both are pure arithmetic over an explicitly passed ``now`` (virtual
seconds), so seeded soaks are deterministic and no wall clock is ever
read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.wire.labels import Label
from repro.wire.message import Envelope, unwrap_group


class PriorityClass(enum.IntEnum):
    """Frame importance under overload; lower value = served first."""

    CONTROL = 0
    HEARTBEAT = 1
    JOIN = 2
    APP = 3


#: Labels that carry session-critical control traffic (admin channel:
#: rekeys, expels, view-change certificates; acks; closes; redirects).
_CONTROL_LABELS = frozenset({
    Label.ADMIN_MSG, Label.ACK, Label.REQ_CLOSE, Label.GROUP_REDIRECT,
    Label.NEW_KEY, Label.NEW_KEY_ACK, Label.REQ_CLOSE_LEGACY,
    Label.CLOSE_CONNECTION, Label.MEM_ADDED, Label.MEM_REMOVED,
    Label.CONNECTION_DENIED,
})

#: Labels that belong to a join handshake (either stack, any leg).
_JOIN_LABELS = frozenset({
    Label.AUTH_INIT_REQ, Label.AUTH_KEY_DIST, Label.AUTH_ACK_KEY,
    Label.REQ_OPEN, Label.ACK_OPEN, Label.LEGACY_AUTH_1,
    Label.LEGACY_AUTH_2, Label.LEGACY_AUTH_3,
})

#: Data-plane flow control (cumulative acks, gap reports).  Small,
#: rare, and loss converts directly into retransmit traffic — so they
#: sit at heartbeat tier: above joins and bulk data, below the admin
#: channel.  Bulk ``DATA_MSG`` frames are deliberately *not* here: a
#: data flood must land in the APP class where fair-share pacing and
#: brownout shedding can starve the flooder, never the joins.
_DATA_CONTROL_LABELS = frozenset({Label.DATA_ACK, Label.DATA_NACK})


def classify_frame(
    envelope: Envelope, *, heartbeat_sender: str | None = None
) -> PriorityClass:
    """The priority class of one wire frame.

    ``GROUP_WRAP`` fabric envelopes are classified by their *inner*
    frame — the wrapper is routing, not intent; a malformed wrapper
    classifies as APP (it will be rejected loudly downstream anyway,
    so it deserves no priority).

    Liveness beacons are ordinary ``APP_DATA`` frames sealed by the
    leader (see ``GroupLeader.heartbeat``), indistinguishable on the
    wire from app traffic.  A caller that knows the leader's identity
    passes it as ``heartbeat_sender`` and those frames classify as
    HEARTBEAT — above joins, below control — instead of APP.
    """
    label = envelope.label
    if label is Label.GROUP_WRAP:
        try:
            _, inner = unwrap_group(envelope)
        except Exception:
            return PriorityClass.APP
        return classify_frame(inner, heartbeat_sender=heartbeat_sender)
    if label in _CONTROL_LABELS:
        return PriorityClass.CONTROL
    if label in _DATA_CONTROL_LABELS:
        return PriorityClass.HEARTBEAT
    if label in _JOIN_LABELS:
        return PriorityClass.JOIN
    if (heartbeat_sender is not None
            and label is Label.APP_DATA
            and envelope.sender == heartbeat_sender):
        return PriorityClass.HEARTBEAT
    return PriorityClass.APP


class TokenBucket:
    """A deterministic token bucket over explicit timestamps.

    ``rate`` tokens accrue per second up to ``burst``; :meth:`allow`
    spends one.  Time never comes from a wall clock — the caller passes
    ``now`` (virtual seconds), so two seeded runs make identical
    decisions.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = 0.0

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now

    def peek(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self._tokens

    def allow(self, now: float) -> bool:
        """Spend one token if available."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class FairShareConfig:
    """Per-sender pacing knobs.

    The defaults assume the soak's scale (tens of members, frames per
    virtual second in the tens); real deployments tune them like any
    rate limit.  ``control_rate``/``control_burst`` size the separate
    per-sender CONTROL bucket — generous relative to honest control
    traffic, but a hard ceiling on an insider mislabeling its flood as
    control (see the module docstring).
    """

    rate: float = 20.0
    burst: float = 40.0
    control_rate: float = 10.0
    control_burst: float = 20.0


class FairShareAdmission:
    """One token bucket per sender; floods exhaust only their own.

    Buckets are created lazily on first sight of a sender and never
    expire (the soak's sender population is bounded; a production
    deployment would LRU them).  ``sheds`` counts refusals per sender —
    the fairness evidence the bench asserts on: the flooder's count
    dwarfs every honest member's.
    """

    def __init__(self, config: FairShareConfig | None = None) -> None:
        self.config = config if config is not None else FairShareConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self._control_buckets: dict[str, TokenBucket] = {}
        self.sheds: dict[str, int] = {}
        self.admitted = 0

    def bucket(self, sender: str) -> TokenBucket:
        bucket = self._buckets.get(sender)
        if bucket is None:
            bucket = TokenBucket(self.config.rate, self.config.burst)
            self._buckets[sender] = bucket
        return bucket

    def control_bucket(self, sender: str) -> TokenBucket:
        """The separate CONTROL-class bucket for one sender.

        Separate so a sender's own app flood can never starve its
        genuine acks/rekey legs — but still a bucket, so a flood merely
        *labeled* control is paced like any other flood.
        """
        bucket = self._control_buckets.get(sender)
        if bucket is None:
            bucket = TokenBucket(
                self.config.control_rate, self.config.control_burst
            )
            self._control_buckets[sender] = bucket
        return bucket

    def admit(
        self, sender: str, priority: PriorityClass, now: float
    ) -> bool:
        """True when ``sender`` may enqueue one frame at ``now``."""
        if priority is PriorityClass.CONTROL:
            bucket = self.control_bucket(sender)
        else:
            bucket = self.bucket(sender)
        if bucket.allow(now):
            self.admitted += 1
            return True
        self.sheds[sender] = self.sheds.get(sender, 0) + 1
        return False


__all__ = [
    "FairShareAdmission",
    "FairShareConfig",
    "PriorityClass",
    "TokenBucket",
    "classify_frame",
]
