"""Brownout: planned partial degradation under sustained saturation.

A bounded mailbox keeps the leader *correct* at saturation; brownout
keeps it *useful*.  When the saturation signal (mailbox occupancy
fraction) stays above ``enter_threshold``, the controller drops into
degraded mode and the leader's drivers consult three flags:

* :attr:`BrownoutController.coalesce_rekeys` — membership-triggered
  rekeys batch into one rotation per ``rekey_interval`` instead of one
  per join/leave, trading key-freshness granularity for the O(members)
  fan-out cost of each rotation (the single most expensive control
  operation under a join surge).
* :attr:`BrownoutController.defer_rebalance` — the fabric's rebalancer
  proposals are parked; migrating groups *during* an overload spike
  adds load exactly when there is none to spare.
* :attr:`BrownoutController.shed_classes` — the priority classes the
  mailbox sheds at the door (APP under brownout), on top of fair-share
  admission.

Recovery has **hysteresis**: the controller exits only after the
signal has stayed at or below ``exit_threshold`` for ``min_dwell``
consecutive virtual seconds — a single drained tick must not flap the
group back into full-cost mode while the flood is still running.
Entry and exit are telemetry events carrying the coalescing evidence
(how many rekeys were folded, how many rebalances parked).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overload.admission import PriorityClass
from repro.telemetry.events import (
    BrownoutEntered,
    BrownoutExited,
    EventBus,
)


@dataclass(frozen=True)
class BrownoutConfig:
    """Thresholds and hysteresis for one brownout controller."""

    enter_threshold: float = 0.8
    exit_threshold: float = 0.3
    #: Virtual seconds the signal must stay <= exit_threshold.
    min_dwell: float = 1.0
    #: Virtual seconds between coalesced rekey flushes while degraded.
    rekey_interval: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.enter_threshold <= 1.0:
            raise ValueError("enter_threshold must be in (0, 1]")
        if not 0.0 <= self.exit_threshold < self.enter_threshold:
            raise ValueError(
                "exit_threshold must be in [0, enter_threshold)"
            )
        if self.min_dwell < 0 or self.rekey_interval < 0:
            raise ValueError("dwell/interval must be >= 0")


class BrownoutController:
    """Hysteretic two-level controller fed a saturation signal."""

    def __init__(
        self,
        node: str,
        config: BrownoutConfig | None = None,
        *,
        telemetry: EventBus | None = None,
    ) -> None:
        self.node = node
        self.config = config if config is not None else BrownoutConfig()
        self._telemetry = telemetry
        self.active = False
        self._calm_since: float | None = None
        self._last_rekey_flush = 0.0
        self.episodes = 0
        self.coalesced_rekeys = 0
        self.deferred_rebalances = 0
        self._pending_rekey = False

    # -- the control loop ----------------------------------------------------

    def observe(self, saturation: float, now: float) -> None:
        """Feed one saturation reading (occupancy fraction) at ``now``."""
        cfg = self.config
        if not self.active:
            if saturation >= cfg.enter_threshold:
                self.active = True
                self.episodes += 1
                self._calm_since = None
                self._last_rekey_flush = now
                if self._telemetry:
                    self._telemetry.emit(BrownoutEntered(
                        self.node, "brownout", saturation
                    ))
            return
        if saturation > cfg.exit_threshold:
            self._calm_since = None
            return
        if self._calm_since is None:
            self._calm_since = now
            return
        if now - self._calm_since >= cfg.min_dwell:
            self.active = False
            self._calm_since = None
            if self._telemetry:
                self._telemetry.emit(BrownoutExited(
                    self.node,
                    self.coalesced_rekeys,
                    self.deferred_rebalances,
                ))

    # -- what drivers consult -------------------------------------------------

    @property
    def coalesce_rekeys(self) -> bool:
        return self.active

    @property
    def defer_rebalance(self) -> bool:
        return self.active

    @property
    def shed_classes(self) -> frozenset[PriorityClass]:
        """Classes the mailbox should shed at the door right now."""
        if self.active:
            return frozenset({PriorityClass.APP})
        return frozenset()

    # -- rekey coalescing helper ----------------------------------------------

    def note_rekey_wanted(self, now: float) -> bool:
        """One membership change wants a rekey; should it run *now*?

        Outside brownout: always yes.  Inside: the request is latched
        and only the first caller after ``rekey_interval`` elapses gets
        a True — everyone else's rotation folds into that flush (and is
        counted in ``coalesced_rekeys``, the evidence the soak report
        carries).
        """
        if not self.active:
            return True
        if now - self._last_rekey_flush >= self.config.rekey_interval:
            self._last_rekey_flush = now
            self._pending_rekey = False
            return True
        self.coalesced_rekeys += 1
        self._pending_rekey = True
        return False

    def flush_pending_rekey(self) -> bool:
        """True once if a coalesced rekey is still owed (call on exit
        from brownout so the last batch of membership changes gets its
        rotation)."""
        owed = self._pending_rekey
        self._pending_rekey = False
        return owed

    def note_rebalance_deferred(self) -> None:
        self.deferred_rebalances += 1


__all__ = ["BrownoutConfig", "BrownoutController"]
