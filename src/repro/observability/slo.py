"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLOSpec` names a service-level indicator over the event
stream, an objective (the fraction of good outcomes promised), and the
bound that separates good from bad.  The :class:`SLOEvaluator` is a bus
subscriber that derives (timestamp, good/bad) samples for each
indicator as events arrive, and evaluates Google-SRE-style
**multi-window burn rates** on demand:

    burn rate = (bad fraction in window) / (error budget)
              = bad/(bad+good) / (1 - objective)

A burn rate of 1 spends the error budget exactly at the objective's
pace; an SLO is **burning** when *both* its long and its short window
exceed the spec's threshold — the long window filters noise, the short
window confirms the problem is still live (a recovered incident stops
burning even though the long window still remembers it).

Indicators shipped (all derived, none instrumented):

* ``join_latency`` — ``JoinStarted`` → ``JoinCompleted`` per (member,
  leader); good when the handshake completes within the bound.  A join
  still open at evaluation time older than the bound counts bad.
* ``rekey_propagation`` — ``RekeyIssued`` → ``RekeyInstalled`` per
  member per epoch; good when installed within the bound.
* ``recovery_time`` — ``RejoinCompleted.downtime`` within the bound;
  a ``RecoveryGaveUp`` is an unconditional bad sample.
* ``certified_mutations`` — each ``CertificateVerified`` is good; each
  ``EquivocationDetected`` or ``AttestationRefused`` is bad.  This is
  the gate the Byzantine soaks fail on: a seeded equivocation run
  floods the short window with bad samples and burns immediately.

Windows are in the event stream's own time axis (the injected clock),
so seeded virtual-time soaks evaluate deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.events import TelemetryRecord


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short) window pair with its burn-rate threshold."""

    long_s: float
    short_s: float
    threshold: float


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over a derived indicator."""

    name: str
    description: str
    #: Which sample stream to read (see module doc).
    indicator: str
    #: Promised fraction of good outcomes, e.g. 0.99.
    objective: float
    #: Good/bad boundary for latency-like indicators (seconds); unused
    #: by pure success/failure indicators.
    bound: float
    windows: tuple[BurnWindow, ...]

    def budget(self) -> float:
        return 1.0 - self.objective


def default_slos() -> tuple[SLOSpec, ...]:
    """The fabric's stock objectives (virtual-time seconds)."""
    windows = (
        BurnWindow(long_s=3600.0, short_s=300.0, threshold=10.0),
        BurnWindow(long_s=21600.0, short_s=1800.0, threshold=5.0),
    )
    return (
        SLOSpec(
            name="join-latency",
            description="99% of joins complete within 30s",
            indicator="join_latency",
            objective=0.99, bound=30.0, windows=windows,
        ),
        SLOSpec(
            name="rekey-propagation",
            description="99% of members install a new epoch within 30s",
            indicator="rekey_propagation",
            objective=0.99, bound=30.0, windows=windows,
        ),
        SLOSpec(
            name="recovery-time",
            description="95% of member recoveries finish within 120s",
            indicator="recovery_time",
            objective=0.95, bound=120.0, windows=windows,
        ),
        SLOSpec(
            name="certified-mutations",
            description="99.9% of certificate checks verify cleanly",
            indicator="certified_mutations",
            objective=0.999, bound=0.0, windows=windows,
        ),
    )


@dataclass(frozen=True)
class WindowReport:
    """Burn evaluation of one window pair."""

    long_s: float
    short_s: float
    threshold: float
    long_burn: float
    short_burn: float

    @property
    def burning(self) -> bool:
        return (
            self.long_burn >= self.threshold
            and self.short_burn >= self.threshold
        )


@dataclass(frozen=True)
class SLOReport:
    """Evaluation of one spec at one instant."""

    spec: SLOSpec
    good: int
    bad: int
    windows: tuple[WindowReport, ...]

    @property
    def burning(self) -> bool:
        return any(window.burning for window in self.windows)

    def render(self) -> str:
        status = "BURNING" if self.burning else "ok"
        lines = [
            f"{self.spec.name:<22} [{status}] good={self.good} "
            f"bad={self.bad} objective={self.spec.objective}"
        ]
        for w in self.windows:
            flag = " <-- burning" if w.burning else ""
            lines.append(
                f"    window {w.long_s:.0f}s/{w.short_s:.0f}s "
                f"burn={w.long_burn:.2f}/{w.short_burn:.2f} "
                f"threshold={w.threshold}{flag}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "objective": self.spec.objective,
            "good": self.good,
            "bad": self.bad,
            "burning": self.burning,
            "windows": [
                {
                    "long_s": w.long_s,
                    "short_s": w.short_s,
                    "threshold": w.threshold,
                    "long_burn": w.long_burn,
                    "short_burn": w.short_burn,
                    "burning": w.burning,
                }
                for w in self.windows
            ],
        }


class SLOEvaluator:
    """Bus subscriber deriving SLI samples; evaluate with :meth:`report`."""

    def __init__(self, specs: tuple[SLOSpec, ...] | None = None) -> None:
        self.specs = tuple(specs) if specs is not None else default_slos()
        #: indicator -> [(ts, good), ...] in arrival order.
        self._samples: dict[str, list[tuple[float, bool]]] = {}
        #: (member, leader) -> ts of the open JoinStarted.
        self._open_joins: dict[tuple[str, str], float] = {}
        #: (leader, epoch) -> RekeyIssued ts.
        self._issued: dict[tuple[str, int], float] = {}
        self.last_ts = 0.0

    # -- ingestion -----------------------------------------------------------

    def __call__(self, record: TelemetryRecord) -> None:
        event = record.event
        name = type(event).__name__
        ts = record.ts
        self.last_ts = max(self.last_ts, ts)

        if name == "JoinStarted":
            self._open_joins[(event.node, event.leader)] = ts
        elif name == "JoinCompleted":
            started = self._open_joins.pop((event.node, event.leader), None)
            if started is not None:
                self._latency_sample("join_latency", ts, ts - started)
        elif name == "RekeyIssued":
            self._issued[(event.node, event.epoch)] = ts
        elif name == "RekeyInstalled":
            issued = self._issued.get((event.leader, event.epoch))
            if issued is not None:
                self._latency_sample("rekey_propagation", ts, ts - issued)
        elif name == "RejoinCompleted":
            self._latency_sample("recovery_time", ts, event.downtime)
        elif name == "RecoveryGaveUp":
            self._sample("recovery_time", ts, good=False)
        elif name == "CertificateVerified":
            self._sample("certified_mutations", ts, good=True)
        elif name in ("EquivocationDetected", "AttestationRefused"):
            self._sample("certified_mutations", ts, good=False)

    def _sample(self, indicator: str, ts: float, good: bool) -> None:
        self._samples.setdefault(indicator, []).append((ts, good))

    def _latency_sample(
        self, indicator: str, ts: float, elapsed: float
    ) -> None:
        bound = self._bound(indicator)
        self._sample(indicator, ts, good=elapsed <= bound)

    def _bound(self, indicator: str) -> float:
        for spec in self.specs:
            if spec.indicator == indicator:
                return spec.bound
        return float("inf")

    # -- evaluation ----------------------------------------------------------

    def report(self, now: float | None = None) -> list[SLOReport]:
        """Evaluate every spec as of ``now`` (default: last event ts)."""
        at = self.last_ts if now is None else now
        # A join still open past its bound is a bad outcome the happy
        # path would never sample — close it bad, virtually.
        join_bound = self._bound("join_latency")
        extra: dict[str, list[tuple[float, bool]]] = {}
        for started in self._open_joins.values():
            if at - started > join_bound:
                extra.setdefault("join_latency", []).append((at, False))

        reports = []
        for spec in self.specs:
            samples = (
                self._samples.get(spec.indicator, [])
                + extra.get(spec.indicator, [])
            )
            good = sum(1 for _, ok in samples if ok)
            bad = len(samples) - good
            windows = tuple(
                WindowReport(
                    w.long_s, w.short_s, w.threshold,
                    self._burn(spec, samples, at, w.long_s),
                    self._burn(spec, samples, at, w.short_s),
                )
                for w in spec.windows
            )
            reports.append(SLOReport(spec, good, bad, windows))
        return reports

    @staticmethod
    def _burn(
        spec: SLOSpec,
        samples: list[tuple[float, bool]],
        at: float,
        window_s: float,
    ) -> float:
        inside = [ok for ts, ok in samples if at - ts <= window_s]
        if not inside:
            return 0.0
        bad_fraction = inside.count(False) / len(inside)
        return bad_fraction / spec.budget()

    def burning(self, now: float | None = None) -> list[SLOReport]:
        """Just the reports currently burning (empty = all healthy)."""
        return [r for r in self.report(now) if r.burning]

    def render(self, now: float | None = None) -> str:
        return "\n".join(r.render() for r in self.report(now))


__all__ = [
    "BurnWindow",
    "SLOEvaluator",
    "SLOReport",
    "SLOSpec",
    "WindowReport",
    "default_slos",
]
