"""Observability: causal traces, phase profiles, SLOs, flight recorder.

Four consumers of the same typed event stream
(:mod:`repro.telemetry.events`), built so that *everything observed is
derivable from a seeded run* — same seed, same virtual clock, same
bytes out:

* :mod:`repro.observability.trace` — reconstruct per-operation causal
  DAGs (a join, a rekey, a migration, a view change) from the events'
  frame ids and correlation fields.
* :mod:`repro.observability.profile` — a clock-injected phase profiler
  attributing time to named hot-path phases (seal, open, certify,
  wal.append, demux, multicast...), flamegraph-style.
* :mod:`repro.observability.slo` — declarative SLOs over the event
  stream with multi-window burn-rate evaluation; soaks can fail on
  burn.
* :mod:`repro.observability.flightrec` — a bounded ring of recent
  events that, on a terminal event (recovery gave up, equivocation
  detected, probe violation), dumps the ring plus the causal trace of
  the failing operation as a deterministic JSONL bundle.

All of it is subscriber-side: protocol code never imports this package;
it only emits events (and optionally accepts a profiler via
``bind_profiler``).
"""

from repro.observability.flightrec import (
    DEFAULT_TRIGGERS,
    FlightRecorder,
    bundle_to_jsonl,
    load_bundle,
    render_bundle,
    write_bundle,
)
from repro.observability.profile import PhaseProfiler, bind_profiler_everywhere
from repro.observability.slo import (
    BurnWindow,
    SLOEvaluator,
    SLOReport,
    SLOSpec,
    default_slos,
)
from repro.observability.trace import TraceBuilder, TraceGraph, TraceNode

__all__ = [
    "BurnWindow",
    "DEFAULT_TRIGGERS",
    "FlightRecorder",
    "PhaseProfiler",
    "SLOEvaluator",
    "SLOReport",
    "SLOSpec",
    "TraceBuilder",
    "TraceGraph",
    "TraceNode",
    "bind_profiler_everywhere",
    "bundle_to_jsonl",
    "default_slos",
    "load_bundle",
    "render_bundle",
    "write_bundle",
]
