"""Crash flight recorder: the last N events plus the causal story.

A :class:`FlightRecorder` is a bus subscriber holding a bounded ring of
recent events.  When a **terminal** event arrives — recovery gave up,
a member produced equivocation evidence, the live health probe saw a
§5.4 invariant break — it captures a bundle:

* the trigger event itself,
* the full ring (the last ``capacity`` events before and including the
  trigger, in order),
* the **causal trace** of the trigger: the ancestors of the triggering
  event in the ring's reconstructed
  :class:`~repro.observability.trace.TraceGraph`, each annotated with
  its resolved parent edges.  For an equivocation this walks back from
  the detection through the certificate delivery frame to the member's
  session root — the offending mutation, not just the alarm.

Bundles serialize to sorted-key JSONL (:func:`bundle_to_jsonl`), so a
seeded virtual-time run dumps **byte-identical** bundles across
processes — the acceptance check for ``repro obs flightrec``.  Capture
keeps recording: the ring is copied, not drained, and later triggers
produce further bundles.
"""

from __future__ import annotations

import json
from collections import deque

from repro.observability.trace import TraceBuilder
from repro.telemetry.events import TelemetryRecord
from repro.telemetry.export import record_to_dict

#: Terminal events worth a bundle, by type name.
DEFAULT_TRIGGERS = frozenset({
    "RecoveryGaveUp",
    "EquivocationDetected",
    "ProbeViolation",
})


class FlightRecorder:
    """Ring-buffer subscriber that dumps forensics on terminal events."""

    def __init__(
        self,
        capacity: int = 256,
        triggers=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.triggers = (
            frozenset(triggers) if triggers is not None else DEFAULT_TRIGGERS
        )
        self._ring: deque[dict] = deque(maxlen=capacity)
        #: Captured bundles, oldest first.
        self.bundles: list[dict] = []

    def __call__(self, record: TelemetryRecord) -> None:
        payload = record_to_dict(record)
        self._ring.append(payload)
        if payload["event"] in self.triggers:
            self.bundles.append(self._capture(payload))

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def triggered(self) -> bool:
        return bool(self.bundles)

    def _capture(self, trigger: dict) -> dict:
        builder = TraceBuilder()
        builder.extend(self._ring)
        graph = builder.build()
        trace = []
        for seq in graph.ancestors(trigger["seq"]):
            node = graph.nodes[seq]
            entry = dict(node.data)
            entry["parents"] = [
                [parent, kind] for parent, kind in node.parents
            ]
            trace.append(entry)
        return {
            "trigger": trigger,
            "ring": [dict(payload) for payload in self._ring],
            "trace": trace,
        }


def bundle_to_jsonl(bundle: dict) -> str:
    """Serialize one bundle as deterministic JSONL.

    One line per element, each self-describing via its ``record`` key
    (``trigger`` / ``ring`` / ``trace``), keys sorted — same bundle,
    same bytes.
    """
    lines = [json.dumps(
        {"record": "trigger", **bundle["trigger"]}, sort_keys=True,
    )]
    for payload in bundle["ring"]:
        lines.append(json.dumps(
            {"record": "ring", **payload}, sort_keys=True,
        ))
    for entry in bundle["trace"]:
        lines.append(json.dumps(
            {"record": "trace", **entry}, sort_keys=True,
        ))
    return "\n".join(lines) + "\n"


def write_bundle(bundle: dict, path) -> None:
    with open(path, "w") as f:
        f.write(bundle_to_jsonl(bundle))


def load_bundle(source) -> dict:
    """Parse a JSONL bundle back into the capture structure."""
    if isinstance(source, (str, bytes)):
        with open(source) as f:
            lines = f.readlines()
    else:
        lines = list(source)
    bundle: dict = {"trigger": None, "ring": [], "trace": []}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        kind = payload.pop("record", None)
        if kind == "trigger":
            bundle["trigger"] = payload
        elif kind == "ring":
            bundle["ring"].append(payload)
        elif kind == "trace":
            bundle["trace"].append(payload)
        else:
            raise ValueError(f"unknown bundle record kind {kind!r}")
    if bundle["trigger"] is None:
        raise ValueError("bundle has no trigger record")
    return bundle


def render_bundle(bundle: dict) -> str:
    """Human-readable forensic summary of one bundle."""
    trigger = bundle["trigger"]
    lines = [
        f"flight recorder: {trigger['event']} at t={trigger['ts']:.2f} "
        f"(seq {trigger['seq']})",
        f"  ring: {len(bundle['ring'])} events captured",
        f"  causal trace of seq {trigger['seq']}:",
    ]
    for entry in bundle["trace"]:
        parents = entry.get("parents") or []
        via = (
            " <- " + ", ".join(f"{p}:{kind}" for p, kind in parents)
            if parents else " (root)"
        )
        bits = [
            f"{field}={entry[field]}"
            for field in ("node", "leader", "session", "accused", "epoch",
                          "record_seq", "message")
            if entry.get(field) not in (None, "")
        ]
        detail = f" {' '.join(bits)}" if bits else ""
        lines.append(
            f"    [{entry['seq']}] t={entry['ts']:.2f} "
            f"{entry['event']}{detail}{via}"
        )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_TRIGGERS",
    "FlightRecorder",
    "bundle_to_jsonl",
    "load_bundle",
    "render_bundle",
    "write_bundle",
]
