"""Continuous profiling: attribute time to named hot-path phases.

The protocol cores carry optional profiling hooks (``bind_profiler``)
on their hot paths — sealing, unsealing, certification, WAL append and
fsync, shard demux, multicast fan-out.  Each hook is two calls:

    prof = self._profiler
    tok = prof.begin("seal") if prof else None
    ...
    if prof:
        prof.end(tok)

so the *disabled* cost is one attribute load and one ``if`` (the same
budget as the telemetry guards; the overhead benchmark covers both).

:class:`PhaseProfiler` is the thing those hooks talk to.  It is
deliberately boring: a stack of open phases, a table of closed ones.
Phases nest — ``demux`` opened by the shard stays on the stack while
the hosted leader opens ``open`` and ``multicast`` inside it — and the
table is keyed by the full phase *path*, so the rendered output reads
like a folded flamegraph: cumulative time, self time (cumulative minus
time attributed to child phases), and call counts per path.

Time comes from an injected :class:`~repro.util.clock.Clock`.  With a
:class:`~repro.util.clock.TickClock` every ``begin``/``end`` pair costs
a deterministic number of ticks, so profile tables from seeded runs are
stable across machines; with a :class:`~repro.util.clock.RealClock`
the same table measures wall time.  Give the profiler its **own** clock
instance — sharing a ``TickClock`` with an :class:`EventBus` would make
profiling perturb event timestamps.
"""

from __future__ import annotations

from repro.util.clock import Clock, RealClock


class _Frame:
    """One open phase on the stack."""

    __slots__ = ("name", "start", "child")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        #: Time attributed to phases closed while this one was open.
        self.child = 0.0


class _Stat:
    """Accumulated totals for one phase path."""

    __slots__ = ("calls", "cumulative", "child")

    def __init__(self) -> None:
        self.calls = 0
        self.cumulative = 0.0
        self.child = 0.0

    @property
    def self_time(self) -> float:
        return self.cumulative - self.child


class PhaseProfiler:
    """Stack-based phase timer with flamegraph-style aggregation.

    Always truthy (hooks test the *binding*, not the profiler), cheap
    when bound (two clock reads and a dict update per phase), absent by
    default (components hold ``self._profiler = None``).
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock: Clock = clock if clock is not None else RealClock()
        self._stack: list[_Frame] = []
        self._stats: dict[tuple[str, ...], _Stat] = {}

    def begin(self, name: str) -> _Frame:
        """Open a phase; returns the token :meth:`end` must receive."""
        frame = _Frame(name, self._clock.now())
        self._stack.append(frame)
        return frame

    def end(self, token: _Frame) -> float:
        """Close the innermost phase; returns its elapsed time.

        Strictly LIFO: closing anything but the innermost open phase is
        a programming error in the instrumented code and raises, rather
        than silently corrupting the attribution.
        """
        if not self._stack or self._stack[-1] is not token:
            raise ValueError(
                f"phase end out of order (got {token.name!r}, open: "
                f"{[f.name for f in self._stack]})"
            )
        self._stack.pop()
        elapsed = self._clock.now() - token.start
        path = tuple(f.name for f in self._stack) + (token.name,)
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = _Stat()
        stat.calls += 1
        stat.cumulative += elapsed
        stat.child += token.child
        if self._stack:
            self._stack[-1].child += elapsed
        return elapsed

    # -- views ---------------------------------------------------------------

    @property
    def open_phases(self) -> list[str]:
        return [frame.name for frame in self._stack]

    def phases(self) -> dict[str, dict]:
        """``"a/b" -> {calls, cumulative, self}`` for every closed path."""
        return {
            "/".join(path): {
                "calls": stat.calls,
                "cumulative": stat.cumulative,
                "self": stat.self_time,
            }
            for path, stat in self._stats.items()
        }

    def total(self) -> float:
        """Time in root phases (the profile's whole measured span)."""
        return sum(
            stat.cumulative
            for path, stat in self._stats.items()
            if len(path) == 1
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (the benchmark artifact embeds this)."""
        return {
            "total": self.total(),
            "phases": {
                path: stats
                for path, stats in sorted(self.phases().items())
            },
        }

    def render(self) -> str:
        """Folded-flamegraph table: one row per phase path.

        Children are indented under their parents; ``cum`` is the whole
        subtree, ``self`` the phase's own time, ``%`` its share of the
        profile total.
        """
        if not self._stats:
            return "profile: no phases recorded"
        total = self.total() or 1.0
        lines = [
            f"{'phase':<28} {'calls':>7} {'cum':>10} {'self':>10} {'%':>6}"
        ]
        for path in sorted(self._stats):
            stat = self._stats[path]
            label = "  " * (len(path) - 1) + path[-1]
            lines.append(
                f"{label:<28} {stat.calls:>7} "
                f"{stat.cumulative:>10.3f} {stat.self_time:>10.3f} "
                f"{100.0 * stat.cumulative / total:>5.1f}%"
            )
        return "\n".join(lines)

    def export_to(self, registry) -> None:
        """Mirror the table into a
        :class:`~repro.telemetry.metrics.MetricsRegistry` (one
        histogram-free counter/gauge pair per path), so phase totals
        ride the same Prometheus dump as everything else."""
        for path, stats in self.phases().items():
            registry.counter("profile_phase_calls", phase=path).incr(
                stats["calls"]
            )
            registry.gauge("profile_phase_seconds", phase=path).set(
                stats["cumulative"]
            )


def bind_profiler_everywhere(profiler, *components) -> None:
    """Attach one profiler to every component that accepts one.

    Convenience for scenario builders: pass leaders, members, shards,
    journals — anything without a ``bind_profiler`` method is skipped.
    """
    for component in components:
        bind = getattr(component, "bind_profiler", None)
        if bind is not None:
            bind(profiler)


__all__ = ["PhaseProfiler", "bind_profiler_everywhere"]
