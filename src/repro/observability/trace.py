"""Causal trace graphs: per-operation DAGs over the typed event stream.

The telemetry events already carry everything a causal reconstruction
needs — this module adds **no** runtime hooks; it is a pure consumer:

* **Frame edges.**  Wire frames are named by
  :func:`~repro.telemetry.events.frame_id`; events reference frames via
  their ``frame``, ``inner``, and ``caused_by`` fields.  Two events
  that mention the same frame id are causally ordered by ``(ts, seq)``
  and chained: ``JoinStarted(frame=F)`` → ``ShardDelivered(inner=F)``
  → ``AuthAccepted(caused_by=F)`` → ``JournalAppended(caused_by=F)``
  is exactly the path of one AuthInitReq through the fabric demux, the
  leader core, and the WAL.
* **Attribute edges.**  Where causality is provable from correlation
  fields rather than frame ids: a ``JoinCompleted`` follows its
  member's ``JoinStarted``; an ``AttestationIssued`` co-signs the
  ``JournalAppended`` record with the same seq; a
  ``CertificateVerified`` consumes the ``CertificateIssued`` for the
  same (session, epoch); a ``RekeyInstalled`` installs the
  ``RekeyIssued`` epoch; journal ``Synced``/``Shipped`` follow the
  append on the same node; migration and view-change completions
  follow their start events.
* **Session edges** (fallback).  A member-side event whose frame ids
  appear nowhere else — mid-handshake frames the member sends without
  emitting anything — anchors to the most recent ``JoinStarted`` /
  ``JoinCompleted`` of the same (member, leader) session, which *is*
  the operation that caused it.

A node with no parent is either a recognized **operation root** (a
``JoinStarted``, a leader-initiated ``RekeyIssued``, a fault-window
opening...) or an **orphan** — an event the model cannot attach, which
the ``repro obs trace`` command treats as a failure.

Feed the builder live (``bus.subscribe(builder)``) or offline
(:meth:`TraceBuilder.from_jsonl` on an exported, schema-validated
log); both paths normalize to the same flat dicts, so a trace rendered
from a live run and from its export are identical.
"""

from __future__ import annotations

from repro.telemetry.events import TelemetryRecord

#: Fields whose (non-empty) values are frame ids.
_FRAME_FIELDS = ("frame", "inner", "caused_by")

#: Event types allowed to start a causal chain.  Anything else that
#: ends up parentless is an orphan — a hole in the causal model.
_ROOT_TYPES = frozenset({
    "JoinStarted",
    "MemberExpelled",
    "FaultWindowOpened",
    "FaultWindowClosed",
    "WatchdogFired",
    "LeaderCrashed",
    "LeaderRestored",
    "LeaderFailover",
    "StandbyPromoted",
    "JournalReplayed",
    "DirectoryUpdated",
    "GroupHosted",
    "ShardFailed",
    "MigrationStarted",
    "ViewChangeStarted",
    "FrameInjected",
    "FrameDropped",
    "FrameDuplicated",
    "FrameDelayed",
    "FrameReplaced",
})

#: The short fields worth showing in a rendered node line.
_DISPLAY_FIELDS = (
    "node", "leader", "member", "session", "group", "peer", "kind",
    "epoch", "record_seq", "signers", "reason", "accused", "message",
)


class TraceNode:
    """One event in the graph, with its resolved parents/children."""

    __slots__ = ("seq", "ts", "name", "data", "parents", "children")

    def __init__(self, payload: dict) -> None:
        self.seq: int = payload["seq"]
        self.ts: float = payload["ts"]
        self.name: str = payload["event"]
        self.data: dict = payload
        #: ``[(parent seq, edge kind), ...]`` in insertion order.
        self.parents: list[tuple[int, str]] = []
        self.children: list[tuple[int, str]] = []

    @property
    def is_root_type(self) -> bool:
        if self.name in _ROOT_TYPES:
            return True
        # Leader-initiated rotations/appends (no inbound frame) are
        # legitimate chain starts; frame-caused ones are not.
        if self.name in ("RekeyIssued", "JournalAppended"):
            return not self.data.get("caused_by")
        return False

    def describe(self) -> str:
        bits = []
        for field in _DISPLAY_FIELDS:
            value = self.data.get(field)
            if value is not None and value != "":
                text = str(value)
                if len(text) > 24:
                    text = text[:21] + "..."
                bits.append(f"{field}={text}")
        inner = f" {' '.join(bits)}" if bits else ""
        return f"[{self.seq}] t={self.ts:.2f} {self.name}{inner}"


class TraceGraph:
    """The built DAG: nodes by seq, edges resolved, renderable."""

    def __init__(self, nodes: dict[int, TraceNode]) -> None:
        self.nodes = nodes

    def __len__(self) -> int:
        return len(self.nodes)

    # -- structure -----------------------------------------------------------

    def roots(self) -> list[TraceNode]:
        """Nodes with no parent, in seq order (legitimate or not)."""
        return [
            node for _, node in sorted(self.nodes.items())
            if not node.parents
        ]

    def orphans(self) -> list[TraceNode]:
        """Parentless nodes that are *not* recognized operation roots."""
        return [node for node in self.roots() if not node.is_root_type]

    def find(self, event: str, **match) -> TraceNode | None:
        """First node of type ``event`` whose fields equal ``match``."""
        for _, node in sorted(self.nodes.items()):
            if node.name == event and all(
                node.data.get(k) == v for k, v in match.items()
            ):
                return node
        return None

    def _closure(self, seq: int, direction: str) -> list[int]:
        seen: set[int] = set()
        stack = [seq]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = self.nodes.get(current)
            if node is None:
                continue
            for linked, _ in getattr(node, direction):
                if linked not in seen:
                    stack.append(linked)
        return sorted(seen)

    def ancestors(self, seq: int) -> list[int]:
        """Seqs of ``seq`` and everything that (transitively) caused it."""
        return self._closure(seq, "parents")

    def descendants(self, seq: int) -> list[int]:
        """Seqs of ``seq`` and everything it (transitively) caused."""
        return self._closure(seq, "children")

    def operation(self, root_seq: int) -> list[TraceNode]:
        """All nodes of the operation rooted at ``root_seq``."""
        return [self.nodes[s] for s in self.descendants(root_seq)]

    # -- rendering -----------------------------------------------------------

    def render(self, root_seq: int) -> str:
        """Indented causal tree below ``root_seq``.

        A node reachable along several paths is printed where first
        reached (depth-first in child order) and elided afterwards, so
        the output stays a tree even though the structure is a DAG.
        """
        lines: list[str] = []
        seen: set[int] = set()

        def walk(seq: int, depth: int, kind: str) -> None:
            node = self.nodes[seq]
            prefix = "  " * depth
            via = f" <-{kind}-" if kind else ""
            if seq in seen:
                lines.append(f"{prefix}{via} (see [{seq}] above)")
                return
            seen.add(seq)
            lines.append(f"{prefix}{via} {node.describe()}".strip())
            for child_seq, edge_kind in sorted(node.children):
                walk(child_seq, depth + 1, edge_kind)

        walk(root_seq, 0, "")
        return "\n".join(lines)

    def render_all(self) -> str:
        """Every root's tree, plus an orphan report."""
        sections = [self.render(root.seq) for root in self.roots()]
        orphans = self.orphans()
        if orphans:
            sections.append(
                "ORPHANS (parentless, not operation roots):\n" + "\n".join(
                    f"  {node.describe()}" for node in orphans
                )
            )
        return "\n\n".join(sections)


class TraceBuilder:
    """Accumulate event payloads, then :meth:`build` the causal graph.

    Usable as a bus subscriber (``bus.subscribe(builder)``) or fed
    parsed JSONL dicts via :meth:`add` / :meth:`extend`.
    """

    def __init__(self) -> None:
        self._payloads: list[dict] = []

    # -- ingestion -----------------------------------------------------------

    def __call__(self, record: TelemetryRecord) -> None:
        self._payloads.append(record.as_dict())

    def add(self, payload: dict) -> None:
        for required in ("ts", "seq", "event"):
            if required not in payload:
                raise ValueError(f"payload missing {required!r}: {payload}")
        self._payloads.append(dict(payload))

    def extend(self, payloads) -> None:
        for payload in payloads:
            self.add(payload)

    @classmethod
    def from_jsonl(cls, source) -> "TraceBuilder":
        """Build from an exported log (path or iterable of lines),
        schema-validating every line first."""
        from repro.telemetry.export import validate_jsonl

        builder = cls()
        builder.extend(validate_jsonl(source))
        return builder

    def __len__(self) -> int:
        return len(self._payloads)

    # -- graph construction --------------------------------------------------

    def build(self) -> TraceGraph:
        nodes: dict[int, TraceNode] = {}
        for payload in sorted(self._payloads, key=lambda p: p["seq"]):
            node = TraceNode(payload)
            nodes[node.seq] = node
        ordered = [nodes[seq] for seq in sorted(nodes)]

        def link(parent: TraceNode, child: TraceNode, kind: str) -> None:
            if parent.seq == child.seq:
                return
            if any(p == parent.seq for p, _ in child.parents):
                return
            child.parents.append((parent.seq, kind))
            parent.children.append((child.seq, kind))

        self._link_frames(ordered, link)
        self._link_attributes(ordered, link)
        self._link_sessions(ordered, link)
        return TraceGraph(nodes)

    @staticmethod
    def _link_frames(ordered: list[TraceNode], link) -> None:
        """Chain events that mention the same frame id, in seq order."""
        by_frame: dict[str, list[TraceNode]] = {}
        for node in ordered:
            mentioned: list[str] = []
            for field in _FRAME_FIELDS:
                value = node.data.get(field)
                if value and value not in mentioned:
                    mentioned.append(value)
            for fid in mentioned:
                chain = by_frame.setdefault(fid, [])
                if chain:
                    link(chain[-1], node, "frame")
                chain.append(node)

    @staticmethod
    def _link_attributes(ordered: list[TraceNode], link) -> None:
        """Correlation-field edges (see the rules in the module doc)."""
        last: dict[tuple, TraceNode] = {}
        attestations: dict[tuple, list[TraceNode]] = {}
        for node in ordered:
            name, data = node.name, node.data

            if name == "JoinCompleted":
                started = last.get(
                    ("join", data.get("node"), data.get("leader"))
                )
                if started is not None:
                    link(started, node, "join")
            elif name == "AttestationIssued":
                appended = last.get(("journal-seq", data.get("record_seq")))
                if appended is not None:
                    link(appended, node, "journal")
                attestations.setdefault(
                    (data.get("session"), data.get("record_seq")), []
                ).append(node)
            elif name == "CertificateIssued":
                for attn in attestations.get(
                    (data.get("session"), data.get("record_seq")), ()
                ):
                    link(attn, node, "attest")
            elif name in ("CertificateVerified", "EquivocationDetected"):
                issued = last.get(
                    ("certificate", data.get("session"), data.get("epoch"))
                )
                if issued is not None:
                    link(issued, node, "certificate")
                if name == "EquivocationDetected":
                    # A gossip detection carries no frame; the accepted
                    # half of the conflicting pair — the offending
                    # mutation — is the CertificateVerified at the same
                    # (session, epoch).
                    verified = last.get(
                        ("verified", data.get("session"), data.get("epoch"))
                    )
                    if verified is not None:
                        link(verified, node, "conflict")
            elif name == "RekeyInstalled":
                issued = last.get(
                    ("rekey", data.get("leader"), data.get("epoch"))
                )
                if issued is not None:
                    link(issued, node, "rekey")
            elif name in ("JournalSynced", "JournalShipped",
                          "JournalCompacted"):
                appended = last.get(("journal-node", data.get("node")))
                if appended is not None:
                    link(appended, node, "journal")
            elif name == "FollowerLagged":
                shipped = last.get(
                    ("shipped", data.get("node"), data.get("peer"))
                )
                if shipped is not None:
                    link(shipped, node, "journal")
            elif name in ("RejoinCompleted", "RecoveryGaveUp"):
                fired = last.get(("watchdog", data.get("node")))
                if fired is not None:
                    link(fired, node, "recovery")
            elif name in ("GroupMigrated", "MigrationAborted"):
                started = last.get(("migration", data.get("group")))
                if started is not None:
                    link(started, node, "migration")
            elif name in ("ReplicaEvicted", "ViewChangeCompleted"):
                started = last.get(("viewchange", data.get("session")))
                if started is not None:
                    link(started, node, "viewchange")
            elif name == "ProbeViolation":
                # The probe fires synchronously from the record it was
                # checking: the immediately preceding event.
                idx = ordered.index(node)
                if idx > 0:
                    link(ordered[idx - 1], node, "probe")

            # Register this node as a future edge source.
            if name == "JoinStarted":
                last[("join", data.get("node"), data.get("leader"))] = node
            elif name == "JournalAppended":
                last[("journal-seq", data.get("record_seq"))] = node
                last[("journal-node", data.get("node"))] = node
            elif name == "JournalShipped":
                last[("shipped", data.get("node"), data.get("peer"))] = node
            elif name == "CertificateIssued":
                last[
                    ("certificate", data.get("session"), data.get("epoch"))
                ] = node
            elif name == "CertificateVerified":
                last[
                    ("verified", data.get("session"), data.get("epoch"))
                ] = node
            elif name == "RekeyIssued":
                last[("rekey", data.get("node"), data.get("epoch"))] = node
            elif name == "WatchdogFired":
                last[("watchdog", data.get("node"))] = node
            elif name == "MigrationStarted":
                last[("migration", data.get("group"))] = node
            elif name == "ViewChangeStarted":
                last[("viewchange", data.get("session"))] = node

    @staticmethod
    def _link_sessions(ordered: list[TraceNode], link) -> None:
        """Anchor still-parentless in-session events to their session.

        Runs last: only events the frame and attribute passes could not
        attach fall through to here.
        """
        anchors: dict[tuple[str, str], TraceNode] = {}
        for node in ordered:
            data = node.data
            if not node.parents:
                if node.name == "ShardDelivered":
                    key = (data.get("member"), data.get("group"))
                else:
                    key = (data.get("node"), data.get("leader"))
                anchor = anchors.get(key)
                if anchor is not None:
                    link(anchor, node, "session")
            if node.name in ("JoinStarted", "JoinCompleted"):
                anchors[(data["node"], data["leader"])] = node


__all__ = ["TraceBuilder", "TraceGraph", "TraceNode"]
