"""Systematic interleaving exploration of the concrete protocol stack.

Hypothesis samples delivery schedules; this module *enumerates* them:
a depth-bounded DFS over every order in which in-flight frames can be
delivered (optionally with duplication and drops), executed against the
real sans-IO protocol objects (deep-copied per branch), with an
invariant checked at every node.  It is the concrete-implementation
counterpart of the symbolic explorer — systematic concurrency testing
in the Chess/dPOR tradition, sized for protocol handshakes.

Usage::

    def build():
        ... create leader + members, return ModelCheckState ...

    result = explore_interleavings(build, invariant=my_invariant)
    assert result.ok

The scenario's *sends* happen up front (or in `on_quiescent` callbacks);
the explorer owns delivery order.  State explosion is tamed by a
fingerprint of the queue + observable protocol state, merging branches
that converge.
"""

from __future__ import annotations

import copy
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.wire.message import Envelope


@dataclass
class World:
    """One explored world: protocol endpoints plus in-flight frames."""

    #: address -> sans-IO core (anything with .handle)
    endpoints: dict[str, object]
    #: frames posted but not yet delivered, in post order
    in_flight: list[Envelope] = field(default_factory=list)
    #: invoked when the queue drains; may post more frames (phases)
    on_quiescent: "list[Callable[[World], None]]" = field(
        default_factory=list
    )

    def post(self, envelope: Envelope) -> None:
        self.in_flight.append(envelope)

    def post_all(self, envelopes) -> None:
        for envelope in envelopes:
            self.post(envelope)

    def deliver(self, index: int) -> None:
        """Deliver the index-th in-flight frame; responses are posted."""
        envelope = self.in_flight.pop(index)
        handler = self.endpoints.get(envelope.recipient)
        if handler is None:
            return
        out, _events = handler.handle(envelope)
        for reply in out:
            self.post(reply)


@dataclass
class CheckResult:
    """Outcome of one exploration."""

    worlds_explored: int
    max_depth_reached: int
    violation: str | None = None
    violating_schedule: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation is None


#: An invariant gets the World and returns None or a violation message.
Invariant = Callable[[World], "str | None"]


def explore_interleavings(
    build: Callable[[], World],
    invariant: Invariant,
    max_depth: int = 24,
    max_worlds: int = 20_000,
    with_duplicates: bool = False,
    with_drops: bool = False,
) -> CheckResult:
    """Enumerate delivery schedules; check ``invariant`` everywhere.

    ``with_duplicates`` also explores delivering a frame *and keeping*
    a copy in flight (replay); ``with_drops`` also explores discarding
    a frame.  Both multiply the branching factor — use shallow depths.
    """
    result = CheckResult(worlds_explored=0, max_depth_reached=0)
    seen: set[str] = set()

    def fingerprint(world: World) -> str:
        frames = ",".join(
            f"{e.label.name}:{e.sender}>{e.recipient}:{hash(e.body) & 0xFFFFFFFF:x}"
            for e in world.in_flight
        )
        states = ",".join(
            f"{addr}={getattr(ep, 'state', None)}"
            for addr, ep in sorted(world.endpoints.items())
            if hasattr(ep, "state")
        )
        return frames + "|" + states

    def dfs(world: World, depth: int, schedule: list[str]) -> bool:
        """Returns False when a violation was recorded (stop)."""
        result.worlds_explored += 1
        result.max_depth_reached = max(result.max_depth_reached, depth)
        if result.worlds_explored > max_worlds:
            raise RuntimeError(
                f"exploration exceeded {max_worlds} worlds; "
                "tighten the scenario"
            )
        message = invariant(world)
        if message is not None:
            result.violation = message
            result.violating_schedule = list(schedule)
            return False
        if not world.in_flight:
            if world.on_quiescent:
                follow_up = world.on_quiescent.pop(0)
                follow_up(world)
                if world.in_flight:
                    return dfs(world, depth, schedule)
            return True
        if depth >= max_depth:
            return True  # depth bound: unexplored, not a failure

        for index in range(len(world.in_flight)):
            choices = [("deliver", index)]
            if with_duplicates:
                choices.append(("duplicate", index))
            if with_drops:
                choices.append(("drop", index))
            for action, i in choices:
                branch = copy.deepcopy(world)
                frame = branch.in_flight[i]
                label = f"{action} {frame.label.name}->{frame.recipient}"
                if action == "deliver":
                    branch.deliver(i)
                elif action == "duplicate":
                    branch.in_flight.append(branch.in_flight[i])
                    branch.deliver(i)
                elif action == "drop":
                    branch.in_flight.pop(i)
                fp = fingerprint(branch)
                if fp in seen:
                    continue
                seen.add(fp)
                if not dfs(branch, depth + 1, schedule + [label]):
                    return False
        return True

    dfs(build(), 0, [])
    return result
