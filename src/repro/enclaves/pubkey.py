"""Public-key provisioning of credentials (the §2.2 footnote).

    "Authentication using public-key cryptography is also possible,
     but is not currently implemented."  — paper, footnote 1

This module implements it: a :class:`PublicKeyDirectory` holds users'
static DH public keys (instead of password-derived keys), the leader
holds its own static key pair, and both sides derive the same pairwise
``P_a`` via static-static Diffie-Hellman.  From there the improved
protocol of §3.2 runs **unchanged** — this module only replaces how
``P_a`` comes to be mutually known, which is the exact boundary the §5
proofs assume.

Usage::

    pki = PublicKeyInfrastructure.create("leader")
    alice_creds = pki.enroll_user("alice")        # user-side credentials
    directory = pki.leader_directory()            # leader-side directory
    leader = GroupLeader("leader", directory)
    member = MemberProtocol(alice_creds, "leader")
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.dh import (
    DHKeyPair,
    derive_pairwise_long_term_key,
    generate_keypair,
)
from repro.crypto.rng import RandomSource
from repro.enclaves.common import Credentials, UserDirectory


@dataclass
class PublicKeyInfrastructure:
    """A tiny enrollment authority for DH-provisioned groups.

    In a deployment, users would generate key pairs locally and the
    leader would learn the public halves out of band (certificates,
    TOFU, an admin console).  For the library, this class plays that
    out-of-band channel: it generates user key pairs, records the
    public halves, and hands each side its derived credentials.
    """

    leader_id: str
    leader_keys: DHKeyPair
    user_public_keys: dict[str, int]

    @classmethod
    def create(
        cls, leader_id: str, rng: RandomSource | None = None
    ) -> "PublicKeyInfrastructure":
        return cls(
            leader_id=leader_id,
            leader_keys=generate_keypair(rng),
            user_public_keys={},
        )

    @property
    def leader_public_key(self) -> int:
        return self.leader_keys.public

    def enroll_user(
        self, user_id: str, rng: RandomSource | None = None
    ) -> Credentials:
        """Generate a user key pair, register the public half, and
        return the user's derived credentials.

        The user derives P_a from their own private key and the
        leader's public key; the leader will derive the same P_a from
        its private key and the user's public key.
        """
        user_keys = generate_keypair(rng)
        self.user_public_keys[user_id] = user_keys.public
        long_term = derive_pairwise_long_term_key(
            user_keys, self.leader_public_key, user_id, self.leader_id
        )
        return Credentials(user_id=user_id, long_term_key=long_term)

    def register_existing_user(self, user_id: str, public_key: int) -> None:
        """Register a user who generated their own key pair elsewhere."""
        from repro.crypto.dh import validate_public_key

        validate_public_key(public_key)
        self.user_public_keys[user_id] = public_key

    def leader_directory(self) -> UserDirectory:
        """Build the leader's :class:`UserDirectory` by deriving the
        pairwise P_a for every enrolled user from the leader's private
        key."""
        directory = UserDirectory()
        for user_id, public_key in self.user_public_keys.items():
            directory.register(
                user_id,
                derive_pairwise_long_term_key(
                    self.leader_keys, public_key, user_id, self.leader_id
                ),
            )
        return directory
