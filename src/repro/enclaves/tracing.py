"""Human-readable wire transcripts.

Debugging a cryptographic protocol from raw sealed boxes is miserable;
this module renders wire logs (from :class:`~repro.enclaves.harness.
SyncNetwork` or an :class:`~repro.net.adversary.Adversary`) into aligned
transcripts, and — given the parties' keys — can annotate each sealed
frame with its decrypted structure, the way published protocol traces
are presented.

Transcripts are best-effort: frames that fail to parse or decrypt are
shown as opaque, never raised on.  The formatter is read-only and has
no effect on protocol state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aead import AuthenticatedCipher, SealedBox
from repro.crypto.keys import KeyMaterial
from repro.enclaves.itgm.member import seal_ad
from repro.exceptions import CodecError, IntegrityError
from repro.telemetry.events import frame_id
from repro.wire.codec import decode_fields
from repro.wire.labels import Label
from repro.wire.message import Envelope


@dataclass
class KeyRing:
    """Keys available to the transcript annotator.

    A test or demo hands over whatever keys it legitimately holds; the
    formatter tries each against each frame.  (This mirrors what a
    protocol analyst with full knowledge does — it is a debugging aid,
    not an attack tool: without the keys the frames stay opaque, which
    is itself a useful property to see.)
    """

    keys: list[KeyMaterial]

    def try_open(self, envelope: Envelope) -> list[bytes] | None:
        """Try to open the envelope's sealed body with any held key."""
        try:
            box = SealedBox.from_bytes(envelope.body)
        except CodecError:
            return None
        # Point-to-point frames bind (label, sender, recipient); relayed
        # APP_DATA frames bind (label, origin) only.
        from repro.enclaves.itgm.member import app_ad

        if envelope.label is Label.APP_DATA:
            ads = [app_ad(envelope.sender)]
        else:
            ads = [seal_ad(envelope.label, envelope.sender,
                           envelope.recipient)]
        for key in self.keys:
            for ad in ads:
                try:
                    plain = AuthenticatedCipher(key).open(box, ad)
                    return decode_fields(plain)
                except (IntegrityError, CodecError):
                    continue
        return None


def _field_preview(field: bytes, max_len: int = 12) -> str:
    """Render one decrypted field compactly."""
    try:
        text = field.decode("utf-8")
        if text.isprintable() and text:
            return text
    except UnicodeDecodeError:
        pass
    hexed = field.hex()
    return hexed[:max_len] + ("…" if len(hexed) > max_len else "")


def format_frame(
    index: int, envelope: Envelope, keyring: KeyRing | None = None,
    show_ids: bool = False,
) -> str:
    """One transcript line for one frame.

    With ``show_ids`` the line carries the frame's
    :func:`~repro.telemetry.events.frame_id`, so a transcript line and
    a telemetry event (a ``ReplayRejected``, a ``FrameDropped``) that
    name the same frame can be matched directly.
    """
    head = (
        f"{index:>4}  {envelope.sender:>10} -> {envelope.recipient:<10} "
        f"{envelope.label.name:<18}"
    )
    if show_ids:
        head = f"{index:>4}  [{frame_id(envelope)}] " \
               f"{envelope.sender:>10} -> {envelope.recipient:<10} " \
               f"{envelope.label.name:<18}"
    if not envelope.body:
        return head + "(empty)"
    if keyring is not None:
        fields = keyring.try_open(envelope)
        if fields is not None:
            inner = ", ".join(_field_preview(f) for f in fields)
            return head + f"{{{inner}}}"
    return head + f"<sealed, {len(envelope.body)}B>"


def format_transcript(
    frames: list[Envelope], keyring: KeyRing | None = None,
    title: str = "wire transcript", show_ids: bool = False,
) -> str:
    """Render a full wire log."""
    lines = [title, "=" * len(title)]
    for index, envelope in enumerate(frames, 1):
        lines.append(format_frame(index, envelope, keyring, show_ids))
    if not frames:
        lines.append("(no frames)")
    return "\n".join(lines)


def transcript_records(
    frames: list[Envelope], keyring: KeyRing | None = None
) -> list[dict]:
    """The wire log as JSON-ready dicts keyed by frame id.

    Each record carries the same ``frame`` identifier the telemetry
    events use, so an exported event log and an exported transcript can
    be joined on it.  Decrypted fields are included when the keyring
    opens the frame; otherwise the record is marked ``sealed``.
    """
    records = []
    for index, envelope in enumerate(frames, 1):
        record: dict = {
            "index": index,
            "frame": frame_id(envelope),
            "label": envelope.label.name,
            "sender": envelope.sender,
            "recipient": envelope.recipient,
        }
        fields = keyring.try_open(envelope) if keyring is not None else None
        if fields is not None:
            record["fields"] = [_field_preview(f) for f in fields]
        else:
            record["sealed"] = len(envelope.body)
        records.append(record)
    return records
