"""Synchronous message pump for sans-IO protocol cores.

Both protocol stacks are sans-IO (``handle(envelope) -> (out, events)``),
so a deterministic, single-threaded pump is enough to run complete
scenarios without asyncio.  Tests, the attack library, and the
benchmarks all drive the stacks through :class:`SyncNetwork`: it gives
deterministic delivery order, an interception hook with full Dolev-Yao
power, and a complete wire log.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.enclaves.common import Event
from repro.telemetry.events import (
    EventBus,
    FrameDropped,
    FrameInjected,
    frame_id,
    resolve_bus,
)
from repro.wire.message import Envelope

#: An interceptor sees each envelope before delivery and returns the list
#: of envelopes to actually deliver (empty list = drop; the original
#: envelope may be included, modified, or replaced).  ``None`` means
#: "deliver unchanged".
Interceptor = Callable[[Envelope], "list[Envelope] | None"]

#: A handler is a sans-IO protocol core entry point.
Handler = Callable[[Envelope], "tuple[list[Envelope], list[Event]]"]


class SyncNetwork:
    """Deterministic in-process network for sans-IO protocol cores."""

    def __init__(self, telemetry: EventBus | None = None) -> None:
        self._handlers: dict[str, Handler] = {}
        self._queue: deque[Envelope] = deque()
        #: All envelopes ever posted, in order (the wire log).
        self.wire_log: list[Envelope] = []
        #: Events emitted by each address, in order.
        self.events: dict[str, list[Event]] = {}
        self._interceptor: Interceptor | None = None
        self._telemetry = resolve_bus(telemetry)
        self.delivered = 0
        self.dropped = 0

    def register(self, address: str, handler: Handler) -> None:
        """Attach a protocol core at ``address``."""
        self._handlers[address] = handler
        self.events.setdefault(address, [])

    def set_interceptor(self, interceptor: Interceptor | None) -> None:
        """Install (or clear) the adversarial interception hook."""
        self._interceptor = interceptor

    # -- posting ---------------------------------------------------------------

    def post(self, envelope: Envelope) -> None:
        """Put an envelope on the wire (subject to interception)."""
        self.wire_log.append(envelope)
        if self._interceptor is not None:
            replacement = self._interceptor(envelope)
            if replacement is not None:
                if not replacement:
                    self.dropped += 1
                    if self._telemetry:
                        self._telemetry.emit(FrameDropped(
                            envelope.sender, envelope.recipient,
                            envelope.label.name, frame_id(envelope),
                        ))
                for sub in replacement:
                    self._queue.append(sub)
                return
        self._queue.append(envelope)

    def post_all(self, envelopes: list[Envelope]) -> None:
        for envelope in envelopes:
            self.post(envelope)

    def inject(self, envelope: Envelope) -> None:
        """Adversarial injection: bypasses the interceptor and the log
        is still updated (the attacker's own messages are part of the
        trace, as in the formal model)."""
        self.wire_log.append(envelope)
        if self._telemetry:
            self._telemetry.emit(FrameInjected(
                envelope.sender, envelope.recipient,
                envelope.label.name, frame_id(envelope),
            ))
        self._queue.append(envelope)

    # -- pumping -----------------------------------------------------------------

    def step(self) -> bool:
        """Deliver one queued envelope; returns False when idle."""
        if not self._queue:
            return False
        envelope = self._queue.popleft()
        handler = self._handlers.get(envelope.recipient)
        if handler is None:
            self.dropped += 1
            return True
        outgoing, events = handler(envelope)
        self.delivered += 1
        self.events[envelope.recipient].extend(events)
        for out in outgoing:
            self.post(out)
        return True

    def run(self, max_steps: int = 10_000) -> int:
        """Deliver until idle (or the step budget runs out)."""
        steps = 0
        while steps < max_steps and self.step():
            steps += 1
        if steps >= max_steps and self._queue:
            raise RuntimeError(
                f"SyncNetwork did not quiesce within {max_steps} steps"
            )
        return steps

    @property
    def idle(self) -> bool:
        return not self._queue

    def events_of(self, address: str, event_type: type | None = None) -> list[Event]:
        """Events emitted at ``address`` (optionally filtered by type)."""
        events = self.events.get(address, [])
        if event_type is None:
            return list(events)
        return [e for e in events if isinstance(e, event_type)]

    def clear_events(self) -> None:
        for address in self.events:
            self.events[address] = []


def wire(network: SyncNetwork, address: str, core) -> None:
    """Register a protocol core object (anything with ``handle``)."""
    network.register(address, core.handle)
