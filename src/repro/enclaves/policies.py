"""Composable access policies.

The paper: "L can either accept or deny access to A depending on the
application security policy."  The protocol layer only needs a
``user_id -> bool`` callable; this module provides the policies real
deployments ask for, composable with ``&`` / ``|`` / ``~``:

    policy = Allowlist({"alice", "bob"}) & MaxGroupSize(leader, 16)
    leader = GroupLeader("leader", directory,
                         config=LeaderConfig(access_policy=policy))

Policies are evaluated at AuthInitReq time; with the improved protocol,
denial is always silent (no forgeable denial message exists).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.util.clock import Clock, RealClock


class Policy:
    """Base: a callable policy with boolean composition."""

    def __call__(self, user_id: str) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Policy | Callable[[str], bool]") -> "Policy":
        return _Combined(lambda uid: self(uid) and other(uid),
                         f"({self!r} & {other!r})")

    def __or__(self, other: "Policy | Callable[[str], bool]") -> "Policy":
        return _Combined(lambda uid: self(uid) or other(uid),
                         f"({self!r} | {other!r})")

    def __invert__(self) -> "Policy":
        return _Combined(lambda uid: not self(uid), f"~{self!r}")


class _Combined(Policy):
    def __init__(self, fn: Callable[[str], bool], description: str) -> None:
        self._fn = fn
        self._description = description

    def __call__(self, user_id: str) -> bool:
        return self._fn(user_id)

    def __repr__(self) -> str:
        return self._description


class AllowAll(Policy):
    """Any registered user may join."""

    def __call__(self, user_id: str) -> bool:
        return True

    def __repr__(self) -> str:
        return "AllowAll()"


class Allowlist(Policy):
    """Only the listed users may join."""

    def __init__(self, user_ids: Iterable[str]) -> None:
        self.user_ids = frozenset(user_ids)

    def __call__(self, user_id: str) -> bool:
        return user_id in self.user_ids

    def __repr__(self) -> str:
        return f"Allowlist({sorted(self.user_ids)})"


class Denylist(Policy):
    """Everyone except the listed users may join."""

    def __init__(self, user_ids: Iterable[str]) -> None:
        self.user_ids = frozenset(user_ids)

    def __call__(self, user_id: str) -> bool:
        return user_id not in self.user_ids

    def __repr__(self) -> str:
        return f"Denylist({sorted(self.user_ids)})"


class MaxGroupSize(Policy):
    """Admit joins only while the group is below a size cap.

    Takes the leader lazily (a zero-argument membership thunk) so the
    policy can be built before the leader exists.
    """

    def __init__(self, members_thunk: Callable[[], list[str]],
                 limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self._members = members_thunk
        self.limit = limit

    @classmethod
    def of_leader(cls, leader, limit: int) -> "MaxGroupSize":
        return cls(lambda: leader.members, limit)

    def __call__(self, user_id: str) -> bool:
        members = self._members()
        return user_id in members or len(members) < self.limit

    def __repr__(self) -> str:
        return f"MaxGroupSize(limit={self.limit})"


class TimeWindow(Policy):
    """Admit joins only inside [open_at, close_at) on the given clock.

    For "the session is open 9:00-17:00" style policies; uses the
    injected clock so simulations control it.
    """

    def __init__(self, open_at: float, close_at: float,
                 clock: Clock | None = None) -> None:
        if close_at <= open_at:
            raise ValueError("close_at must be after open_at")
        self.open_at = open_at
        self.close_at = close_at
        self._clock = clock if clock is not None else RealClock()

    def __call__(self, user_id: str) -> bool:
        return self.open_at <= self._clock.now() < self.close_at

    def __repr__(self) -> str:
        return f"TimeWindow({self.open_at}, {self.close_at})"
