"""Enclaves protocol stacks.

Two complete stacks are provided:

* :mod:`repro.enclaves.legacy` — the **original** Enclaves protocols of
  paper §2.2, implemented faithfully *including their flaws* (plaintext
  pre-authentication, group key inside the auth exchange, replayable
  rekeying, member-forgeable membership notices).  This is the baseline
  that the attack library breaks.
* :mod:`repro.enclaves.itgm` — the paper's contribution (§3.2): the
  **intrusion-tolerant group management** protocol with nonce-chained,
  leader-authenticated admin delivery.

Both stacks are sans-IO state machines driven by small asyncio runtimes,
so they run identically over the in-memory adversarial network and TCP.
"""

from repro.enclaves.common import (
    AccessPolicy,
    Credentials,
    RekeyPolicy,
    UserDirectory,
    allow_all,
)

__all__ = [
    "Credentials",
    "UserDirectory",
    "AccessPolicy",
    "RekeyPolicy",
    "allow_all",
]
