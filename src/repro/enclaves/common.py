"""Shared protocol infrastructure: credentials, policies, events.

The paper assumes "each potential group member has a long-term password
that must be known in advance to the group leader."  A
:class:`UserDirectory` is the leader's registry of user -> ``P_a``; a
:class:`Credentials` object is one user's own identity + ``P_a``.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.crypto.keys import LongTermKey, derive_long_term_key
from repro.exceptions import UnknownPeer

#: An access policy maps a user id to "may this user join now?".
AccessPolicy = Callable[[str], bool]


def allow_all(_user_id: str) -> bool:
    """The permissive access policy: any registered user may join."""
    return True


class RekeyPolicy(enum.Flag):
    """When the leader generates a fresh group key (paper §2.2).

    "Typically, new keys can be generated when new members join, when
    members leave, or on a periodic basis."  Flags combine:
    ``ON_JOIN | ON_LEAVE`` rekeys on any membership change.
    """

    MANUAL = 0
    ON_JOIN = enum.auto()
    ON_LEAVE = enum.auto()
    PERIODIC = enum.auto()


@dataclass(frozen=True)
class Credentials:
    """One user's identity and long-term key ``P_a``."""

    user_id: str
    long_term_key: LongTermKey

    @classmethod
    def from_password(cls, user_id: str, password: str) -> "Credentials":
        """Derive credentials from a password, as the paper prescribes."""
        return cls(user_id, derive_long_term_key(user_id, password))


@dataclass
class UserDirectory:
    """The leader's registry of potential members and their keys."""

    _users: dict[str, LongTermKey] = field(default_factory=dict)

    def register(self, user_id: str, key: LongTermKey) -> None:
        """Register (or replace) a user's long-term key."""
        self._users[user_id] = key

    def register_password(self, user_id: str, password: str) -> Credentials:
        """Register a user by password and return their credentials."""
        creds = Credentials.from_password(user_id, password)
        self.register(user_id, creds.long_term_key)
        return creds

    def lookup(self, user_id: str) -> LongTermKey:
        """Return ``P_a`` for a user, raising :class:`UnknownPeer` if absent."""
        try:
            return self._users[user_id]
        except KeyError:
            raise UnknownPeer(f"no long-term key registered for {user_id!r}") from None

    def knows(self, user_id: str) -> bool:
        return user_id in self._users

    def remove(self, user_id: str) -> None:
        self._users.pop(user_id, None)

    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self):
        return iter(sorted(self._users))


# -- protocol events ------------------------------------------------------
#
# Sans-IO state machines emit events instead of performing IO; the asyncio
# runtimes and the test suites consume them.


@dataclass(frozen=True)
class Event:
    """Base class for protocol events."""


@dataclass(frozen=True)
class Joined(Event):
    """This endpoint completed authentication and entered the group."""

    user_id: str


@dataclass(frozen=True)
class Left(Event):
    """This endpoint left the group (or was told a session closed)."""

    user_id: str


@dataclass(frozen=True)
class MemberJoined(Event):
    """The leader announced that ``user_id`` joined the group."""

    user_id: str


@dataclass(frozen=True)
class MemberLeft(Event):
    """The leader announced that ``user_id`` left the group."""

    user_id: str


@dataclass(frozen=True)
class GroupKeyChanged(Event):
    """A new group key is in effect."""

    fingerprint: str


@dataclass(frozen=True)
class MembershipView(Event):
    """The leader communicated the full current membership."""

    members: tuple[str, ...]


@dataclass(frozen=True)
class AppMessage(Event):
    """An application (chat) payload from another member."""

    sender: str
    payload: bytes


@dataclass(frozen=True)
class AdminDelivered(Event):
    """An admin payload was accepted (used to check ordering/duplication)."""

    payload: object


@dataclass(frozen=True)
class Rejected(Event):
    """A message was discarded, with the reason.

    Honest endpoints never crash on bad input; they discard and emit
    this event so tests and monitors can see the attack being repelled.
    """

    reason: str
    label: object = None


@dataclass(frozen=True)
class Denied(Event):
    """A join attempt was rejected (access policy or legacy denial)."""

    user_id: str
    reason: str
