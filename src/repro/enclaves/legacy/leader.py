"""Legacy group leader (paper §2.2), flaws preserved.

Mirrors :class:`~repro.enclaves.itgm.leader.GroupLeader` structurally so
the attack matrix can run the same scenarios against both stacks, but the
protocol on the wire is the original one: plaintext pre-auth, group key
inside the auth exchange, nonce-free rekeying, group-key-sealed
membership notices, plaintext close.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.aead import AuthenticatedCipher, SealedBox
from repro.crypto.keys import KEY_LEN, GroupKey, SessionKey
from repro.crypto.rng import NONCE_LEN, RandomSource, SystemRandom
from repro.enclaves.common import (
    Denied,
    Event,
    Joined,
    Left,
    Rejected,
    RekeyPolicy,
    UserDirectory,
    allow_all,
)
from repro.enclaves.itgm.member import app_ad, seal_ad
from repro.exceptions import CodecError, IntegrityError, StateError
from repro.util.bytesops import constant_time_eq
from repro.wire.codec import (
    decode_fields,
    encode_fields,
    encode_str,
    encode_str_list,
)
from repro.wire.labels import Label
from repro.wire.message import Envelope


class LegacyLeaderState(enum.Enum):
    """Legacy leader per-user states."""

    NOT_CONNECTED = "NotConnected"
    OPENED = "Opened"
    WAITING_AUTH3 = "WaitingAuth3"
    CONNECTED = "Connected"


@dataclass
class _UserSlot:
    """Per-user connection state inside the legacy leader."""

    state: LegacyLeaderState = LegacyLeaderState.NOT_CONNECTED
    nonce: bytes | None = None
    session_key: SessionKey | None = None
    session_cipher: AuthenticatedCipher | None = None


@dataclass
class LegacyLeaderStats:
    joins: int = 0
    leaves: int = 0
    rekeys: int = 0
    relayed_frames: int = 0
    rejected: int = 0
    denied: int = 0


class LegacyGroupLeader:
    """Sans-IO legacy leader."""

    def __init__(
        self,
        leader_id: str,
        directory: UserDirectory,
        access_policy=allow_all,
        rekey_policy: RekeyPolicy = RekeyPolicy.MANUAL,
        rng: RandomSource | None = None,
    ) -> None:
        self.leader_id = leader_id
        self.directory = directory
        self.access_policy = access_policy
        self.rekey_policy = rekey_policy
        self._rng = rng if rng is not None else SystemRandom()
        self._slots: dict[str, _UserSlot] = {}
        self._group_key: GroupKey | None = None
        self._group_cipher: AuthenticatedCipher | None = None
        self.stats = LegacyLeaderStats()

    def _slot(self, user_id: str) -> _UserSlot:
        return self._slots.setdefault(user_id, _UserSlot())

    @property
    def members(self) -> list[str]:
        return sorted(
            uid for uid, slot in self._slots.items()
            if slot.state is LegacyLeaderState.CONNECTED
        )

    @property
    def group_key_fingerprint(self) -> str | None:
        return self._group_key.fingerprint() if self._group_key else None

    # -- incoming ---------------------------------------------------------------

    def handle(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if envelope.recipient != self.leader_id:
            self.stats.rejected += 1
            return [], [Rejected("not addressed to leader", envelope.label)]
        handlers = {
            Label.REQ_OPEN: self._on_req_open,
            Label.LEGACY_AUTH_1: self._on_auth1,
            Label.LEGACY_AUTH_3: self._on_auth3,
            Label.NEW_KEY_ACK: self._on_new_key_ack,
            Label.REQ_CLOSE_LEGACY: self._on_req_close,
            Label.APP_DATA: self._on_app_data,
        }
        handler = handlers.get(envelope.label)
        if handler is None:
            self.stats.rejected += 1
            return [], [Rejected("unexpected label", envelope.label)]
        return handler(envelope)

    def _on_req_open(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        user_id = envelope.sender
        # FLAW context (§2.3): the pre-auth reply is plaintext either
        # way; we reproduce it faithfully.
        if not self.directory.knows(user_id) or not self.access_policy(user_id):
            self.stats.denied += 1
            return (
                [Envelope(Label.CONNECTION_DENIED, self.leader_id, user_id, b"")],
                [Denied(user_id, "access policy")],
            )
        slot = self._slot(user_id)
        slot.state = LegacyLeaderState.OPENED
        return (
            [Envelope(Label.ACK_OPEN, self.leader_id, user_id, b"")],
            [],
        )

    def _on_auth1(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        user_id = envelope.sender
        slot = self._slots.get(user_id)
        if slot is None or slot.state is not LegacyLeaderState.OPENED:
            self.stats.rejected += 1
            return [], [Rejected("auth1 without req_open", envelope.label)]
        if not self.directory.knows(user_id):
            self.stats.rejected += 1
            return [], [Rejected("auth1 from unknown user", envelope.label)]
        long_term = AuthenticatedCipher(self.directory.lookup(user_id), self._rng)
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = long_term.open(
                box, seal_ad(Label.LEGACY_AUTH_1, user_id, self.leader_id)
            )
            user_b, leader_b, n1 = decode_fields(plain, expect=3)
        except (CodecError, IntegrityError):
            self.stats.rejected += 1
            return [], [Rejected("auth1 failed authentication", envelope.label)]
        if user_b != encode_str(user_id) or leader_b != encode_str(self.leader_id):
            self.stats.rejected += 1
            return [], [Rejected("auth1 identity mismatch", envelope.label)]
        if len(n1) != NONCE_LEN:
            self.stats.rejected += 1
            return [], [Rejected("auth1 malformed nonce", envelope.label)]

        # First member accepted => first group key (§2.2).  FLAW: the
        # group key ships in auth message 2, before auth completes.
        if self._group_key is None:
            self._rotate_group_key()
        n2 = self._rng.nonce().value
        slot.nonce = n2
        slot.session_key = SessionKey(self._rng.key_material(KEY_LEN))
        slot.session_cipher = AuthenticatedCipher(slot.session_key, self._rng)
        assert self._group_key is not None
        body = long_term.seal(
            encode_fields(
                [encode_str(self.leader_id), encode_str(user_id),
                 n1, n2, slot.session_key.material, self._group_key.material]
            ),
            seal_ad(Label.LEGACY_AUTH_2, self.leader_id, user_id),
        ).to_bytes()
        slot.state = LegacyLeaderState.WAITING_AUTH3
        return (
            [Envelope(Label.LEGACY_AUTH_2, self.leader_id, user_id, body)],
            [],
        )

    def _on_auth3(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        user_id = envelope.sender
        slot = self._slots.get(user_id)
        if (
            slot is None
            or slot.state is not LegacyLeaderState.WAITING_AUTH3
            or slot.session_cipher is None
        ):
            self.stats.rejected += 1
            return [], [Rejected("auth3 out of state", envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = slot.session_cipher.open(
                box, seal_ad(Label.LEGACY_AUTH_3, user_id, self.leader_id)
            )
            (n2,) = decode_fields(plain, expect=1)
        except (CodecError, IntegrityError):
            self.stats.rejected += 1
            return [], [Rejected("auth3 failed authentication", envelope.label)]
        assert slot.nonce is not None
        if len(n2) != NONCE_LEN or not constant_time_eq(n2, slot.nonce):
            self.stats.rejected += 1
            return [], [Rejected("auth3 stale nonce", envelope.label)]

        slot.state = LegacyLeaderState.CONNECTED
        self.stats.joins += 1
        out: list[Envelope] = []
        # Tell the group (under K_g) and send the newcomer the view.
        out.extend(self._membership_notice(user_id, added=True))
        out.append(self._membership_view_for(user_id))
        if RekeyPolicy.ON_JOIN in self.rekey_policy:
            out.extend(self.rekey_now())
        return out, [Joined(user_id)]

    def _on_new_key_ack(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        # The ack is {K_g'}_{K_g'}; the legacy leader only counts it.
        if self._group_cipher is None:
            self.stats.rejected += 1
            return [], [Rejected("new_key_ack without group key", envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._group_cipher.open(
                box, seal_ad(Label.NEW_KEY_ACK, envelope.sender, self.leader_id)
            )
            (kg,) = decode_fields(plain, expect=1)
            assert self._group_key is not None
            if kg != self._group_key.material:
                raise IntegrityError("acked wrong key")
        except (CodecError, IntegrityError, AssertionError):
            self.stats.rejected += 1
            return [], [Rejected("new_key_ack invalid", envelope.label)]
        return [], []

    def _on_req_close(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        # FLAW: req_close is plaintext — anyone can disconnect anyone.
        user_id = envelope.sender
        slot = self._slots.get(user_id)
        if slot is None or slot.state is not LegacyLeaderState.CONNECTED:
            self.stats.rejected += 1
            return [], [Rejected("req_close out of state", envelope.label)]
        slot.state = LegacyLeaderState.NOT_CONNECTED
        slot.session_key = None
        slot.session_cipher = None
        slot.nonce = None
        self.stats.leaves += 1
        out = [Envelope(Label.CLOSE_CONNECTION, self.leader_id, user_id, b"")]
        out.extend(self._membership_notice(user_id, added=False))
        if RekeyPolicy.ON_LEAVE in self.rekey_policy and self.members:
            out.extend(self.rekey_now())
        return out, [Left(user_id)]

    def _on_app_data(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        sender = envelope.sender
        slot = self._slots.get(sender)
        if (
            slot is None
            or slot.state is not LegacyLeaderState.CONNECTED
            or self._group_cipher is None
        ):
            self.stats.rejected += 1
            return [], [Rejected("app data from non-member", envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            self._group_cipher.open(box, app_ad(sender))
        except (CodecError, IntegrityError):
            self.stats.rejected += 1
            return [], [Rejected("app data bad key", envelope.label)]
        out = [
            Envelope(Label.APP_DATA, sender, other, envelope.body)
            for other in self.members
            if other != sender
        ]
        self.stats.relayed_frames += len(out)
        return out, []

    # -- leader-initiated -----------------------------------------------------

    def rekey_now(self) -> list[Envelope]:
        """Rotate K_g and send ``new_key`` to every member.

        FLAW (§2.3): the new_key message carries no member-supplied
        freshness, so any recorded copy replays cleanly later.
        """
        if not self.members:
            raise StateError("cannot rekey an empty group")
        self._rotate_group_key()
        assert self._group_key is not None
        out = []
        for member in self.members:
            slot = self._slots[member]
            assert slot.session_cipher is not None
            body = slot.session_cipher.seal(
                encode_fields([self._group_key.material]),
                seal_ad(Label.NEW_KEY, self.leader_id, member),
            ).to_bytes()
            out.append(Envelope(Label.NEW_KEY, self.leader_id, member, body))
        self.stats.rekeys += 1
        return out

    def expel(self, user_id: str) -> list[Envelope]:
        """Expel a member ("a variation of this protocol", §2.2)."""
        slot = self._slots.get(user_id)
        if slot is None or slot.state is not LegacyLeaderState.CONNECTED:
            raise StateError(f"{user_id!r} is not a member")
        slot.state = LegacyLeaderState.NOT_CONNECTED
        slot.session_key = None
        slot.session_cipher = None
        self.stats.leaves += 1
        out = [Envelope(Label.CLOSE_CONNECTION, self.leader_id, user_id, b"")]
        out.extend(self._membership_notice(user_id, added=False))
        return out

    # -- helpers -----------------------------------------------------------------

    def _rotate_group_key(self) -> None:
        self._group_key = GroupKey(self._rng.key_material(KEY_LEN))
        self._group_cipher = AuthenticatedCipher(self._group_key, self._rng)

    def _membership_notice(self, user_id: str, added: bool) -> list[Envelope]:
        """``L, mem_added/mem_removed, {A}_{K_g}`` to every other member."""
        if self._group_cipher is None:
            return []
        label = Label.MEM_ADDED if added else Label.MEM_REMOVED
        out = []
        for other in self.members:
            if other == user_id:
                continue
            body = self._group_cipher.seal(
                encode_fields([encode_str(user_id)]),
                seal_ad(label, self.leader_id, other),
            ).to_bytes()
            out.append(Envelope(label, self.leader_id, other, body))
        return out

    def _membership_view_for(self, user_id: str) -> Envelope:
        """Send the newcomer the identities of the other members (§2.2)."""
        assert self._group_cipher is not None
        body = self._group_cipher.seal(
            encode_fields(
                [b"view", encode_str_list(self.members)]
            ),
            seal_ad(Label.MEM_ADDED, self.leader_id, user_id),
        ).to_bytes()
        return Envelope(Label.MEM_ADDED, self.leader_id, user_id, body)
