"""Legacy member state machine (paper §2.2), flaws preserved.

Protocol, as the paper gives it::

    1. A -> L: A, req_open
    2. L -> A: L, ack_open            (or connection_denied)  [PLAINTEXT]
    1. A -> L: A, {A, L, N1}_{P_a}
    2. L -> A: L, {L, A, N1, N2, K_a, IV, K_g}_{P_a}
    3. A -> L: A, {N2}_{K_a}
    ...
    L -> A: L, new_key, {K_g', IV}_{K_a}        [NO FRESHNESS -> replayable]
    A -> L: A, new_key_ack, {K_g'}_{K_g'}
    ...
    A -> L: A, req_close                         [PLAINTEXT]
    L -> A: L, close_connection                  [PLAINTEXT]
    L -> B: L, mem_removed, {A}_{K_g}            [FORGEABLE BY MEMBERS]

The known vulnerabilities are kept on purpose; each carries a
``FLAW:`` comment pointing at the §2.3 paragraph it realizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.aead import AuthenticatedCipher, SealedBox
from repro.crypto.keys import GroupKey, SessionKey
from repro.crypto.rng import NONCE_LEN, RandomSource, SystemRandom
from repro.enclaves.common import (
    AppMessage,
    Credentials,
    Denied,
    Event,
    GroupKeyChanged,
    Joined,
    Left,
    MemberJoined,
    MemberLeft,
    MembershipView,
    Rejected,
)
from repro.enclaves.itgm.member import app_ad, seal_ad
from repro.exceptions import CodecError, IntegrityError, StateError
from repro.util.bytesops import constant_time_eq
from repro.wire.codec import (
    decode_fields,
    decode_str_list,
    encode_fields,
    encode_str,
)
from repro.wire.labels import Label
from repro.wire.message import Envelope


class LegacyMemberState(enum.Enum):
    """Legacy member states (pre-auth adds one vs. Figure 2)."""

    NOT_CONNECTED = "NotConnected"
    WAITING_OPEN = "WaitingOpen"
    WAITING_FOR_KEY = "WaitingForKey"
    CONNECTED = "Connected"


@dataclass
class LegacyMemberStats:
    rejected: int = 0
    rekeys_accepted: int = 0
    app_accepted: int = 0


class LegacyMemberProtocol:
    """Sans-IO legacy member."""

    def __init__(
        self,
        credentials: Credentials,
        leader_id: str,
        rng: RandomSource | None = None,
    ) -> None:
        self.credentials = credentials
        self.user_id = credentials.user_id
        self.leader_id = leader_id
        self._rng = rng if rng is not None else SystemRandom()
        self._long_term_cipher = AuthenticatedCipher(
            credentials.long_term_key, self._rng
        )
        self.state = LegacyMemberState.NOT_CONNECTED
        self._nonce: bytes | None = None
        self._session_key: SessionKey | None = None
        self._session_cipher: AuthenticatedCipher | None = None
        self._group_key: GroupKey | None = None
        self._group_cipher: AuthenticatedCipher | None = None
        self.membership: set[str] = set()
        self.stats = LegacyMemberStats()
        #: History of installed group keys (lets tests observe reversion).
        self.group_key_history: list[str] = []

    # -- user actions --------------------------------------------------------

    def start_join(self) -> Envelope:
        """Step 1 of the pre-auth exchange: plaintext ``A, req_open``."""
        if self.state is not LegacyMemberState.NOT_CONNECTED:
            raise StateError(f"cannot join from {self.state}")
        self.state = LegacyMemberState.WAITING_OPEN
        return Envelope(Label.REQ_OPEN, self.user_id, self.leader_id, b"")

    def start_leave(self) -> Envelope:
        """Plaintext ``A, req_close`` (FLAW: trivially forgeable)."""
        if self.state is not LegacyMemberState.CONNECTED:
            raise StateError(f"cannot leave from {self.state}")
        self._reset()
        return Envelope(Label.REQ_CLOSE_LEGACY, self.user_id, self.leader_id, b"")

    def seal_app(self, payload: bytes) -> Envelope:
        """Seal an app payload under the current group key."""
        if self.state is not LegacyMemberState.CONNECTED or self._group_cipher is None:
            raise StateError("not connected with a group key")
        body = self._group_cipher.seal(
            encode_fields([encode_str(self.user_id), payload]),
            app_ad(self.user_id),
        ).to_bytes()
        return Envelope(Label.APP_DATA, self.user_id, self.leader_id, body)

    # -- envelope handling ------------------------------------------------------

    def handle(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if envelope.recipient != self.user_id:
            return [], [self._reject("not addressed to us", envelope.label)]
        handlers = {
            Label.ACK_OPEN: self._on_ack_open,
            Label.CONNECTION_DENIED: self._on_denied,
            Label.LEGACY_AUTH_2: self._on_auth2,
            Label.NEW_KEY: self._on_new_key,
            Label.CLOSE_CONNECTION: self._on_close,
            Label.MEM_ADDED: self._on_mem_added,
            Label.MEM_REMOVED: self._on_mem_removed,
            Label.APP_DATA: self._on_app_data,
        }
        handler = handlers.get(envelope.label)
        if handler is None:
            return [], [self._reject("unexpected label", envelope.label)]
        return handler(envelope)

    def _on_ack_open(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not LegacyMemberState.WAITING_OPEN:
            return [], [self._reject("ack_open out of state", envelope.label)]
        # Pre-auth accepted: begin the real authentication.
        n1 = self._rng.nonce().value
        self._nonce = n1
        body = self._long_term_cipher.seal(
            encode_fields(
                [encode_str(self.user_id), encode_str(self.leader_id), n1]
            ),
            seal_ad(Label.LEGACY_AUTH_1, self.user_id, self.leader_id),
        ).to_bytes()
        self.state = LegacyMemberState.WAITING_FOR_KEY
        return (
            [Envelope(Label.LEGACY_AUTH_1, self.user_id, self.leader_id, body)],
            [],
        )

    def _on_denied(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        # FLAW (§2.3): the denial is plaintext and unauthenticated — "A
        # has no guarantees that the reply ... actually came from the
        # group leader."  We accept it, exactly like the original.
        if self.state is not LegacyMemberState.WAITING_OPEN:
            return [], [self._reject("denied out of state", envelope.label)]
        self._reset()
        return [], [Denied(self.user_id, "connection_denied received")]

    def _on_auth2(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not LegacyMemberState.WAITING_FOR_KEY:
            return [], [self._reject("auth2 out of state", envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._long_term_cipher.open(
                box, seal_ad(Label.LEGACY_AUTH_2, self.leader_id, self.user_id)
            )
            fields = decode_fields(plain, expect=6)
        except (CodecError, IntegrityError):
            return [], [self._reject("auth2 failed authentication",
                                     envelope.label)]
        leader_b, user_b, n1, n2, ka_material, kg_material = fields
        if (
            leader_b != encode_str(self.leader_id)
            or user_b != encode_str(self.user_id)
        ):
            return [], [self._reject("auth2 identity mismatch", envelope.label)]
        assert self._nonce is not None
        if len(n1) != NONCE_LEN or not constant_time_eq(n1, self._nonce):
            return [], [self._reject("auth2 stale nonce", envelope.label)]
        if len(ka_material) != 32 or len(kg_material) != 32 or len(n2) != NONCE_LEN:
            return [], [self._reject("auth2 malformed keys", envelope.label)]

        # FLAW: the group key arrives inside the auth exchange, before
        # the leader has any proof we hold K_a.
        self._session_key = SessionKey(ka_material)
        self._session_cipher = AuthenticatedCipher(self._session_key, self._rng)
        self._install_group_key(GroupKey(kg_material))
        body = self._session_cipher.seal(
            encode_fields([n2]),
            seal_ad(Label.LEGACY_AUTH_3, self.user_id, self.leader_id),
        ).to_bytes()
        self.state = LegacyMemberState.CONNECTED
        self.membership = {self.user_id}
        reply = Envelope(Label.LEGACY_AUTH_3, self.user_id, self.leader_id, body)
        return [reply], [Joined(self.user_id), GroupKeyChanged(
            self._group_key.fingerprint())]

    def _on_new_key(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if (
            self.state is not LegacyMemberState.CONNECTED
            or self._session_cipher is None
        ):
            return [], [self._reject("new_key out of state", envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._session_cipher.open(
                box, seal_ad(Label.NEW_KEY, self.leader_id, self.user_id)
            )
            (kg_material,) = decode_fields(plain, expect=1)
        except (CodecError, IntegrityError):
            return [], [self._reject("new_key failed authentication",
                                     envelope.label)]
        if len(kg_material) != 32:
            return [], [self._reject("new_key malformed", envelope.label)]

        # FLAW (§2.3): "nothing guarantees to A that this message is
        # fresh" — there is no nonce of ours inside, so a replayed old
        # new_key re-installs an old group key.
        new_kg = GroupKey(kg_material)
        self._install_group_key(new_kg)
        self.stats.rekeys_accepted += 1
        ack_cipher = AuthenticatedCipher(new_kg, self._rng)
        body = ack_cipher.seal(
            encode_fields([kg_material]),
            seal_ad(Label.NEW_KEY_ACK, self.user_id, self.leader_id),
        ).to_bytes()
        ack = Envelope(Label.NEW_KEY_ACK, self.user_id, self.leader_id, body)
        return [ack], [GroupKeyChanged(new_kg.fingerprint())]

    def _on_close(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        # Plaintext close_connection: also unauthenticated (same family
        # of flaw as connection_denied).
        if self.state is LegacyMemberState.NOT_CONNECTED:
            return [], [self._reject("close out of state", envelope.label)]
        self._reset()
        return [], [Left(self.user_id)]

    def _on_mem_added(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        return self._on_membership_notice(envelope, added=True)

    def _on_mem_removed(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        # FLAW (§2.3): "Such a message can be easily forged by any group
        # member since it is encrypted with the common group key."
        return self._on_membership_notice(envelope, added=False)

    def _on_membership_notice(
        self, envelope: Envelope, added: bool
    ) -> tuple[list[Envelope], list[Event]]:
        if self.state is not LegacyMemberState.CONNECTED or self._group_cipher is None:
            return [], [self._reject("membership notice out of state",
                                     envelope.label)]
        label = Label.MEM_ADDED if added else Label.MEM_REMOVED
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._group_cipher.open(
                box, seal_ad(label, self.leader_id, self.user_id)
            )
            fields = decode_fields(plain)
        except (CodecError, IntegrityError):
            return [], [self._reject("membership notice bad key",
                                     envelope.label)]
        if len(fields) == 1:
            who = fields[0].decode("utf-8", errors="replace")
            if added:
                self.membership.add(who)
                return [], [MemberJoined(who)]
            self.membership.discard(who)
            return [], [MemberLeft(who)]
        # A full membership view (sent to newly joined members).
        try:
            members = decode_str_list(fields[1]) if len(fields) == 2 else []
        except CodecError:
            return [], [self._reject("malformed membership view",
                                     envelope.label)]
        self.membership = set(members)
        return [], [MembershipView(tuple(sorted(members)))]

    def _on_app_data(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not LegacyMemberState.CONNECTED or self._group_cipher is None:
            return [], [self._reject("app data out of state", envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._group_cipher.open(box, app_ad(envelope.sender))
            sender_b, payload = decode_fields(plain, expect=2)
        except (CodecError, IntegrityError):
            return [], [self._reject("app data bad key", envelope.label)]
        sender = sender_b.decode("utf-8", errors="replace")
        if sender == self.user_id:
            return [], []
        self.stats.app_accepted += 1
        return [], [AppMessage(sender, payload)]

    # -- internals -------------------------------------------------------------

    def _install_group_key(self, key: GroupKey) -> None:
        self._group_key = key
        self._group_cipher = AuthenticatedCipher(key, self._rng)
        self.group_key_history.append(key.fingerprint())

    def _reset(self) -> None:
        self.state = LegacyMemberState.NOT_CONNECTED
        self._nonce = None
        self._session_key = None
        self._session_cipher = None
        self._group_key = None
        self._group_cipher = None
        self.membership = set()

    def _reject(self, reason: str, label) -> Rejected:
        self.stats.rejected += 1
        return Rejected(reason, label)

    @property
    def current_group_key(self) -> GroupKey | None:
        """Exposed so attack code can model a *compromised* member."""
        return self._group_key

    @property
    def group_key_fingerprint(self) -> str | None:
        return self._group_key.fingerprint() if self._group_key else None
