"""The original Enclaves protocols (paper §2.2) — the flawed baseline.

This stack deliberately preserves the weaknesses that §2.3 diagnoses, so
that the attack library can demonstrate them:

* The **pre-authentication exchange** (`req_open` / `ack_open` /
  `connection_denied`) is plaintext and unauthenticated — anyone can
  forge a denial and lock a legitimate user out.
* **Membership notices** (`mem_removed`, `mem_added`) are sealed only
  under the shared group key K_g — any *member* can forge them.
* **Rekeying** (`new_key`) carries no freshness evidence — an old
  `new_key` message replays cleanly, reverting a member to a key that a
  past member may still hold.
* The **auth exchange** ships the group key inside message 2, so group
  access begins before the leader has confirmed the user holds K_a.

Do not deploy this stack; it exists as the paper's baseline.
"""

from repro.enclaves.legacy.leader import LegacyGroupLeader, LegacyLeaderState
from repro.enclaves.legacy.member import LegacyMemberProtocol, LegacyMemberState

__all__ = [
    "LegacyMemberProtocol",
    "LegacyMemberState",
    "LegacyGroupLeader",
    "LegacyLeaderState",
]
