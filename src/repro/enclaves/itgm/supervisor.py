"""Self-healing member runtime + leader crash/restart orchestration.

The improved protocol denies *silently* (§2.3 fix), so a member cannot
distinguish a dead leader from one that is ignoring it: liveness
detection must be timer-driven.  :class:`ResilientMemberClient` wraps
:class:`~repro.enclaves.itgm.client.MemberClient` with exactly that — a
watchdog fed by *authenticated* traffic (leader heartbeats, admin
messages, relayed app data), exponential backoff + seeded jitter on
rejoin, and automatic failover across an ordered manager list, the
asyncio counterpart of :class:`~repro.enclaves.itgm.failover.ResilientMember`.

:class:`LeaderOrchestrator` is the other half: it runs the current
manager as a :class:`~repro.enclaves.itgm.runtime.LeaderRuntime`, can
crash it (endpoint detached, frames to it vanish — a real crash, not a
graceful stop), restore it *warm* from a persistence snapshot taken at
crash time, or fail over *cold* to the next standby manager.

Design notes:

* Liveness refreshes only on events that required a key to produce
  (never on ``Rejected``/``Denied``), so injected junk cannot spoof a
  live leader.
* A leader never accepts a fresh ``AuthInitReq`` while it holds an
  active session for the user, so rejoining a *live* leader (partition
  heal, spurious suspicion) requires closing the stale session first.
  The supervisor caches the sealed ReqClose per manager and resends it
  before each join attempt — byte-identical resends are always safe.
* A half-open join (leader in WaitingForKeyAck) is *resumed*, not
  abandoned: the per-manager protocol object is kept, and its
  AuthInitReq retransmitted, because the leader will only ever answer
  that handshake until it completes.
* Recovery is terminal: after ``max_rounds`` passes over the manager
  list, :class:`~repro.exceptions.RecoveryFailed` surfaces as a
  :class:`RecoveryExhausted` event and :attr:`gave_up` — a clean error,
  not a hang.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.crypto.keys import KEY_LEN, KeyMaterial
from repro.crypto.rng import DeterministicRandom, RandomSource, SystemRandom
from repro.enclaves.common import (
    Credentials,
    Denied,
    Event,
    Rejected,
    UserDirectory,
)
from repro.enclaves.itgm.client import MemberClient
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.member import MemberState
from repro.enclaves.itgm.persistence import (
    open_snapshot,
    restore_leader,
    seal_snapshot,
    snapshot_leader,
)
from repro.enclaves.itgm.runtime import LeaderRuntime
from repro.exceptions import ProtocolError, RecoveryFailed, StateError
from repro.net.transport import Endpoint
from repro.overload.deadline import AdaptiveDeadline, RetryBudget
from repro.telemetry.events import (
    EventBus,
    LeaderCrashed,
    LeaderFailover,
    LeaderRestored,
    RecoveryGaveUp,
    RejoinCompleted,
    RetryBudgetExhausted,
    WatchdogFired,
    resolve_bus,
)
from repro.telemetry.spans import SpanTracer
from repro.util.backoff import BackoffPolicy
from repro.util.clock import Clock
from repro.wire.message import Envelope


# -- supervisor events -------------------------------------------------------


@dataclass(frozen=True)
class LeaderSuspected(Event):
    """The watchdog saw no authenticated traffic for too long."""

    leader_id: str
    silence: float


@dataclass(frozen=True)
class RejoinedGroup(Event):
    """Recovery succeeded: connected and keyed at ``leader_id``."""

    leader_id: str
    attempts: int
    downtime: float


@dataclass(frozen=True)
class RecoveryExhausted(Event):
    """Every rejoin avenue failed; the supervisor gave up."""

    attempts: int


@dataclass
class SupervisorConfig:
    """Timers and budgets for the self-healing member."""

    #: Seconds of authenticated silence before the leader is suspected.
    liveness_timeout: float = 2.5
    #: Watchdog poll interval.
    check_interval: float = 0.25
    #: Budget for one join attempt against one manager.
    join_timeout: float = 1.0
    #: AuthInitReq retransmission interval while joining.
    retransmit_interval: float = 0.25
    #: Exponential backoff between failed attempts.
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Jitter fraction: each backoff is scaled by 1 ± jitter/2 (seeded).
    jitter: float = 0.5
    #: Full passes over the manager list before giving up.
    max_rounds: int = 8

    def backoff_policy(self) -> BackoffPolicy:
        """The equivalent :class:`~repro.util.backoff.BackoffPolicy`.

        ``"centered"`` mode reproduces the supervisor's historical
        jitter formula bit-for-bit (same 8-byte draw per attempt), so
        seeded chaos schedules are unchanged by the unification.
        """
        return BackoffPolicy(
            base=self.backoff_base,
            factor=self.backoff_factor,
            max_delay=self.backoff_max,
            jitter=self.jitter,
            mode="centered",
        )


class _SharedEndpoint(Endpoint):
    """An endpoint wrapper whose close() is a no-op.

    The supervisor keeps one real network endpoint for the member's
    whole life but cycles through per-manager :class:`MemberClient`
    instances; each client's ``stop()`` closes its endpoint, which must
    not tear down the shared address.
    """

    def __init__(self, inner: Endpoint) -> None:
        self._inner = inner

    @property
    def address(self) -> str:
        return self._inner.address

    async def send(self, envelope: Envelope) -> None:
        await self._inner.send(envelope)

    async def recv(self) -> Envelope:
        return await self._inner.recv()

    async def close(self) -> None:
        pass  # the supervisor owns the real endpoint's lifetime


class ResilientMemberClient:
    """A member that detects leader death and heals itself.

    One :class:`MemberClient` per manager is kept for the supervisor's
    lifetime (the sans-IO protocol core supports multiple sessions), all
    sharing one network endpoint; exactly one client's receive loop runs
    at a time.  ``credentials_for`` maps manager id -> credentials, as
    in :class:`~repro.enclaves.itgm.failover.ResilientMember` (identical
    entries under password provisioning, per-manager under DH).
    """

    def __init__(
        self,
        credentials_for: dict[str, Credentials],
        manager_order: list[str],
        network,
        address: str | None = None,
        config: SupervisorConfig | None = None,
        rng: RandomSource | None = None,
        telemetry: EventBus | None = None,
        retry_budget: RetryBudget | None = None,
        adaptive_deadline: AdaptiveDeadline | None = None,
    ) -> None:
        if not manager_order:
            raise ValueError("manager_order must not be empty")
        for manager_id in manager_order:
            if manager_id not in credentials_for:
                raise ValueError(f"no credentials for manager {manager_id!r}")
        self._credentials_for = credentials_for
        self.manager_order = list(manager_order)
        self._network = network
        self.user_id = next(iter(credentials_for.values())).user_id
        self.address = address if address is not None else self.user_id
        self.config = config if config is not None else SupervisorConfig()
        self._rng = rng if rng is not None else SystemRandom()
        self._jitter_rng = (
            self._rng.fork("supervisor-jitter")
            if isinstance(self._rng, DeterministicRandom)
            else None
        )

        self._telemetry = resolve_bus(telemetry)
        #: Optional overload hardening (both default off = seed
        #: behaviour).  A retry budget caps how many reconnect retries
        #: a crash-restart storm may spend — without one the fixed
        #: max_rounds budget is the only brake.  An adaptive deadline
        #: replaces the static join_timeout with an EWMA-tracked one,
        #: so the supervisor stops waiting a full second for a manager
        #: that normally answers in 30 ms.
        self._retry_budget = retry_budget
        self._adaptive_deadline = adaptive_deadline
        self._tracer: SpanTracer | None = None
        self._endpoint = None          # real MemoryEndpoint
        self._shared: _SharedEndpoint | None = None
        self._clients: dict[str, MemberClient] = {}
        self._pending_close: dict[str, Envelope] = {}
        self.active: str | None = None
        self._task: asyncio.Task | None = None
        self._last_alive = 0.0
        self.gave_up = False
        #: Why the most recent join attempt failed (for the terminal
        #: RecoveryGaveUp event and operator forensics).
        self.last_error = ""

        #: Supervisor + forwarded protocol events, in order.
        self.events: asyncio.Queue[Event] = asyncio.Queue()
        # Recovery observability.
        self.suspicions = 0
        self.rejoins = 0
        self.attempts = 0
        self.rejoin_latencies: list[float] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def client(self) -> MemberClient | None:
        """The client bound to the manager we currently follow."""
        return self._clients.get(self.active) if self.active else None

    @property
    def connected(self) -> bool:
        c = self.client
        return (
            c is not None
            and c.protocol.state is MemberState.CONNECTED
            and c.protocol.has_group_key
        )

    @property
    def group_key_fingerprint(self) -> str | None:
        c = self.client
        return c.protocol.group_key_fingerprint if c else None

    async def start(self) -> None:
        """Attach the endpoint and start the supervision task."""
        if self._task is not None:
            return
        self._endpoint = await self._network.attach(self.address)
        self._shared = _SharedEndpoint(self._endpoint)
        self._last_alive = self._now()
        if self._tracer is None:
            self._tracer = SpanTracer(
                time_source=asyncio.get_running_loop().time,
                bus=self._telemetry,
            )
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop supervision, all client loops, and release the address."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for client in self._clients.values():
            await client.stop()
        if self._endpoint is not None:
            await self._endpoint.close()
            self._endpoint = None

    async def wait_done(self) -> None:
        """Wait until the supervision task exits (only on give-up)."""
        if self._task is not None:
            await asyncio.shield(self._task)

    # -- supervision loop ---------------------------------------------------

    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    async def _run(self) -> None:
        try:
            await self._reconnect()
            while True:
                await asyncio.sleep(self.config.check_interval)
                self._drain_active()
                silence = self._now() - self._last_alive
                if silence >= self.config.liveness_timeout:
                    self.suspicions += 1
                    assert self.active is not None
                    self.events.put_nowait(
                        LeaderSuspected(self.active, silence)
                    )
                    if self._telemetry:
                        self._telemetry.emit(WatchdogFired(
                            self.user_id, self.active, silence
                        ))
                    await self._reconnect()
        except RecoveryFailed as exc:
            self.gave_up = True
            if not self.last_error:
                self.last_error = str(exc)
            self.events.put_nowait(RecoveryExhausted(self.attempts))
            if self._telemetry:
                self._telemetry.emit(RecoveryGaveUp(
                    self.user_id, self.attempts, self.last_error
                ))

    def _drain_active(self) -> None:
        """Forward the active client's events; authenticated ones feed
        the watchdog (Rejected/Denied never do — junk is not liveness)."""
        client = self.client
        if client is None:
            return
        while not client.events.empty():
            event = client.events.get_nowait()
            if not isinstance(event, (Rejected, Denied)):
                self._last_alive = self._now()
            self.events.put_nowait(event)

    # -- recovery -----------------------------------------------------------

    def _rotation(self) -> list[str]:
        """Manager order starting from the one we currently follow."""
        if self.active is None or self.active not in self.manager_order:
            return list(self.manager_order)
        i = self.manager_order.index(self.active)
        return self.manager_order[i:] + self.manager_order[:i]

    def _backoff(self, attempt: int) -> float:
        return self.config.backoff_policy().delay(attempt, self._jitter_rng)

    def _join_timeout(self) -> float:
        if self._adaptive_deadline is not None:
            return self._adaptive_deadline.current()
        return self.config.join_timeout

    def _observe_join(self, elapsed: float) -> None:
        if self._adaptive_deadline is not None:
            self._adaptive_deadline.tracker.observe(elapsed)

    async def _reconnect(self) -> None:
        """Cycle managers with backoff until joined; terminal on budget."""
        down_since = self._now()
        attempts_here = 0
        rotation = self._rotation()
        if self._retry_budget is not None:
            # One deposit per reconnect *episode* — the Finagle scheme
            # the budget documents: only original requests deposit;
            # the retries below must not replenish what they withdraw.
            self._retry_budget.record_request()
        for _round in range(self.config.max_rounds):
            for manager_id in rotation:
                self.attempts += 1
                if await self._attempt(manager_id):
                    now = self._now()
                    downtime = now - down_since
                    self.rejoins += 1
                    self.rejoin_latencies.append(downtime)
                    self.active = manager_id
                    self._last_alive = now
                    self.events.put_nowait(
                        RejoinedGroup(manager_id, attempts_here + 1, downtime)
                    )
                    if self._tracer is not None:
                        self._tracer.record_span(
                            "rejoin", self.user_id, down_since, now,
                            leader=manager_id,
                        )
                    if self._telemetry:
                        self._telemetry.emit(RejoinCompleted(
                            self.user_id, manager_id,
                            attempts_here + 1, downtime,
                        ))
                    return
                if self._retry_budget is not None:
                    if not self._retry_budget.can_retry():
                        if self._telemetry:
                            self._telemetry.emit(RetryBudgetExhausted(
                                self.user_id, "reconnect",
                                attempts_here + 1,
                            ))
                        raise RecoveryFailed(
                            f"{self.user_id}: reconnect retry budget "
                            f"exhausted after {attempts_here + 1} attempts"
                        )
                    self._retry_budget.record_retry()
                await asyncio.sleep(self._backoff(attempts_here))
                attempts_here += 1
        raise RecoveryFailed(
            f"{self.user_id}: no manager reachable after "
            f"{self.config.max_rounds} rounds over {rotation}"
        )

    def _client_for(self, manager_id: str) -> MemberClient:
        client = self._clients.get(manager_id)
        if client is None:
            assert self._shared is not None
            fork = (
                self._rng.fork(f"toward-{manager_id}")
                if isinstance(self._rng, DeterministicRandom)
                else self._rng
            )
            client = MemberClient(
                self._credentials_for[manager_id],
                manager_id,
                self._shared,
                rng=fork,
                telemetry=self._telemetry,
            )
            self._clients[manager_id] = client
        return client

    async def _attempt(self, manager_id: str) -> bool:
        """One join attempt against one manager; True on success."""
        cfg = self.config
        # Only one receive loop at a time: park the previous client.
        if self.active is not None and self.active != manager_id:
            await self._clients[self.active].stop()
        client = self._client_for(manager_id)
        protocol = client.protocol
        if protocol.state is MemberState.CONNECTED:
            # Stale session (the leader went silent on us).  Close it
            # locally and tell the leader — a live leader refuses a
            # fresh AuthInitReq while this session is open.
            self._pending_close[manager_id] = protocol.start_leave()
        client.start()
        if protocol.state is MemberState.WAITING_FOR_KEY:
            # Resume the half-open handshake instead of starting a new
            # one the leader would reject.
            return await self._resume_join(manager_id, client)
        assert self._shared is not None
        close_frame = self._pending_close.get(manager_id)
        if close_frame is not None:
            await self._shared.send(close_frame)
        started = self._now()
        try:
            await client.join(
                timeout=self._join_timeout(),
                retransmit_interval=cfg.retransmit_interval,
            )
        except ProtocolError as exc:
            self.last_error = f"join {manager_id} failed: {exc}"
            return False
        self._observe_join(self._now() - started)
        self._pending_close.pop(manager_id, None)
        self.active = manager_id
        return True

    async def _resume_join(
        self, manager_id: str, client: MemberClient
    ) -> bool:
        """Drive a half-open join to completion by retransmission.

        If a close for this manager's *previous* session is still
        pending (it may have been lost along with our AuthInitReq, and
        a live leader rejects a fresh handshake while the old session
        is open), resend it ahead of the handshake every time.
        """
        cfg = self.config
        assert self._shared is not None
        started = self._now()
        deadline = started + self._join_timeout()
        while self._now() < deadline:
            close_frame = self._pending_close.get(manager_id)
            if close_frame is not None:
                await self._shared.send(close_frame)
            frame = client.protocol.retransmit_last()
            if frame is not None:
                await self._shared.send(frame)
            await asyncio.sleep(cfg.retransmit_interval)
            if self._joined(client):
                break
        if self._joined(client):
            self._observe_join(self._now() - started)
            self._pending_close.pop(manager_id, None)
            return True
        self.last_error = (
            f"resumed join toward {manager_id} timed out"
        )
        return False

    @staticmethod
    def _joined(client: MemberClient) -> bool:
        return (
            client.protocol.state is MemberState.CONNECTED
            and client.protocol.has_group_key
        )

    # -- member actions (delegate to the active client) ---------------------

    async def send_app(self, payload: bytes) -> None:
        client = self.client
        if client is None or not self.connected:
            raise StateError(f"{self.user_id} is not connected")
        await client.send_app(payload)


# -- leader-side orchestration ----------------------------------------------


class LeaderOrchestrator:
    """Runs one manager at a time; crashes, restores, and fails over.

    Managers are ordinary :class:`GroupLeader` instances (``mgr-0``,
    ``mgr-1``, ...) sharing one directory, exactly like
    :class:`~repro.enclaves.itgm.failover.ManagerSet`, but driven as
    asyncio :class:`LeaderRuntime` processes on a shared network.  A
    crash closes the endpoint — in-flight and future frames to that
    address vanish, as on a real dead host.
    """

    def __init__(
        self,
        network,
        directory: UserDirectory,
        manager_ids: list[str],
        config: LeaderConfig | None = None,
        rng: RandomSource | None = None,
        clock: Clock | None = None,
        tick_interval: float | None = 0.25,
        heartbeat_interval: float | None = 0.5,
        storage_key: KeyMaterial | None = None,
        telemetry: EventBus | None = None,
        disk=None,
        journal_fsync_every: int = 1,
        journal_compact_threshold: int | None = 64,
    ) -> None:
        if not manager_ids:
            raise ValueError("need at least one manager")
        self.network = network
        self.directory = directory
        self.order = list(manager_ids)
        self._config = config
        self._clock = clock
        self._tick_interval = tick_interval
        self._heartbeat_interval = heartbeat_interval
        self._storage_key = storage_key
        self._telemetry = resolve_bus(telemetry)
        rng = rng if rng is not None else SystemRandom()
        self._rng = rng
        # Durable mode: every manager journals onto this (simulated)
        # disk, and crash recovery replays the journal instead of an
        # in-memory snapshot.
        self._disk = disk
        self._journal_fsync_every = journal_fsync_every
        self._journal_compact_threshold = journal_compact_threshold
        if disk is not None and self._storage_key is None:
            key_rng = (
                rng.fork("journal-storage")
                if isinstance(rng, DeterministicRandom) else rng
            )
            self._storage_key = KeyMaterial(key_rng.key_material(KEY_LEN))
        self._journals: dict[str, object] = {}
        self._all_journals: list = []
        self.journal_replays = 0
        self.journal_records_replayed = 0
        self.leaders: dict[str, GroupLeader] = {}
        for manager_id in self.order:
            fork = (
                rng.fork(manager_id)
                if isinstance(rng, DeterministicRandom)
                else rng
            )
            self.leaders[manager_id] = GroupLeader(
                manager_id, directory,
                config=config, rng=fork, clock=clock,
                telemetry=self._telemetry,
            )
        self.failed: set[str] = set()
        self.current_index = 0
        self.runtime: LeaderRuntime | None = None
        self._snapshot: dict | bytes | None = None
        self.crashes = 0
        self.warm_restores = 0
        self.failovers = 0

    @property
    def current_id(self) -> str:
        return self.order[self.current_index]

    @property
    def current_leader(self) -> GroupLeader:
        return self.leaders[self.current_id]

    @property
    def running(self) -> bool:
        return self.runtime is not None

    async def start(self) -> None:
        """Bring the current manager online."""
        if self.runtime is not None:
            raise StateError("a manager is already running")
        await self._launch(self.current_id)

    def _attach_journal(self, manager_id: str) -> None:
        from repro.storage.journal import Journal

        rng = self._rng
        journal = Journal(
            self._disk, f"{manager_id}.wal", self._storage_key,
            fsync_every=self._journal_fsync_every,
            compact_threshold=self._journal_compact_threshold,
            rng=(rng.fork(f"journal-{manager_id}-{len(self._all_journals)}")
                 if isinstance(rng, DeterministicRandom) else rng),
            node=manager_id,
            telemetry=self._telemetry,
        )
        journal.attach(self.leaders[manager_id])
        self._journals[manager_id] = journal
        self._all_journals.append(journal)

    def journal_counters(self) -> dict[str, int]:
        """Accumulated durability counters across every journal epoch."""
        return {
            "journal_appends": sum(j.appends for j in self._all_journals),
            "journal_fsyncs": sum(j.fsyncs for j in self._all_journals),
            "journal_compactions": sum(
                j.compactions for j in self._all_journals
            ),
            "journal_replays": self.journal_replays,
            "journal_records_replayed": self.journal_records_replayed,
        }

    async def _launch(self, manager_id: str) -> None:
        if self._disk is not None:
            self._attach_journal(manager_id)
        endpoint = await self.network.attach(manager_id)
        self.runtime = LeaderRuntime(
            self.leaders[manager_id],
            endpoint,
            tick_interval=self._tick_interval,
            heartbeat_interval=self._heartbeat_interval,
        )
        self.runtime.start()

    async def stop(self) -> None:
        """Graceful stop (no crash semantics, no snapshot)."""
        if self.runtime is not None:
            await self.runtime.stop()
            self.runtime = None

    # -- fault injection ----------------------------------------------------

    async def crash(self, flush: bool = False) -> None:
        """Kill the running manager.

        With ``flush`` the protocol state is snapshotted *at crash
        time* (and sealed when a storage key is configured) so
        :meth:`restore_warm` can continue every session where it was —
        a stale snapshot would desync the per-member nonce chains.
        Without ``flush`` the state is simply gone: the only way back
        is :meth:`failover`.
        """
        if self.runtime is None:
            raise StateError("no manager is running")
        if self._disk is not None:
            # Durable mode: the journal *is* the snapshot.  ``flush``
            # syncs the tail (clean-ish shutdown); without it the
            # power cut takes whatever fsync already covered.
            journal = self._journals.get(self.current_id)
            if flush and journal is not None:
                journal.sync()
            self._disk.crash("all" if flush else "none")
            self._disk.restart()
            self._snapshot = None
        elif flush:
            snapshot = snapshot_leader(self.current_leader)
            self._snapshot = (
                seal_snapshot(snapshot, self._storage_key)
                if self._storage_key is not None
                else snapshot
            )
        else:
            self._snapshot = None
        await self.runtime.stop()
        self.runtime = None
        self.crashes += 1
        if self._telemetry:
            self._telemetry.emit(LeaderCrashed(self.current_id, flush))

    async def restore_warm(self) -> None:
        """Restart the crashed manager from its crash-time snapshot."""
        if self.runtime is not None:
            raise StateError("a manager is already running")
        if self._disk is not None:
            from repro.storage.recovery import recover_leader

            old = self.leaders[self.current_id]
            leader, result = recover_leader(
                self._disk, f"{self.current_id}.wal",
                self._storage_key, self.directory,
                config=old.config, rng=old._rng, clock=self._clock,
                telemetry=self._telemetry, node=self.current_id,
            )
            self.journal_replays += 1
            self.journal_records_replayed += result.records
            self.leaders[self.current_id] = leader
            await self._launch(self.current_id)
            self.warm_restores += 1
            if self._telemetry:
                self._telemetry.emit(LeaderRestored(self.current_id))
            return
        if self._snapshot is None:
            raise StateError("no snapshot to restore from")
        snapshot = (
            open_snapshot(self._snapshot, self._storage_key)
            if isinstance(self._snapshot, bytes)
            else self._snapshot
        )
        old = self.leaders[self.current_id]
        self.leaders[self.current_id] = restore_leader(
            snapshot, self.directory,
            config=old.config, rng=old._rng, clock=self._clock,
            telemetry=self._telemetry,
        )
        await self._launch(self.current_id)
        self.warm_restores += 1
        if self._telemetry:
            self._telemetry.emit(LeaderRestored(self.current_id))

    async def failover(self) -> str:
        """Promote the next live standby; the dead primary stays dead.

        Raises :class:`StateError` when every manager has failed —
        the clean terminal outcome, mirrored on the member side by
        :class:`RecoveryExhausted`.
        """
        if self.runtime is not None:
            await self.crash(flush=False)
        dead = self.current_id
        self.failed.add(dead)
        for offset in range(1, len(self.order) + 1):
            candidate = self.order[
                (self.current_index + offset) % len(self.order)
            ]
            if candidate not in self.failed:
                self.current_index = self.order.index(candidate)
                await self._launch(candidate)
                self.failovers += 1
                if self._telemetry:
                    self._telemetry.emit(LeaderFailover(dead, candidate))
                return candidate
        raise StateError("all group managers have failed")
