"""The intrusion-tolerant group-management protocol (paper §3.2).

This package is the paper's primary contribution, realized as:

* :mod:`~repro.enclaves.itgm.admin` — the typed group-management payloads
  (the ``X`` field of AdminMsg): new group key, member joined/left,
  membership view.
* :mod:`~repro.enclaves.itgm.member` — the user state machine of Figure 2
  (NotConnected / WaitingForKey / Connected) as a sans-IO protocol core.
* :mod:`~repro.enclaves.itgm.leader_session` — the leader's per-user
  state machine of Figure 3 (NotConnected / WaitingForKeyAck /
  Connected / WaitingForAck).
* :mod:`~repro.enclaves.itgm.leader` — the full group leader: user
  directory, access policy, membership tracking, rekey policy, per-member
  stop-and-wait admin outboxes, and application-data relay.
* :mod:`~repro.enclaves.itgm.client` / :mod:`~repro.enclaves.itgm.runtime`
  — asyncio drivers wiring the sans-IO cores to any transport.

Security guarantees (proved in the paper, machine-checked in
:mod:`repro.formal`, and exercised at the bytes level by
:mod:`repro.attacks`): provided the member and leader are not compromised,
every admin payload a member accepts was sent by the leader, in order,
without duplication — no matter how many other participants are
compromised, and even if old session keys leak.
"""

from repro.enclaves.itgm.admin import (
    AdminPayload,
    MemberJoinedPayload,
    MemberLeftPayload,
    MembershipPayload,
    NewGroupKeyPayload,
    TextPayload,
)
from repro.enclaves.itgm.client import MemberClient
from repro.enclaves.itgm.failover import ManagerSet, ResilientMember
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.leader_session import LeaderSession, LeaderState
from repro.enclaves.itgm.member import MemberProtocol, MemberState
from repro.enclaves.itgm.persistence import (
    open_snapshot,
    restore_leader,
    seal_snapshot,
    snapshot_leader,
)
from repro.enclaves.itgm.runtime import LeaderRuntime
from repro.enclaves.itgm.supervisor import (
    LeaderOrchestrator,
    LeaderSuspected,
    RecoveryExhausted,
    RejoinedGroup,
    ResilientMemberClient,
    SupervisorConfig,
)

__all__ = [
    "AdminPayload",
    "NewGroupKeyPayload",
    "MemberJoinedPayload",
    "MemberLeftPayload",
    "MembershipPayload",
    "TextPayload",
    "MemberProtocol",
    "MemberState",
    "LeaderSession",
    "LeaderState",
    "GroupLeader",
    "LeaderConfig",
    "MemberClient",
    "LeaderRuntime",
    "ManagerSet",
    "ResilientMember",
    "ResilientMemberClient",
    "SupervisorConfig",
    "LeaderOrchestrator",
    "LeaderSuspected",
    "RejoinedGroup",
    "RecoveryExhausted",
    "snapshot_leader",
    "restore_leader",
    "seal_snapshot",
    "open_snapshot",
]
