"""Leader state persistence: warm restarts without losing the group.

The failover module (`repro.enclaves.itgm.failover`) covers *cold*
crash recovery: sessions die, members rejoin.  This module covers the
gentler case — a planned restart or a standby with replicated state —
by snapshotting the leader's complete protocol state (group key and
epoch, every per-user session with its key, nonce, and retransmission
cache, pending outboxes) and restoring it into a fresh
:class:`~repro.enclaves.itgm.leader.GroupLeader`.  Members never notice:
their sessions, nonce chains, and pending admin exchanges continue
exactly where they were.

Snapshots contain live keys, so the on-disk form is *sealed*:
:func:`seal_snapshot` wraps the serialized state in the same
encrypt-then-MAC construction as the wire protocol, under a storage key
the operator controls.  Restoring from a tampered or wrong-key blob
fails loudly.

Restrictions: the user directory (long-term keys) is provisioning
state, not protocol state; it is passed to :func:`restore_leader`
separately, exactly like the failover module does.
"""

from __future__ import annotations

import json

from repro.crypto.aead import AuthenticatedCipher, SealedBox
from repro.crypto.keys import GroupKey, KeyMaterial, SessionKey
from repro.crypto.rng import RandomSource
from repro.enclaves.common import UserDirectory
from repro.enclaves.itgm.admin import decode_payload
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.leader_session import LeaderSession, LeaderState
from repro.exceptions import ProtocolError
from repro.util.clock import Clock
from repro.wire.message import Envelope

#: Format marker so future layouts can migrate.
SNAPSHOT_VERSION = 1

#: Every layout this build can decode.  A snapshot from a newer build is
#: rejected up front (see :func:`validate_snapshot_version`) instead of
#: failing deep inside field decoding with a confusing KeyError.
KNOWN_SNAPSHOT_VERSIONS = frozenset({SNAPSHOT_VERSION})


def validate_snapshot_version(snapshot: dict) -> None:
    """Reject snapshots whose layout this build does not understand.

    Raises :class:`ProtocolError` naming the offending version and the
    versions this build accepts.
    """
    version = snapshot.get("version")
    if version not in KNOWN_SNAPSHOT_VERSIONS:
        known = sorted(KNOWN_SNAPSHOT_VERSIONS)
        raise ProtocolError(
            f"unsupported snapshot version {version!r} "
            f"(this build understands {known})"
        )

_STORAGE_AD = b"repro-enclaves-leader-snapshot-v1"


def _hex(data: bytes | None) -> str | None:
    return data.hex() if data is not None else None


def _unhex(text: str | None) -> bytes | None:
    return bytes.fromhex(text) if text is not None else None


def _session_snapshot(session: LeaderSession) -> dict:
    return {
        "state": session.state.name,
        "nonce": _hex(session._nonce),
        "session_key": _hex(
            session._session_key.material if session._session_key else None
        ),
        "admin_log": [payload.encode().hex()
                      for payload in session.admin_log],
        "discarded_keys": list(session.discarded_keys),
        "init_body": _hex(session._init_body),
        "last_outbound": (
            session._last_outbound.to_bytes().hex()
            if session._last_outbound is not None else None
        ),
    }


def _restore_session(
    leader_id: str, user_id: str, directory: UserDirectory,
    data: dict, rng: RandomSource | None,
) -> LeaderSession:
    session = LeaderSession(
        leader_id, user_id, directory.lookup(user_id), rng
    )
    session.state = LeaderState[data["state"]]
    session._nonce = _unhex(data["nonce"])
    key_material = _unhex(data["session_key"])
    if key_material is not None:
        session._session_key = SessionKey(key_material)
        session._session_cipher = AuthenticatedCipher(
            session._session_key, session._rng
        )
    session.admin_log = [
        decode_payload(bytes.fromhex(encoded))
        for encoded in data["admin_log"]
    ]
    session.discarded_keys = list(data["discarded_keys"])
    session._init_body = _unhex(data["init_body"])
    if data["last_outbound"] is not None:
        session._last_outbound = Envelope.from_bytes(
            bytes.fromhex(data["last_outbound"])
        )
    return session


def snapshot_leader(leader: GroupLeader) -> dict:
    """Capture the leader's complete protocol state as a JSON-able dict."""
    return {
        "version": SNAPSHOT_VERSION,
        "leader_id": leader.leader_id,
        "group_key": _hex(
            leader._group_key.material if leader._group_key else None
        ),
        "group_epoch": leader._group_epoch,
        "last_rotation_was_eviction": leader._last_rotation_was_eviction,
        "sessions": {
            user_id: _session_snapshot(session)
            for user_id, session in leader._sessions.items()
        },
        "outboxes": {
            user_id: [payload.encode().hex() for payload in outbox]
            for user_id, outbox in leader._outboxes.items()
        },
    }


def restore_leader(
    snapshot: dict,
    directory: UserDirectory,
    config: LeaderConfig | None = None,
    rng: RandomSource | None = None,
    clock: Clock | None = None,
    telemetry=None,
) -> GroupLeader:
    """Rebuild a :class:`GroupLeader` from :func:`snapshot_leader` output.

    Raises :class:`ProtocolError` on version mismatch or a user missing
    from the directory (the registry must be at least as current as the
    snapshot).
    """
    validate_snapshot_version(snapshot)
    from collections import deque

    leader = GroupLeader(
        snapshot["leader_id"], directory, config=config, rng=rng, clock=clock,
        telemetry=telemetry,
    )
    key_material = _unhex(snapshot["group_key"])
    if key_material is not None:
        leader._group_key = GroupKey(key_material)
        leader._group_cipher = AuthenticatedCipher(
            leader._group_key, leader._rng
        )
    leader._group_epoch = snapshot["group_epoch"]
    leader._last_rotation_was_eviction = snapshot[
        "last_rotation_was_eviction"
    ]
    # The previous-epoch cipher is deliberately NOT persisted: a restart
    # closes any rekey grace window (conservative: never widen a window
    # across an interruption whose duration we cannot know).
    for user_id, data in snapshot["sessions"].items():
        if not directory.knows(user_id):
            raise ProtocolError(
                f"snapshot references unknown user {user_id!r}"
            )
        leader._sessions[user_id] = _restore_session(
            leader.leader_id, user_id, directory, data, leader._rng
        )
    for user_id, encoded_payloads in snapshot["outboxes"].items():
        leader._outboxes[user_id] = deque(
            decode_payload(bytes.fromhex(encoded))
            for encoded in encoded_payloads
        )
    # Every session needs an outbox, even if it was empty at snapshot.
    for user_id in leader._sessions:
        leader._outboxes.setdefault(user_id, deque())
    return leader


def seal_snapshot(snapshot: dict, storage_key: KeyMaterial) -> bytes:
    """Serialize and seal a snapshot for storage at rest."""
    plain = json.dumps(snapshot, sort_keys=True).encode("utf-8")
    return AuthenticatedCipher(storage_key).seal(
        plain, _STORAGE_AD
    ).to_bytes()


def load_snapshot(blob: bytes, storage_key: KeyMaterial) -> dict:
    """Open a sealed snapshot *and* validate its format version.

    The safe entry point for blobs of unknown provenance (disk, a
    standby's replica): :func:`open_snapshot` only authenticates, so a
    sealed snapshot written by a newer build would pass the MAC check
    and then explode mid-restore.  Raises :class:`IntegrityError` on
    tampering and :class:`ProtocolError` on malformed content or an
    unknown ``version``.
    """
    snapshot = open_snapshot(blob, storage_key)
    validate_snapshot_version(snapshot)
    return snapshot


def open_snapshot(blob: bytes, storage_key: KeyMaterial) -> dict:
    """Verify and deserialize a sealed snapshot.

    Raises :class:`IntegrityError` on tampering or a wrong key, and
    :class:`ProtocolError` on malformed content.
    """
    box = SealedBox.from_bytes(blob)
    plain = AuthenticatedCipher(storage_key).open(box, _STORAGE_AD)
    try:
        snapshot = json.loads(plain.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed snapshot payload") from exc
    if not isinstance(snapshot, dict):
        raise ProtocolError("snapshot must be a JSON object")
    return snapshot


#: Public alias: the journal (:mod:`repro.storage.journal`) snapshots
#: individual sessions to build per-mutation state deltas.
session_snapshot = _session_snapshot
restore_session = _restore_session
