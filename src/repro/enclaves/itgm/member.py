"""The user (member) state machine — Figure 2 of the paper.

States::

    NotConnected --start_join/AuthInitReq--> WaitingForKey(N1)
    WaitingForKey(N1) --AuthKeyDist/AuthAckKey--> Connected(N3, K_a)
    Connected(N, K_a) --AdminMsg/Ack--> Connected(N', K_a)
    Connected(N, K_a) --start_leave/ReqClose--> NotConnected

The class is **sans-IO**: :meth:`handle` consumes one envelope and
returns ``(outgoing envelopes, events)``.  Anything that fails
authentication, carries a stale nonce, or arrives in the wrong state is
*discarded* with a :class:`~repro.enclaves.common.Rejected` event — an
honest endpoint never lets attacker input crash it or move its state.

Concrete realization notes (vs. the symbolic protocol):

* ``{X}_K`` is an encrypt-then-MAC sealed box (:mod:`repro.crypto.aead`)
  with the envelope header (label, sender, recipient) as associated
  data, so a ciphertext cannot be replayed under a different header.
* Nonce comparisons use constant-time equality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.aead import AuthenticatedCipher, SealedBox
from repro.crypto.keys import GroupKey, SessionKey
from repro.crypto.rng import NONCE_LEN, RandomSource, SystemRandom
from repro.enclaves.common import (
    AdminDelivered,
    AppMessage,
    Credentials,
    Event,
    GroupKeyChanged,
    Joined,
    MemberJoined,
    MemberLeft,
    MembershipView,
    Rejected,
)
from repro.enclaves.itgm.admin import (
    AdminPayload,
    CertifiedPayload,
    MemberJoinedPayload,
    MemberLeftPayload,
    MembershipPayload,
    NewGroupKeyPayload,
    decode_payload,
)
from repro.exceptions import CodecError, IntegrityError, StateError
from repro.telemetry.events import (
    AdminAccepted,
    EventBus,
    JoinCompleted,
    JoinStarted,
    RekeyInstalled,
    frame_id,
    rejection_event,
    resolve_bus,
)
from repro.util.bytesops import constant_time_eq
from repro.wire.codec import decode_fields, encode_fields, encode_str
from repro.wire.labels import Label
from repro.wire.message import Envelope


def seal_ad(label: Label, sender: str, recipient: str) -> bytes:
    """Associated data binding a sealed box to its envelope header."""
    return encode_fields(
        [bytes([label.value]), encode_str(sender), encode_str(recipient)]
    )


def app_ad(sender: str) -> bytes:
    """Associated data for group-key-sealed application frames.

    Application frames are relayed by the leader to every member, so the
    envelope *recipient* varies; only the label and origin are bound.
    """
    return encode_fields([bytes([Label.APP_DATA.value]), encode_str(sender)])


class MemberState(enum.Enum):
    """The three user states of Figure 2."""

    NOT_CONNECTED = "NotConnected"
    WAITING_FOR_KEY = "WaitingForKey"
    CONNECTED = "Connected"


@dataclass
class MemberStats:
    """Counters exposed for tests, attacks, and benchmarks."""

    rejected: int = 0
    admin_accepted: int = 0
    app_accepted: int = 0
    joins_completed: int = 0


class MemberProtocol:
    """Sans-IO protocol core for one group member."""

    def __init__(
        self,
        credentials: Credentials,
        leader_id: str,
        rng: RandomSource | None = None,
        rekey_grace: bool = True,
        telemetry: EventBus | None = None,
    ) -> None:
        """``rekey_grace``: during a group-key rotation, frames sealed
        under the immediately-previous key may still be in flight;
        with grace enabled the member accepts them (one epoch back,
        never further).  Disable for strict current-epoch-only
        semantics — the `bench_rekey` ablation measures the loss-rate
        difference.

        ``telemetry``: event bus for protocol observability; defaults
        to the process-wide bus, which is a no-op until subscribed."""
        self.credentials = credentials
        self._telemetry = resolve_bus(telemetry)
        #: frame id of the envelope currently being handled (causal
        #: parent for events emitted while dispatching it).
        self._cause = ""
        #: optional PhaseProfiler (observability); None when profiling
        #: is off so the hot-path guard is one attribute load.
        self._profiler = None
        self.user_id = credentials.user_id
        self.leader_id = leader_id
        self._rng = rng if rng is not None else SystemRandom()
        self._long_term_cipher = AuthenticatedCipher(
            credentials.long_term_key, self._rng
        )

        self.state = MemberState.NOT_CONNECTED
        self._nonce: bytes | None = None          # N_a: last nonce we generated
        self._session_key: SessionKey | None = None
        self._session_cipher: AuthenticatedCipher | None = None
        self._group_key: GroupKey | None = None
        self._group_cipher: AuthenticatedCipher | None = None
        self._group_epoch: int = -1
        self._rekey_grace = rekey_grace
        self._previous_group_cipher: AuthenticatedCipher | None = None

        # Loss recovery: byte-identical retransmission state.  The last
        # outbound frame (for our own retransmission timers) and the
        # bodies of the last peer frames we answered (so a duplicate of
        # the peer's frame triggers a verbatim resend of our answer
        # instead of a rejection — see retransmit_last()).
        self._last_outbound: Envelope | None = None
        self._answered_key_dist: bytes | None = None
        self._key_dist_reply: Envelope | None = None
        self._answered_admin: bytes | None = None
        self._admin_reply: Envelope | None = None

        #: Admin payloads accepted this session, in acceptance order.
        #: This is exactly the paper's ``rcv_A`` list (§5.4).
        self.admin_log: list[AdminPayload] = []
        #: Current view of group membership (maintained from payloads).
        self.membership: set[str] = set()
        self.stats = MemberStats()

    # -- actions initiated by the user ------------------------------------

    def start_join(self) -> Envelope:
        """Begin the authentication protocol (message 1, AuthInitReq).

        Sends ``AuthInitReq, A, L, {A, L, N1}_{P_a}``.
        """
        if self.state is not MemberState.NOT_CONNECTED:
            raise StateError(f"cannot join from {self.state}")
        n1 = self._rng.nonce().value
        self._nonce = n1
        body = self._long_term_cipher.seal(
            encode_fields(
                [encode_str(self.user_id), encode_str(self.leader_id), n1]
            ),
            seal_ad(Label.AUTH_INIT_REQ, self.user_id, self.leader_id),
        ).to_bytes()
        self.state = MemberState.WAITING_FOR_KEY
        envelope = Envelope(
            Label.AUTH_INIT_REQ, self.user_id, self.leader_id, body
        )
        self._last_outbound = envelope
        if self._telemetry:
            self._telemetry.emit(JoinStarted(
                self.user_id, self.leader_id, frame_id(envelope)
            ))
        return envelope

    def retransmit_last(self) -> Envelope | None:
        """Resend our last outbound frame, verbatim, for loss recovery.

        Meaningful while waiting for the key (AuthInitReq may have been
        lost); byte-identical resends are always safe — a peer that
        already processed the original treats the copy as a replay.
        """
        if self.state is MemberState.WAITING_FOR_KEY:
            return self._last_outbound
        return None

    def start_leave(self) -> Envelope:
        """Leave the session: ``ReqClose, A, L, {A, L}_{K_a}``."""
        if self.state is not MemberState.CONNECTED:
            raise StateError(f"cannot leave from {self.state}")
        assert self._session_cipher is not None
        body = self._session_cipher.seal(
            encode_fields([encode_str(self.user_id), encode_str(self.leader_id)]),
            seal_ad(Label.REQ_CLOSE, self.user_id, self.leader_id),
        ).to_bytes()
        self._reset_session()
        return Envelope(Label.REQ_CLOSE, self.user_id, self.leader_id, body)

    def seal_app(self, payload: bytes) -> Envelope:
        """Seal an application payload under the current group key.

        The frame goes to the leader for relay to the rest of the group
        (Figure 1: all group communication is mediated by the leader).
        """
        if self.state is not MemberState.CONNECTED:
            raise StateError("must be connected to send application data")
        if self._group_cipher is None:
            raise StateError("no group key distributed yet")
        prof = self._profiler
        tok = prof.begin("seal") if prof else None
        body = self._group_cipher.seal(
            encode_fields([encode_str(self.user_id), payload]),
            app_ad(self.user_id),
        ).to_bytes()
        if prof:
            prof.end(tok)
        return Envelope(Label.APP_DATA, self.user_id, self.leader_id, body)

    # -- envelope handling --------------------------------------------------

    def handle(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        """Process one incoming envelope; never raises on attacker input."""
        if self._telemetry:
            self._cause = frame_id(envelope)
        out, events = self._dispatch(envelope)
        if self._telemetry:
            self._publish(envelope, events)
        return out, events

    def _dispatch(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if envelope.recipient != self.user_id:
            return [], [self._reject("not addressed to us", envelope.label)]
        if envelope.label is Label.AUTH_KEY_DIST:
            return self._on_key_dist(envelope)
        if envelope.label is Label.ADMIN_MSG:
            return self._on_admin(envelope)
        if envelope.label is Label.APP_DATA:
            return self._on_app_data(envelope)
        return [], [self._reject("unexpected label", envelope.label)]

    def _publish(self, envelope: Envelope, events: list[Event]) -> None:
        """Map protocol events for one handled frame onto the bus."""
        bus = self._telemetry
        fid = frame_id(envelope)
        for event in events:
            if isinstance(event, Rejected):
                bus.emit(rejection_event(
                    self.user_id, event.reason, event.label, envelope
                ))
            elif isinstance(event, Joined):
                bus.emit(JoinCompleted(self.user_id, self.leader_id, fid))
            elif isinstance(event, GroupKeyChanged):
                bus.emit(RekeyInstalled(
                    self.user_id, self.leader_id,
                    self._group_epoch, event.fingerprint, fid,
                ))
            elif isinstance(event, AdminDelivered):
                bus.emit(AdminAccepted(
                    self.user_id, self.leader_id,
                    type(event.payload).__name__, fid,
                ))

    # -- message 2: AuthKeyDist ---------------------------------------------

    def _on_key_dist(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not MemberState.WAITING_FOR_KEY:
            # Loss recovery: the leader retransmits AuthKeyDist when our
            # AuthAckKey was lost.  A byte-identical copy of the frame
            # we already answered gets the cached answer back, verbatim.
            if (
                self.state is MemberState.CONNECTED
                and self._answered_key_dist is not None
                and envelope.body == self._answered_key_dist
                and self._key_dist_reply is not None
            ):
                return [self._key_dist_reply], []
            return [], [self._reject("AuthKeyDist outside WaitingForKey",
                                     envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._long_term_cipher.open(
                box, seal_ad(Label.AUTH_KEY_DIST, self.leader_id, self.user_id)
            )
            fields = decode_fields(plain, expect=5)
        except (CodecError, IntegrityError):
            return [], [self._reject("AuthKeyDist failed authentication",
                                     envelope.label)]
        leader_b, user_b, n1, n2, key_material = fields
        if leader_b != encode_str(self.leader_id) or user_b != encode_str(self.user_id):
            return [], [self._reject("AuthKeyDist identity mismatch",
                                     envelope.label)]
        assert self._nonce is not None
        if len(n1) != NONCE_LEN or not constant_time_eq(n1, self._nonce):
            return [], [self._reject("AuthKeyDist stale nonce N1",
                                     envelope.label)]
        if len(n2) != NONCE_LEN or len(key_material) != 32:
            return [], [self._reject("AuthKeyDist malformed key/nonce",
                                     envelope.label)]

        # Accept the session key; answer message 3: {N2, N3}_{K_a}.
        self._session_key = SessionKey(key_material)
        self._session_cipher = AuthenticatedCipher(self._session_key, self._rng)
        n3 = self._rng.nonce().value
        self._nonce = n3
        body = self._session_cipher.seal(
            encode_fields([n2, n3]),
            seal_ad(Label.AUTH_ACK_KEY, self.user_id, self.leader_id),
        ).to_bytes()
        self.state = MemberState.CONNECTED
        self.stats.joins_completed += 1
        self.membership = {self.user_id}
        reply = Envelope(Label.AUTH_ACK_KEY, self.user_id, self.leader_id, body)
        self._answered_key_dist = envelope.body
        self._key_dist_reply = reply
        self._last_outbound = reply
        return [reply], [Joined(self.user_id)]

    # -- group-management exchange -------------------------------------------

    def _on_admin(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not MemberState.CONNECTED:
            return [], [self._reject("AdminMsg outside Connected", envelope.label)]
        assert self._session_cipher is not None and self._nonce is not None
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._session_cipher.open(
                box, seal_ad(Label.ADMIN_MSG, self.leader_id, self.user_id)
            )
            fields = decode_fields(plain, expect=5)
        except (CodecError, IntegrityError):
            return [], [self._reject("AdminMsg failed authentication",
                                     envelope.label)]
        leader_b, user_b, n_prev, n_l, x = fields
        if leader_b != encode_str(self.leader_id) or user_b != encode_str(self.user_id):
            return [], [self._reject("AdminMsg identity mismatch", envelope.label)]
        if len(n_prev) != NONCE_LEN or not constant_time_eq(n_prev, self._nonce):
            # Loss recovery before the replay shield: a byte-identical
            # copy of the AdminMsg we *just* answered means our Ack was
            # lost — resend it verbatim, no state change, no event.
            if (
                self._answered_admin is not None
                and envelope.body == self._answered_admin
                and self._admin_reply is not None
            ):
                return [self._admin_reply], []
            # The replay shield: a stale N_{2i+1} means this AdminMsg is
            # not fresh (paper §3.2).
            return [], [self._reject("AdminMsg replay (stale nonce)",
                                     envelope.label)]
        if len(n_l) != NONCE_LEN:
            return [], [self._reject("AdminMsg malformed leader nonce",
                                     envelope.label)]
        try:
            payload = decode_payload(x)
        except CodecError:
            return [], [self._reject("AdminMsg undecodable payload",
                                     envelope.label)]

        # Accept: record, apply, acknowledge with a fresh N_{2i+3}.
        self.admin_log.append(payload)
        self.stats.admin_accepted += 1
        events: list[Event] = [AdminDelivered(payload)]
        events.extend(self._apply_admin(payload))

        n_next = self._rng.nonce().value
        self._nonce = n_next
        body = self._session_cipher.seal(
            encode_fields(
                [encode_str(self.user_id), encode_str(self.leader_id), n_l, n_next]
            ),
            seal_ad(Label.ACK, self.user_id, self.leader_id),
        ).to_bytes()
        ack = Envelope(Label.ACK, self.user_id, self.leader_id, body)
        self._answered_admin = envelope.body
        self._admin_reply = ack
        self._last_outbound = ack
        return [ack], events

    def _apply_admin(self, payload: AdminPayload) -> list[Event]:
        """Update local group view from an accepted admin payload."""
        if isinstance(payload, CertifiedPayload):
            return self._apply_certified(payload)
        if isinstance(payload, NewGroupKeyPayload):
            self._previous_group_cipher = (
                self._group_cipher
                if self._rekey_grace and not payload.eviction
                else None
            )
            self._group_key = payload.key
            self._group_cipher = AuthenticatedCipher(self._group_key, self._rng)
            self._group_epoch = payload.epoch
            return [GroupKeyChanged(payload.key.fingerprint())]
        if isinstance(payload, MemberJoinedPayload):
            self.membership.add(payload.user_id)
            return [MemberJoined(payload.user_id)]
        if isinstance(payload, MemberLeftPayload):
            self.membership.discard(payload.user_id)
            return [MemberLeft(payload.user_id)]
        if isinstance(payload, MembershipPayload):
            self.membership = set(payload.members)
            return [MembershipView(payload.members)]
        return []

    def _apply_certified(self, payload: CertifiedPayload) -> list[Event]:
        """Apply a certificate-wrapped payload.

        The base member trusts its single leader completely (the
        paper's model), so the certificate is *not* checked here — the
        inner payload is applied as if it arrived bare.  This is
        exactly the trust gap the Byzantine quorum closes:
        :class:`~repro.quorum.member.QuorumMemberProtocol` overrides
        this to verify the quorum certificate, refuse uncertified
        mutations, and detect equivocation.
        """
        return self._apply_admin(payload.inner)

    # -- application data ------------------------------------------------------

    def _on_app_data(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not MemberState.CONNECTED or self._group_cipher is None:
            return [], [self._reject("APP_DATA without group key", envelope.label)]
        prof = self._profiler
        tok = prof.begin("open") if prof else None
        try:
            box = SealedBox.from_bytes(envelope.body)
            try:
                plain = self._group_cipher.open(box, app_ad(envelope.sender))
            except IntegrityError:
                # Rekey grace: one epoch back, never further.
                if self._previous_group_cipher is None:
                    raise
                plain = self._previous_group_cipher.open(
                    box, app_ad(envelope.sender)
                )
            sender_b, payload = decode_fields(plain, expect=2)
        except (CodecError, IntegrityError):
            if prof:
                prof.end(tok)
            return [], [self._reject("APP_DATA failed group-key authentication",
                                     envelope.label)]
        if prof:
            prof.end(tok)
        sender = sender_b.decode("utf-8", errors="replace")
        if sender == self.user_id:
            return [], []  # our own frame echoed back; ignore
        self.stats.app_accepted += 1
        return [], [AppMessage(sender, payload)]

    # -- internals ----------------------------------------------------------

    def bind_profiler(self, profiler) -> None:
        """Attach a :class:`~repro.observability.profile.PhaseProfiler`
        to the seal/open hot paths (None detaches)."""
        self._profiler = profiler

    def _reset_session(self) -> None:
        self.state = MemberState.NOT_CONNECTED
        self._nonce = None
        self._session_key = None
        self._session_cipher = None
        self._group_key = None
        self._group_cipher = None
        self._group_epoch = -1
        self._previous_group_cipher = None
        self.admin_log = []
        self.membership = set()
        self._last_outbound = None
        self._answered_key_dist = None
        self._key_dist_reply = None
        self._answered_admin = None
        self._admin_reply = None

    def _reject(self, reason: str, label) -> Rejected:
        self.stats.rejected += 1
        return Rejected(reason, label)

    @property
    def group_epoch(self) -> int:
        """Epoch of the currently held group key (-1 if none)."""
        return self._group_epoch

    @property
    def has_group_key(self) -> bool:
        return self._group_cipher is not None

    @property
    def group_key(self) -> GroupKey | None:
        """The currently installed group key (None before first rekey).

        The data plane (:mod:`repro.dataplane`) seeds its per-sender
        chains from this key, so every epoch bump re-seeds every chain.
        """
        return self._group_key

    @property
    def group_key_fingerprint(self) -> str | None:
        """Fingerprint of the currently held group key (None if none)."""
        if self._group_key is None:
            return None
        return self._group_key.fingerprint()
