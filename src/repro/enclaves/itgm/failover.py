"""Standby group managers and failover (the paper's future work, scoped).

    "The main limit of the current Enclaves architecture is its reliance
     on a central group leader.  In future work, we intend to develop a
     more robust and scalable version of the system where the single
     leader is replaced by a distributed set of group managers." — §7

This module implements the crash-recovery slice of that programme: a
**set of group managers** sharing the user registry, one of which is
primary at any time.  When the primary fails, a standby takes over and
members re-authenticate to it with the *unchanged* §3.2 protocol —
fresh session keys, fresh group key, rebuilt membership.

What this preserves and what it does not:

* **Safety is untouched.**  Every §5 property is per (user, leader)
  session; a failover just ends sessions (exactly like a crash) and
  starts new ones against a different honest leader.  No protocol
  message ever crosses managers, so no new attack surface opens —
  which is why the proofs carry over verbatim.
* **Availability improves**: the group survives the loss of any
  minority of managers (members rejoin the next standby).
* **Not Byzantine**: managers are crash-faulty only.  A *compromised*
  manager is outside this design, as it is outside the paper's (the
  leader must be trusted — §6 points to Rampart/SecureRing for more).

Long-term keys work across managers out of the box in both provisioning
modes: password-derived ``P_a`` is leader-independent, and DH
provisioning (:mod:`repro.enclaves.pubkey`) derives one ``P_a`` per
(user, manager) pair — :class:`ManagerSet` handles either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRandom, RandomSource, SystemRandom
from repro.enclaves.common import Credentials, UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.member import MemberProtocol, MemberState
from repro.exceptions import StateError
from repro.wire.message import Envelope


@dataclass
class ManagerSet:
    """A fixed set of group managers, one primary at a time.

    Managers share one :class:`UserDirectory` (the user registry is
    replicated out of band — an enrollment concern, not a protocol
    one).  Each manager is an ordinary :class:`GroupLeader` under its
    own identity (``mgr-0``, ``mgr-1``, ...).
    """

    directory: UserDirectory
    managers: dict[str, GroupLeader] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    primary_index: int = 0
    failed: set[str] = field(default_factory=set)

    @classmethod
    def create(
        cls,
        n_managers: int,
        directory: UserDirectory,
        config: LeaderConfig | None = None,
        rng: RandomSource | None = None,
    ) -> "ManagerSet":
        rng = rng if rng is not None else SystemRandom()
        ms = cls(directory=directory)
        for i in range(n_managers):
            manager_id = f"mgr-{i}"
            fork = (
                rng.fork(manager_id)
                if isinstance(rng, DeterministicRandom)
                else rng
            )
            ms.managers[manager_id] = GroupLeader(
                manager_id, directory,
                config=config or LeaderConfig(), rng=fork,
            )
            ms.order.append(manager_id)
        return ms

    @property
    def primary_id(self) -> str:
        return self.order[self.primary_index]

    @property
    def primary(self) -> GroupLeader:
        return self.managers[self.primary_id]

    @property
    def alive_ids(self) -> list[str]:
        return [m for m in self.order if m not in self.failed]

    def fail_primary(self) -> str:
        """Crash the current primary and promote the next live standby.

        Returns the new primary's identity.  Raises
        :class:`StateError` when no standby remains.
        """
        self.failed.add(self.primary_id)
        for index in range(len(self.order)):
            candidate = self.order[(self.primary_index + 1 + index)
                                   % len(self.order)]
            if candidate not in self.failed:
                self.primary_index = self.order.index(candidate)
                return candidate
        raise StateError("all group managers have failed")

    def rehost_primary(
        self, state: dict, rng: RandomSource | None = None
    ) -> GroupLeader:
        """Install a replayed leader state as the (new) primary.

        The warm half of promotion (:func:`repro.storage.shipping.\
promote`): ``state`` is a snapshot dict replayed from shipped journal
        records, carrying the *dead* primary's ``leader_id``.  The
        standby re-hosts that logical identity — member sessions were
        established toward ``leader_id``, so keeping it is what lets
        them continue without re-authenticating.  The re-hosted leader
        replaces the old entry and becomes primary; the promoting
        standby's own (empty) leader identity stays available as a
        future cold spare.
        """
        from repro.enclaves.itgm.persistence import restore_leader

        leader_id = state.get("leader_id")
        if leader_id not in self.managers:
            raise StateError(f"state names unknown manager {leader_id!r}")
        old = self.managers[leader_id]
        leader = restore_leader(
            state, self.directory,
            config=old.config, rng=rng if rng is not None else old._rng,
        )
        self.managers[leader_id] = leader
        self.failed.discard(leader_id)
        self.primary_index = self.order.index(leader_id)
        return leader

    def recover(self, manager_id: str) -> None:
        """Bring a crashed manager back as a cold standby.

        Its in-memory group state is gone (crash-recovery model); it is
        re-created fresh around the shared directory.
        """
        if manager_id not in self.managers:
            raise StateError(f"unknown manager {manager_id!r}")
        old = self.managers[manager_id]
        self.managers[manager_id] = GroupLeader(
            manager_id, self.directory, config=old.config, rng=old._rng,
        )
        self.failed.discard(manager_id)


class ResilientMember:
    """A member that follows the primary across failovers.

    Owns one :class:`MemberProtocol` per epoch of leadership; on
    :meth:`follow` it abandons the old session (the crashed manager's
    keys are gone anyway) and re-authenticates to the new primary.
    The inner protocol is rebuilt because ``P_a`` may be
    manager-specific (DH provisioning).
    """

    def __init__(
        self,
        credentials_for: "dict[str, Credentials]",
        net: SyncNetwork,
        address: str,
        rng: RandomSource | None = None,
    ) -> None:
        """``credentials_for`` maps manager id -> this user's credentials
        toward that manager.  With password provisioning all entries are
        identical; with DH provisioning they differ per manager."""
        self._credentials_for = credentials_for
        self._net = net
        self._address = address
        self._rng = rng if rng is not None else SystemRandom()
        self._epoch = 0
        self.protocol: MemberProtocol | None = None
        self._registered = False

    @property
    def user_id(self) -> str:
        return next(iter(self._credentials_for.values())).user_id

    @property
    def connected(self) -> bool:
        return (
            self.protocol is not None
            and self.protocol.state is MemberState.CONNECTED
        )

    def follow(self, manager_id: str) -> Envelope:
        """(Re)bind to ``manager_id`` and produce the join request."""
        creds = self._credentials_for.get(manager_id)
        if creds is None:
            raise StateError(f"no credentials for manager {manager_id!r}")
        self._epoch += 1
        fork = (
            self._rng.fork(f"epoch-{self._epoch}")
            if isinstance(self._rng, DeterministicRandom)
            else self._rng
        )
        self.protocol = MemberProtocol(creds, manager_id, fork)
        if not self._registered:
            self._registered = True
            wire(self._net, self._address, self)
        return self.protocol.start_join()

    def handle(self, envelope: Envelope):
        """Route to the current-epoch protocol; stale-epoch frames (from
        a dead manager) fall through to it too and are rejected by its
        crypto checks, which is exactly the desired behaviour."""
        if self.protocol is None:
            return [], []
        return self.protocol.handle(envelope)


def run_failover_drill(
    n_managers: int = 3,
    member_ids: tuple[str, ...] = ("alice", "bob"),
    seed: int = 0,
) -> dict:
    """A complete scripted drill, used by tests and the example:

    join all members at mgr-0 → exchange traffic → crash mgr-0 →
    promote mgr-1 → everyone rejoins → exchange traffic again.
    Returns a report dict with the observable outcomes.
    """
    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    directory = UserDirectory()
    creds = {
        uid: directory.register_password(uid, f"pw-{uid}")
        for uid in member_ids
    }
    managers = ManagerSet.create(n_managers, directory, rng=rng.fork("mgrs"))
    for manager_id, manager in managers.managers.items():
        wire(net, manager_id, manager)

    members = {
        uid: ResilientMember(
            # Password provisioning: same credentials toward every manager.
            {m: creds[uid] for m in managers.order},
            net, uid, rng.fork(uid),
        )
        for uid in member_ids
    }
    for member in members.values():
        net.post(member.follow(managers.primary_id))
        net.run()
    before = {
        "primary": managers.primary_id,
        "members": list(managers.primary.members),
    }

    # Crash and promote.
    dead = managers.primary_id
    new_primary = managers.fail_primary()
    for member in members.values():
        net.post(member.follow(new_primary))
        net.run()
    after = {
        "primary": new_primary,
        "members": list(managers.primary.members),
        "dead": dead,
    }

    # Traffic on the new primary proves the group is live again.
    first = members[member_ids[0]]
    assert first.protocol is not None
    net.post(first.protocol.seal_app(b"we survived"))
    net.run()
    from repro.enclaves.common import AppMessage

    received = {
        uid: [e.payload for e in net.events_of(uid, AppMessage)]
        for uid in member_ids[1:]
    }
    return {"before": before, "after": after, "received": received}
