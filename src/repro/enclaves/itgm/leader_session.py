"""The leader's per-user state machine — Figure 3 of the paper.

The leader is "the composition of separate transition systems, one for
each user"; this class is one of those systems.  States::

    NotConnected --AuthInitReq/AuthKeyDist--> WaitingForKeyAck(N2, K_a)
    WaitingForKeyAck(N_l, K_a) --AuthAckKey--> Connected(N3, K_a)
    Connected(N_a, K_a) --send_admin/AdminMsg--> WaitingForAck(N_l, K_a)
    WaitingForAck(N_l, K_a) --Ack--> Connected(N', K_a)
    any-with-K_a --ReqClose--> NotConnected  (+ Oops(K_a): key discarded)

On ReqClose the session key is discarded; the formal model additionally
*publishes* it (the Oops event) to verify that the protocol stays safe
even when old session keys leak.  The runtime simply forgets it, but
:attr:`LeaderSession.discarded_keys` retains fingerprints so tests can
confirm a closed key is never honored again.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.aead import AuthenticatedCipher, SealedBox, SealRequest
from repro.crypto.keys import KEY_LEN, LongTermKey, SessionKey
from repro.crypto.rng import NONCE_LEN, RandomSource, SystemRandom
from repro.enclaves.common import Event, Joined, Left, Rejected
from repro.enclaves.itgm.admin import AdminPayload
from repro.enclaves.itgm.member import seal_ad
from repro.exceptions import CodecError, IntegrityError, StateError
from repro.util.bytesops import constant_time_eq
from repro.wire.codec import decode_fields, encode_fields, encode_str
from repro.wire.labels import Label
from repro.wire.message import Envelope


class LeaderState(enum.Enum):
    """The four per-user leader states of Figure 3."""

    NOT_CONNECTED = "NotConnected"
    WAITING_FOR_KEY_ACK = "WaitingForKeyAck"
    CONNECTED = "Connected"
    WAITING_FOR_ACK = "WaitingForAck"


@dataclass
class LeaderSessionStats:
    """Counters for tests and benchmarks."""

    rejected: int = 0
    admin_sent: int = 0
    acks_accepted: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0


class LeaderSession:
    """Sans-IO leader-side state machine for one user A."""

    def __init__(
        self,
        leader_id: str,
        user_id: str,
        long_term_key: LongTermKey,
        rng: RandomSource | None = None,
    ) -> None:
        self.leader_id = leader_id
        self.user_id = user_id
        self._rng = rng if rng is not None else SystemRandom()
        self._long_term_cipher = AuthenticatedCipher(long_term_key, self._rng)

        self.state = LeaderState.NOT_CONNECTED
        self._nonce: bytes | None = None        # N_l we await, or N_a we hold
        self._session_key: SessionKey | None = None
        self._session_cipher: AuthenticatedCipher | None = None
        self._last_outbound: Envelope | None = None
        self._init_body: bytes | None = None  # opens the current handshake

        #: Admin payloads sent this session, in send order: the paper's
        #: ``snd_A`` list (§5.4).  Emptied when the session closes.
        self.admin_log: list[AdminPayload] = []
        #: Fingerprints of session keys discarded on close (Oops'd keys).
        self.discarded_keys: list[str] = []
        #: Monotonic dirty counter, bumped on every durable state change.
        #: The write-ahead journal uses it to re-serialize only the
        #: sessions that actually moved since the last record — without
        #: it, every mutation would re-encode every session's full admin
        #: history.
        self.version = 0
        self.stats = LeaderSessionStats()

    # -- leader-initiated actions ----------------------------------------------

    def send_admin(self, payload: AdminPayload) -> Envelope:
        """Send ``AdminMsg, L, A, {L, A, N_a, N_l, X}_{K_a}``.

        Only legal in Connected (the channel is stop-and-wait: one
        outstanding admin message per member).
        """
        request = self.prepare_admin(payload)
        return self.finish_admin(
            request.cipher.seal(request.plaintext, request.associated_data)
        )

    def prepare_admin(self, payload: AdminPayload) -> SealRequest:
        """Phase 1 of an admin send: everything except the seal.

        Advances the nonce chain and the channel state exactly as
        :meth:`send_admin` would, and returns the
        :class:`~repro.crypto.aead.SealRequest` for the frame body.  The
        leader's fan-out collects one request per member and seals them
        in a single :func:`repro.crypto.aead.seal_many` batch; the
        sealed box must then come back through :meth:`finish_admin`
        (before any other frame is processed) to arm retransmission.
        """
        if self.state is not LeaderState.CONNECTED:
            raise StateError(f"cannot send admin from {self.state}")
        assert self._session_cipher is not None and self._nonce is not None
        n_l = self._rng.nonce().value
        plaintext = encode_fields(
            [encode_str(self.leader_id), encode_str(self.user_id),
             self._nonce, n_l, payload.encode()]
        )
        self._nonce = n_l
        self.state = LeaderState.WAITING_FOR_ACK
        self.admin_log.append(payload)
        self.version += 1
        self.stats.admin_sent += 1
        return SealRequest(
            cipher=self._session_cipher,
            plaintext=plaintext,
            associated_data=seal_ad(
                Label.ADMIN_MSG, self.leader_id, self.user_id
            ),
        )

    def finish_admin(self, box: SealedBox) -> Envelope:
        """Phase 2 of an admin send: wrap the sealed body and arm
        retransmission (see :meth:`prepare_admin`)."""
        envelope = Envelope(
            Label.ADMIN_MSG, self.leader_id, self.user_id, box.to_bytes()
        )
        self._last_outbound = envelope
        return envelope

    def retransmit_last(self) -> Envelope | None:
        """Resend the last unacknowledged outbound frame, if any.

        Safe by construction: the frame is byte-identical, so a peer
        that already processed the original rejects the copy as a
        replay (stale nonce), while a peer that lost it makes progress.
        Only meaningful in the two waiting states; returns None
        elsewhere.
        """
        if self.state in (LeaderState.WAITING_FOR_KEY_ACK,
                          LeaderState.WAITING_FOR_ACK):
            return self._last_outbound
        return None

    # -- envelope handling --------------------------------------------------

    def handle(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        """Process one envelope claimed to come from this user."""
        if envelope.label is Label.AUTH_INIT_REQ:
            return self._on_auth_init(envelope)
        if envelope.label is Label.AUTH_ACK_KEY:
            return self._on_auth_ack(envelope)
        if envelope.label is Label.ACK:
            return self._on_ack(envelope)
        if envelope.label is Label.REQ_CLOSE:
            return self._on_req_close(envelope)
        return [], [self._reject("unexpected label", envelope.label)]

    def _on_auth_init(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not LeaderState.NOT_CONNECTED:
            # Loss recovery: if this is a byte-identical copy of the
            # AuthInitReq that opened the current handshake, our
            # AuthKeyDist was probably lost — retransmit it verbatim.
            # (Identical bytes, so a peer that already has it discards
            # the copy; no protocol state changes.)
            if (
                self.state is LeaderState.WAITING_FOR_KEY_ACK
                and self._init_body is not None
                and envelope.body == self._init_body
                and self._last_outbound is not None
            ):
                return [self._last_outbound], []
            # Figure 3 accepts AuthInitReq only when not connected; a
            # duplicate (or replayed) request mid-session is discarded.
            return [], [self._reject("AuthInitReq while session active",
                                     envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._long_term_cipher.open(
                box, seal_ad(Label.AUTH_INIT_REQ, self.user_id, self.leader_id)
            )
            fields = decode_fields(plain, expect=3)
        except (CodecError, IntegrityError):
            return [], [self._reject("AuthInitReq failed authentication",
                                     envelope.label)]
        user_b, leader_b, n1 = fields
        if user_b != encode_str(self.user_id) or leader_b != encode_str(self.leader_id):
            return [], [self._reject("AuthInitReq identity mismatch",
                                     envelope.label)]
        if len(n1) != NONCE_LEN:
            return [], [self._reject("AuthInitReq malformed nonce",
                                     envelope.label)]

        # Generate fresh N2 and session key; reply with AuthKeyDist.
        n2 = self._rng.nonce().value
        self._session_key = SessionKey(self._rng.key_material(KEY_LEN))
        self._session_cipher = AuthenticatedCipher(self._session_key, self._rng)
        self._nonce = n2
        body = self._long_term_cipher.seal(
            encode_fields(
                [encode_str(self.leader_id), encode_str(self.user_id),
                 n1, n2, self._session_key.material]
            ),
            seal_ad(Label.AUTH_KEY_DIST, self.leader_id, self.user_id),
        ).to_bytes()
        self.state = LeaderState.WAITING_FOR_KEY_ACK
        self.version += 1
        reply = Envelope(Label.AUTH_KEY_DIST, self.leader_id, self.user_id, body)
        self._last_outbound = reply
        self._init_body = envelope.body
        return [reply], []

    def _on_auth_ack(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not LeaderState.WAITING_FOR_KEY_ACK:
            return [], [self._reject("AuthAckKey outside WaitingForKeyAck",
                                     envelope.label)]
        assert self._session_cipher is not None and self._nonce is not None
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._session_cipher.open(
                box, seal_ad(Label.AUTH_ACK_KEY, self.user_id, self.leader_id)
            )
            n2, n3 = decode_fields(plain, expect=2)
        except (CodecError, IntegrityError):
            return [], [self._reject("AuthAckKey failed authentication",
                                     envelope.label)]
        if len(n2) != NONCE_LEN or not constant_time_eq(n2, self._nonce):
            return [], [self._reject("AuthAckKey stale nonce N2", envelope.label)]
        if len(n3) != NONCE_LEN:
            return [], [self._reject("AuthAckKey malformed nonce N3",
                                     envelope.label)]
        self._nonce = n3
        self.state = LeaderState.CONNECTED
        self.version += 1
        self.stats.sessions_opened += 1
        return [], [Joined(self.user_id)]

    def _on_ack(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if self.state is not LeaderState.WAITING_FOR_ACK:
            return [], [self._reject("Ack outside WaitingForAck", envelope.label)]
        assert self._session_cipher is not None and self._nonce is not None
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._session_cipher.open(
                box, seal_ad(Label.ACK, self.user_id, self.leader_id)
            )
            user_b, leader_b, n_l, n_next = decode_fields(plain, expect=4)
        except (CodecError, IntegrityError):
            return [], [self._reject("Ack failed authentication", envelope.label)]
        if user_b != encode_str(self.user_id) or leader_b != encode_str(self.leader_id):
            return [], [self._reject("Ack identity mismatch", envelope.label)]
        if len(n_l) != NONCE_LEN or not constant_time_eq(n_l, self._nonce):
            return [], [self._reject("Ack replay (stale nonce)", envelope.label)]
        if len(n_next) != NONCE_LEN:
            return [], [self._reject("Ack malformed next nonce", envelope.label)]
        self._nonce = n_next
        self.state = LeaderState.CONNECTED
        self.version += 1
        self.stats.acks_accepted += 1
        return [], []

    def _on_req_close(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        # Figure 3: ReqClose is honored from Connected and WaitingForAck
        # only.  A user can only seal {A, L}_{K_a} after accepting K_a —
        # i.e., after sending its AuthAckKey — so refusing the close in
        # WaitingForKeyAck guarantees the pending key ack is consumed
        # first and the §5.4 acceptance-prefix property survives message
        # reordering.
        if (
            self.state not in (LeaderState.CONNECTED, LeaderState.WAITING_FOR_ACK)
            or self._session_cipher is None
        ):
            return [], [self._reject("ReqClose with no session", envelope.label)]
        try:
            box = SealedBox.from_bytes(envelope.body)
            plain = self._session_cipher.open(
                box, seal_ad(Label.REQ_CLOSE, self.user_id, self.leader_id)
            )
            user_b, leader_b = decode_fields(plain, expect=2)
        except (CodecError, IntegrityError):
            return [], [self._reject("ReqClose failed authentication",
                                     envelope.label)]
        if user_b != encode_str(self.user_id) or leader_b != encode_str(self.leader_id):
            return [], [self._reject("ReqClose identity mismatch", envelope.label)]

        # Close: discard K_a (the formal model Oops's it here) and empty
        # the send log, per §5.4.
        assert self._session_key is not None
        self.discarded_keys.append(self._session_key.fingerprint())
        self._session_key = None
        self._session_cipher = None
        self._nonce = None
        self.admin_log = []
        self._last_outbound = None
        self._init_body = None
        was_member = self.state in (
            LeaderState.CONNECTED, LeaderState.WAITING_FOR_ACK
        )
        self.state = LeaderState.NOT_CONNECTED
        self.version += 1
        self.stats.sessions_closed += 1
        return [], [Left(self.user_id)] if was_member else []

    def close_locally(self) -> None:
        """Leader-initiated close (expulsion): discard K_a and reset.

        Mirrors the ReqClose handling but is driven by the leader's own
        decision rather than a message from the user.  The expelled
        user's endpoint will keep rejecting until its session times out
        or it rejoins — any message it sends under the discarded key is
        now unauthenticatable, which is the point.
        """
        if self._session_key is not None:
            self.discarded_keys.append(self._session_key.fingerprint())
        self._session_key = None
        self._session_cipher = None
        self._nonce = None
        self.admin_log = []
        self._last_outbound = None
        self._init_body = None
        self.state = LeaderState.NOT_CONNECTED
        self.version += 1
        self.stats.sessions_closed += 1

    # -- queries -----------------------------------------------------------

    @property
    def is_member(self) -> bool:
        """True once AuthAckKey was accepted and until the session closes."""
        return self.state in (LeaderState.CONNECTED, LeaderState.WAITING_FOR_ACK)

    @property
    def can_send_admin(self) -> bool:
        return self.state is LeaderState.CONNECTED

    @property
    def session_key_fingerprint(self) -> str | None:
        return self._session_key.fingerprint() if self._session_key else None

    def _reject(self, reason: str, label) -> Rejected:
        self.stats.rejected += 1
        return Rejected(reason, label)
