"""The group leader: membership, rekeying, admin distribution, relay.

This composes one :class:`~repro.enclaves.itgm.leader_session.LeaderSession`
per registered user (the paper models the leader exactly this way) and
adds the group-level behaviour of Figures 1-3:

* **Membership**: a user is a member from the moment their AuthAckKey is
  accepted until their ReqClose is processed.
* **Group key**: "the group leader generates a first group key K_g when
  the first member is accepted"; rotation follows a
  :class:`~repro.enclaves.common.RekeyPolicy`.
* **Admin distribution**: every group-management payload travels in the
  nonce-chained AdminMsg/Ack channel.  The channel is stop-and-wait per
  member, so the leader keeps a FIFO outbox per member and sends the next
  payload only when the previous one is acknowledged.
* **Relay** (Figure 1): application frames sealed under K_g are verified
  and relayed to every other current member.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.crypto.aead import AuthenticatedCipher, SealedBox, seal_many
from repro.crypto.keys import KEY_LEN, GroupKey
from repro.crypto.rng import RandomSource, SystemRandom
from repro.enclaves.common import (
    AccessPolicy,
    Denied,
    Event,
    Joined,
    Left,
    Rejected,
    RekeyPolicy,
    UserDirectory,
    allow_all,
)
from repro.enclaves.itgm.admin import (
    AdminPayload,
    MemberJoinedPayload,
    MemberLeftPayload,
    MembershipPayload,
    NewGroupKeyPayload,
)
from repro.enclaves.itgm.leader_session import LeaderSession, LeaderState
from repro.enclaves.itgm.member import app_ad
from repro.exceptions import CodecError, IntegrityError, StateError
from repro.telemetry.events import (
    AuthAccepted,
    EventBus,
    JoinDenied,
    MemberDeparted,
    MemberExpelled,
    RekeyIssued,
    frame_id,
    rejection_event,
    resolve_bus,
)
from repro.util.clock import Clock, RealClock
from repro.wire.codec import decode_fields, encode_fields, encode_str
from repro.wire.labels import Label
from repro.wire.message import Envelope


@dataclass
class LeaderStats:
    """Aggregate counters for benchmarks and tests."""

    joins: int = 0
    leaves: int = 0
    rekeys: int = 0
    relayed_frames: int = 0
    rejected: int = 0
    denied: int = 0
    grace_resealed: int = 0


@dataclass
class LeaderConfig:
    """Tunable leader behaviour."""

    rekey_policy: RekeyPolicy = RekeyPolicy.ON_JOIN | RekeyPolicy.ON_LEAVE
    rekey_interval: float = 60.0  # seconds, for RekeyPolicy.PERIODIC
    access_policy: AccessPolicy = field(default=allow_all)
    #: Accept (and re-seal under the current key) application frames
    #: sealed with the immediately-previous group key — frames that were
    #: in flight when a rotation happened.  One epoch back, never more;
    #: the sender was a legitimate member at sealing time.  Disable for
    #: strict current-epoch semantics (the bench_rekey ablation
    #: quantifies the message-loss difference).
    rekey_grace: bool = True


class GroupLeader:
    """Sans-IO group leader for the intrusion-tolerant protocol."""

    def __init__(
        self,
        leader_id: str,
        directory: UserDirectory,
        config: LeaderConfig | None = None,
        rng: RandomSource | None = None,
        clock: Clock | None = None,
        telemetry: EventBus | None = None,
    ) -> None:
        self.leader_id = leader_id
        self.directory = directory
        self.config = config if config is not None else LeaderConfig()
        self._rng = rng if rng is not None else SystemRandom()
        self._clock = clock if clock is not None else RealClock()
        self._telemetry = resolve_bus(telemetry)

        self._sessions: dict[str, LeaderSession] = {}
        self._outboxes: dict[str, deque[AdminPayload]] = {}
        self._group_key: GroupKey | None = None
        self._group_cipher: AuthenticatedCipher | None = None
        self._previous_group_cipher: AuthenticatedCipher | None = None
        self._last_rotation_was_eviction = False
        self._group_epoch = -1
        self._last_rekey = self._clock.now()
        self._journal = None
        #: frame id of the envelope currently being handled — the
        #: causal parent for events (and journal appends) its dispatch
        #: produces.  Empty for leader-initiated mutations.
        self._cause = ""
        #: optional PhaseProfiler (observability); None when off.
        self._profiler = None
        self.stats = LeaderStats()

    # -- durability hook ----------------------------------------------------

    def bind_journal(self, journal) -> None:
        """Attach a write-ahead journal (``repro.storage.journal``).

        Every mutating entry point calls back into the journal *before*
        returning its outgoing frames — write-ahead discipline: if the
        journal (or its disk) fails, the exception propagates and the
        mutation's outputs are withheld, so no member can ever observe
        state the journal lost.  Pass ``None`` to detach.
        """
        self._journal = journal

    def bind_profiler(self, profiler) -> None:
        """Attach a :class:`~repro.observability.profile.PhaseProfiler`
        to the open/multicast hot paths (None detaches)."""
        self._profiler = profiler

    def _checkpoint(self) -> None:
        if self._journal is not None:
            self._journal.record_mutation(self)

    # -- session plumbing ---------------------------------------------------

    def _session(self, user_id: str) -> LeaderSession | None:
        """Get or lazily create the per-user state machine."""
        session = self._sessions.get(user_id)
        if session is None:
            if not self.directory.knows(user_id):
                return None
            session = LeaderSession(
                self.leader_id, user_id, self.directory.lookup(user_id), self._rng
            )
            self._sessions[user_id] = session
            self._outboxes[user_id] = deque()
        return session

    @property
    def members(self) -> list[str]:
        """Current group membership, sorted."""
        return sorted(
            uid for uid, s in self._sessions.items() if s.is_member
        )

    @property
    def group_epoch(self) -> int:
        return self._group_epoch

    @property
    def group_key_fingerprint(self) -> str | None:
        """Fingerprint of the current group key (None before the first)."""
        if self._group_key is None:
            return None
        return self._group_key.fingerprint()

    def session_state(self, user_id: str):
        """The per-user FSM state (for tests/monitoring)."""
        session = self._sessions.get(user_id)
        return session.state if session else None

    def outbox_depth(self, user_id: str) -> int:
        """Queued-but-unsent admin payloads for one member."""
        return len(self._outboxes.get(user_id, ()))

    # -- incoming envelopes ----------------------------------------------------

    def handle(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        """Process one envelope; returns (outgoing, events)."""
        if self._telemetry:
            self._cause = frame_id(envelope)
        out, events = self._dispatch(envelope)
        self._checkpoint()
        if self._telemetry:
            self._publish(envelope, events)
            self._cause = ""
        return out, events

    def handle_many(
        self, envelopes: list[Envelope]
    ) -> tuple[list[Envelope], list[Event]]:
        """Process a flush of envelopes, batch-verifying APP_DATA runs.

        Equivalent to calling :meth:`handle` in order, with one fast
        path: consecutive APP_DATA relays are MAC-checked in a single
        :meth:`~repro.crypto.aead.AuthenticatedCipher.open_many` batch
        under the group cipher.  Frames whose batch check fails (or that
        are not plain relays) fall back to the unchanged single-frame
        logic, so every rejection reason, stat, and telemetry event is
        produced by exactly the code that always produced it.  With a
        profiler bound the batch is skipped entirely — per-frame phase
        attribution stays intact.
        """
        out: list[Envelope] = []
        events: list[Event] = []
        i, n = 0, len(envelopes)
        while i < n:
            run: list[Envelope] = []
            if self._profiler is None and self._group_cipher is not None:
                while (
                    i + len(run) < n
                    and envelopes[i + len(run)].label is Label.APP_DATA
                    and envelopes[i + len(run)].recipient == self.leader_id
                ):
                    run.append(envelopes[i + len(run)])
            if len(run) >= 2:
                o, e = self._relay_app_batch(run)
                i += len(run)
            else:
                o, e = self.handle(envelopes[i])
                i += 1
            out.extend(o)
            events.extend(e)
        return out, events

    def _relay_app_batch(
        self, run: list[Envelope]
    ) -> tuple[list[Envelope], list[Event]]:
        """Batch-open a run of APP_DATA frames, then dispatch each.

        Only verified-under-the-current-key plaintexts short-circuit;
        anything else (non-member sender, malformed box, MAC failure —
        including the rekey-grace case) re-enters :meth:`_relay_app`
        with no pre-opened plaintext and takes the normal path.
        """
        cipher = self._group_cipher
        items: list[tuple[SealedBox, bytes]] = []
        positions: list[int] = []
        for index, envelope in enumerate(run):
            session = self._sessions.get(envelope.sender)
            if session is None or not session.is_member:
                continue
            try:
                box = SealedBox.from_bytes(envelope.body)
            except CodecError:
                continue
            items.append((box, app_ad(envelope.sender)))
            positions.append(index)
        opened: list[bytes | None] = [None] * len(run)
        if items:
            for index, plain in zip(positions, cipher.open_many(items)):
                opened[index] = plain
        out: list[Envelope] = []
        events: list[Event] = []
        for envelope, plain in zip(run, opened):
            if self._telemetry:
                self._cause = frame_id(envelope)
            o, e = self._relay_app(envelope, _opened=plain)
            self._checkpoint()
            if self._telemetry:
                self._publish(envelope, e)
                self._cause = ""
            out.extend(o)
            events.extend(e)
        return out, events

    def _publish(self, envelope: Envelope, events: list[Event]) -> None:
        """Map protocol events for one handled frame onto the bus."""
        bus = self._telemetry
        fid = frame_id(envelope)
        for event in events:
            if isinstance(event, Rejected):
                bus.emit(rejection_event(
                    self.leader_id, event.reason, event.label, envelope
                ))
            elif isinstance(event, Joined):
                bus.emit(AuthAccepted(self.leader_id, event.user_id, fid))
            elif isinstance(event, Left):
                bus.emit(MemberDeparted(self.leader_id, event.user_id, fid))
            elif isinstance(event, Denied):
                bus.emit(JoinDenied(
                    self.leader_id, event.user_id, event.reason, fid
                ))

    def _dispatch(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        if envelope.recipient != self.leader_id:
            self.stats.rejected += 1
            return [], [Rejected("not addressed to leader", envelope.label)]
        if envelope.label is Label.APP_DATA:
            return self._relay_app(envelope)
        if envelope.label.is_data:
            return self._relay_data(envelope)

        user_id = envelope.sender
        if envelope.label is Label.AUTH_INIT_REQ:
            if not self.directory.knows(user_id):
                self.stats.denied += 1
                return [], [Denied(user_id, "unknown user")]
            if not self.config.access_policy(user_id):
                # The improved protocol has no pre-authentication
                # exchange: denial is silent, so outsiders cannot forge
                # a connection_denied DoS (§2.3 fix).
                self.stats.denied += 1
                return [], [Denied(user_id, "access policy")]

        session = self._session(user_id)
        if session is None:
            self.stats.rejected += 1
            return [], [Rejected("unknown sender", envelope.label)]

        out, events = session.handle(envelope)
        out = list(out)
        for event in events:
            if isinstance(event, Joined):
                out.extend(self._on_member_joined(user_id))
            elif isinstance(event, Left):
                out.extend(self._on_member_left(user_id))
            elif isinstance(event, Rejected):
                self.stats.rejected += 1
        out.extend(self._pump())
        return out, list(events)

    # -- membership changes --------------------------------------------------

    def _on_member_joined(self, user_id: str) -> list[Envelope]:
        self.stats.joins += 1
        rotate = (
            self._group_key is None
            or RekeyPolicy.ON_JOIN in self.config.rekey_policy
        )
        if rotate:
            self._rotate_group_key()
        # Everyone already in the group learns about the new member (and
        # the new key, if rotated).
        for other in self.members:
            if other == user_id:
                continue
            self._outboxes[other].append(MemberJoinedPayload(user_id))
            if rotate:
                self._outboxes[other].append(self._current_key_payload())
        # The new member gets the membership view and the group key —
        # "K_g must be distributed to A in subsequent group-management
        # messages" (§3.2).
        self._outboxes[user_id].append(
            MembershipPayload(tuple(self.members))
        )
        self._outboxes[user_id].append(self._current_key_payload())
        return []

    def _on_member_left(self, user_id: str) -> list[Envelope]:
        self.stats.leaves += 1
        self._outboxes[user_id].clear()
        rotate = (
            RekeyPolicy.ON_LEAVE in self.config.rekey_policy and self.members
        )
        if rotate:
            self._rotate_group_key(eviction=True)
        for other in self.members:
            self._outboxes[other].append(MemberLeftPayload(user_id))
            if rotate:
                self._outboxes[other].append(self._current_key_payload())
        return []

    # -- rekeying ---------------------------------------------------------------

    def _rotate_group_key(self, eviction: bool = False) -> None:
        # Grace never spans an eviction: an ex-member holds the previous
        # key, so honoring it even briefly would let them keep injecting
        # (spoofing a live member's name) until the next rotation.
        self._previous_group_cipher = (
            self._group_cipher
            if self.config.rekey_grace and not eviction
            else None
        )
        self._group_key = GroupKey(self._rng.key_material(KEY_LEN))
        self._group_cipher = AuthenticatedCipher(self._group_key, self._rng)
        self._group_epoch += 1
        self._last_rekey = self._clock.now()
        self._last_rotation_was_eviction = eviction
        self.stats.rekeys += 1
        if self._telemetry:
            self._telemetry.emit(RekeyIssued(
                self.leader_id, self._group_epoch, eviction, self._cause
            ))

    def _current_key_payload(self) -> NewGroupKeyPayload:
        assert self._group_key is not None
        return NewGroupKeyPayload(
            key=self._group_key,
            epoch=self._group_epoch,
            eviction=self._last_rotation_was_eviction,
        )

    def rekey_now(self) -> list[Envelope]:
        """Manually rotate the group key and distribute it to all members."""
        if not self.members:
            raise StateError("cannot rekey an empty group")
        self._rotate_group_key()
        for member in self.members:
            self._outboxes[member].append(self._current_key_payload())
        out = self._pump()
        self._checkpoint()
        return out

    def expel(self, user_id: str) -> list[Envelope]:
        """Expel a member ("a variation of this protocol can be used to
        expel some members", §2.2).

        The leader unilaterally closes the member's session (discarding
        K_a exactly as a ReqClose would), notifies the rest of the
        group through the authenticated admin channel, and rotates the
        group key if the policy rekeys on leave — so the expellee is
        also cryptographically evicted from group traffic.
        """
        session = self._sessions.get(user_id)
        if session is None or not session.is_member:
            raise StateError(f"{user_id!r} is not a member")
        session.close_locally()
        self._outboxes[user_id].clear()
        if self._telemetry:
            self._telemetry.emit(MemberExpelled(self.leader_id, user_id))
        out = self._on_member_left(user_id)
        out.extend(self._pump())
        self._checkpoint()
        return out

    def abort_session(self, user_id: str) -> list[Envelope]:
        """Unilaterally close *any* active per-user session.

        Like :meth:`expel`, but also legal for half-open handshakes
        (WaitingForKeyAck), which are not yet memberships.  Operators
        use it after a crash recovery when a member's channel is known
        to be desynced (the member is ahead of the journal's durable
        prefix): closing the stale leader-side session lets the member
        re-authenticate, since a leader never accepts a fresh
        AuthInitReq while it holds an active session.
        """
        session = self._sessions.get(user_id)
        if session is None or session.state is LeaderState.NOT_CONNECTED:
            raise StateError(f"{user_id!r} has no active session")
        was_member = session.is_member
        session.close_locally()
        self._outboxes[user_id].clear()
        if self._telemetry:
            self._telemetry.emit(MemberExpelled(self.leader_id, user_id))
        out = self._on_member_left(user_id) if was_member else []
        out.extend(self._pump())
        self._checkpoint()
        return out

    def tick(self) -> list[Envelope]:
        """Advance time-driven behaviour (periodic rekey + loss recovery)."""
        if (
            RekeyPolicy.PERIODIC in self.config.rekey_policy
            and self.members
            and self._clock.now() - self._last_rekey >= self.config.rekey_interval
        ):
            return self.rekey_now()
        out = self._pump() + self.retransmit_stalled()
        self._checkpoint()
        return out

    def retransmit_stalled(self) -> list[Envelope]:
        """Re-send the last unacknowledged frame of every waiting session.

        Byte-identical resends are always safe (a peer that already
        processed the original rejects the copy); they unblock channels
        whose AuthKeyDist/AdminMsg or the corresponding reply was lost.
        Drive this from a timer (LeaderRuntime's tick loop does).
        """
        out = []
        for session in self._sessions.values():
            envelope = session.retransmit_last()
            if envelope is not None:
                out.append(envelope)
        return out

    def heartbeat(self) -> list[Envelope]:
        """Authenticated liveness beacons, one per current member.

        The improved protocol denies *silently*, so a member cannot tell
        a dead leader from one ignoring it — liveness detection must be
        timer-driven on the member side (§7).  The beacon is an ordinary
        APP_DATA frame from the leader sealed under the current group
        key: one seal serves every member (the body is recipient-
        independent), it costs no nonce-chain state, no acks, and no
        admin-log growth, and only the real leader (or a member, whose
        name the frame does not carry) could have produced it.
        """
        if self._group_cipher is None or not self.members:
            return []
        body = self._group_cipher.seal(
            encode_fields([encode_str(self.leader_id), b"hb"]),
            app_ad(self.leader_id),
        ).to_bytes()
        return [
            Envelope(Label.APP_DATA, self.leader_id, member, body)
            for member in self.members
        ]

    # -- admin distribution --------------------------------------------------

    def broadcast_admin(self, payload: AdminPayload) -> list[Envelope]:
        """Queue an arbitrary admin payload to every current member."""
        for member in self.members:
            self._outboxes[member].append(payload)
        out = self._pump()
        self._checkpoint()
        return out

    def send_admin_to(self, user_id: str, payload: AdminPayload) -> list[Envelope]:
        """Queue an admin payload to one member."""
        session = self._sessions.get(user_id)
        if session is None or not session.is_member:
            raise StateError(f"{user_id!r} is not a member")
        self._outboxes[user_id].append(payload)
        out = self._pump()
        self._checkpoint()
        return out

    def _pump(self) -> list[Envelope]:
        """Send the next queued payload on every idle admin channel.

        A rekey or membership broadcast queues one payload per member;
        flushing them here is the leader's multicast fan-out, so when
        more than one channel is ready the seals go through one
        :func:`repro.crypto.aead.seal_many` batch (one provider dispatch
        for the whole flush) instead of one :meth:`seal` per member.
        Draw order stays deterministic (prepare in session order, then
        nonces in the same order), so seeded runs replay byte-for-byte.
        """
        prof = self._profiler
        tok = prof.begin("multicast") if prof else None
        ready: list[LeaderSession] = []
        for user_id, session in self._sessions.items():
            outbox = self._outboxes[user_id]
            if outbox and session.can_send_admin:
                ready.append(session)
        if len(ready) <= 1:
            out = [
                session.send_admin(self._outboxes[session.user_id].popleft())
                for session in ready
            ]
        else:
            requests = [
                session.prepare_admin(
                    self._outboxes[session.user_id].popleft()
                )
                for session in ready
            ]
            out = [
                session.finish_admin(box)
                for session, box in zip(ready, seal_many(requests))
            ]
        if prof:
            prof.end(tok)
        return out

    # -- application relay (Figure 1) --------------------------------------------

    def _relay_app(
        self, envelope: Envelope, _opened: bytes | None = None
    ) -> tuple[list[Envelope], list[Event]]:
        sender = envelope.sender
        session = self._sessions.get(sender)
        if session is None or not session.is_member:
            self.stats.rejected += 1
            return [], [Rejected("APP_DATA from non-member", envelope.label)]
        if self._group_cipher is None:
            self.stats.rejected += 1
            return [], [Rejected("APP_DATA before first group key",
                                 envelope.label)]
        # Verify under the current group key before relaying; a frame
        # sealed under an old (leaked) key is discarded here — except,
        # with rekey grace, frames exactly one epoch old, which the
        # leader re-seals under the current key so every recipient can
        # read them (the leader is trusted, so re-sealing is sound).
        # ``_opened`` short-circuits the verify when handle_many already
        # batch-checked this frame under the current key.
        body = envelope.body
        prof = self._profiler
        tok = prof.begin("open") if prof else None
        try:
            if _opened is not None:
                plain = _opened
            else:
                box = SealedBox.from_bytes(body)
                try:
                    plain = self._group_cipher.open(box, app_ad(sender))
                except IntegrityError:
                    if self._previous_group_cipher is None:
                        raise
                    plain = self._previous_group_cipher.open(
                        box, app_ad(sender)
                    )
                    body = self._group_cipher.seal(
                        plain, app_ad(sender)
                    ).to_bytes()
                    self.stats.grace_resealed += 1
            decode_fields(plain, expect=2)
        except (CodecError, IntegrityError):
            if prof:
                prof.end(tok)
            self.stats.rejected += 1
            return [], [Rejected("APP_DATA failed group-key check",
                                 envelope.label)]
        if prof:
            prof.end(tok)
            tok = prof.begin("multicast")
        out = [
            Envelope(Label.APP_DATA, sender, other, body)
            for other in self.members
            if other != sender
        ]
        if prof:
            prof.end(tok)
        self.stats.relayed_frames += len(out)
        return out, []

    # -- data-plane relay (leader-oblivious) --------------------------------------

    def _relay_data(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        """Relay a ratcheted data-plane frame *without opening it*.

        The whole point of the end-to-end data plane is that the relay
        never holds a message key — so unlike :meth:`_relay_app`, no
        group-key check happens here.  The leader still enforces
        membership: only current members may inject or receive data
        traffic, which is what turns an expulsion into an immediate
        traffic cutoff on top of the cryptographic rekey.

        ``DATA_MSG`` fans out to every member except the sender;
        ``DATA_ACK``/``DATA_NACK`` unicast back to the origin sender
        named (in the clear, as routing metadata) in the body.
        """
        sender = envelope.sender
        session = self._sessions.get(sender)
        if session is None or not session.is_member:
            self.stats.rejected += 1
            return [], [Rejected("data frame from non-member", envelope.label)]
        if envelope.label is Label.DATA_MSG:
            out = [
                Envelope(Label.DATA_MSG, sender, other, envelope.body)
                for other in self.members
                if other != sender
            ]
            self.stats.relayed_frames += len(out)
            return out, []
        # ACK/NACK: route to the origin member named in the body.
        try:
            from repro.dataplane.reliable import decode_control_routing

            origin, _acker, _box = decode_control_routing(envelope.body)
        except CodecError:
            self.stats.rejected += 1
            return [], [Rejected("malformed data control frame",
                                 envelope.label)]
        target = self._sessions.get(origin)
        if target is None or not target.is_member:
            self.stats.rejected += 1
            return [], [Rejected("data control for non-member",
                                 envelope.label)]
        self.stats.relayed_frames += 1
        return [Envelope(envelope.label, sender, origin, envelope.body)], []

    # -- introspection for the formal-vs-concrete cross-checks -------------------

    def admin_send_log(self, user_id: str) -> list[AdminPayload]:
        """The ``snd_A`` list for one member (empty when not in session)."""
        session = self._sessions.get(user_id)
        return list(session.admin_log) if session else []

    def stats_snapshot(self) -> dict:
        """One observability snapshot: group state, aggregate counters,
        and per-session health — what a monitoring endpoint would expose."""
        return {
            "members": self.members,
            "group_epoch": self._group_epoch,
            "stats": {
                "joins": self.stats.joins,
                "leaves": self.stats.leaves,
                "rekeys": self.stats.rekeys,
                "relayed_frames": self.stats.relayed_frames,
                "rejected": self.stats.rejected,
                "denied": self.stats.denied,
                "grace_resealed": self.stats.grace_resealed,
            },
            "sessions": {
                user_id: {
                    "state": session.state.name,
                    "outbox_depth": self.outbox_depth(user_id),
                    "admin_sent": session.stats.admin_sent,
                    "acks_accepted": session.stats.acks_accepted,
                    "rejected": session.stats.rejected,
                    "sessions_opened": session.stats.sessions_opened,
                    "sessions_closed": session.stats.sessions_closed,
                }
                for user_id, session in self._sessions.items()
            },
        }
