"""Asyncio member client: drives a MemberProtocol over any transport.

The client owns a background receive loop that feeds incoming envelopes
to the sans-IO core, sends whatever the core wants sent, and publishes
events to :attr:`events`.  High-level calls (:meth:`join`, :meth:`leave`,
:meth:`send_app`) are thin wrappers over the core's actions.
"""

from __future__ import annotations

import asyncio

from repro.crypto.rng import RandomSource
from repro.enclaves.common import Credentials, Event
from repro.enclaves.itgm.member import MemberProtocol, MemberState
from repro.exceptions import ConnectionClosed, ProtocolError
from repro.net.transport import Endpoint
from repro.telemetry.events import EventBus, resolve_bus
from repro.telemetry.spans import SpanTracer


class MemberClient:
    """A group member bound to a transport endpoint."""

    def __init__(
        self,
        credentials: Credentials,
        leader_id: str,
        endpoint: Endpoint,
        rng: RandomSource | None = None,
        telemetry: EventBus | None = None,
        tracer: SpanTracer | None = None,
    ) -> None:
        self._telemetry = resolve_bus(telemetry)
        self.protocol = MemberProtocol(
            credentials, leader_id, rng, telemetry=self._telemetry
        )
        self.endpoint = endpoint
        #: Every protocol event, in order; consumers drain this queue.
        self.events: asyncio.Queue[Event] = asyncio.Queue()
        self._state_changed = asyncio.Event()
        self._recv_task: asyncio.Task | None = None
        self._tracer = tracer

    @property
    def tracer(self) -> SpanTracer:
        """The span tracer (created lazily on the running loop's clock
        when none was injected)."""
        if self._tracer is None:
            self._tracer = SpanTracer(
                time_source=asyncio.get_running_loop().time,
                bus=self._telemetry,
            )
        return self._tracer

    @property
    def user_id(self) -> str:
        return self.protocol.user_id

    @property
    def state(self) -> MemberState:
        return self.protocol.state

    @property
    def membership(self) -> set[str]:
        return set(self.protocol.membership)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the background receive loop."""
        if self._recv_task is None:
            self._recv_task = asyncio.get_running_loop().create_task(
                self._recv_loop()
            )

    async def stop(self) -> None:
        """Stop the receive loop and close the endpoint."""
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except asyncio.CancelledError:
                pass
            self._recv_task = None
        await self.endpoint.close()

    async def _recv_loop(self) -> None:
        try:
            while True:
                envelope = await self.endpoint.recv()
                outgoing, events = self.protocol.handle(envelope)
                for out in outgoing:
                    await self.endpoint.send(out)
                for event in events:
                    self.events.put_nowait(event)
                self._state_changed.set()
                self._state_changed = asyncio.Event()
        except (ConnectionClosed, asyncio.CancelledError):
            pass

    # -- high-level operations -------------------------------------------------

    async def join(
        self,
        timeout: float = 5.0,
        retransmit_interval: float | None = None,
    ) -> None:
        """Authenticate and wait until connected with a group key.

        ``retransmit_interval`` enables loss recovery: while still
        waiting, the (byte-identical) AuthInitReq is re-sent every
        interval — on a lossy network joins then succeed eventually
        instead of failing on a single lost frame.

        Raises :class:`ProtocolError` on timeout (e.g., the leader denied
        us — the improved protocol denies *silently*, so denial and
        packet loss are indistinguishable by design).
        """
        self.start()
        # Trace the handshake when telemetry is live or a tracer was
        # injected; otherwise stay strictly zero-cost.
        span = (
            self.tracer.start("handshake", node=self.user_id)
            if (self._telemetry or self._tracer is not None)
            else None
        )
        await self.endpoint.send(self.protocol.start_join())

        async def _until_ready() -> None:
            while not (
                self.protocol.state is MemberState.CONNECTED
                and self.protocol.has_group_key
            ):
                await self._state_changed.wait()

        async def _retransmit_loop() -> None:
            assert retransmit_interval is not None
            # Stop as soon as the protocol leaves the joining state —
            # once keyed (or rejected) there is nothing left to re-send.
            while self.protocol.state is MemberState.WAITING_FOR_KEY:
                await asyncio.sleep(retransmit_interval)
                frame = self.protocol.retransmit_last()
                if frame is not None:
                    await self.endpoint.send(frame)

        retransmitter = (
            asyncio.get_running_loop().create_task(_retransmit_loop())
            if retransmit_interval is not None
            else None
        )
        try:
            await asyncio.wait_for(_until_ready(), timeout)
            if span is not None:
                self.tracer.finish(span, ok=True)
        except asyncio.TimeoutError:
            if span is not None:
                self.tracer.finish(span, ok=False)
            raise ProtocolError(
                f"{self.user_id}: join timed out (denied or lost)"
            ) from None
        finally:
            if retransmitter is not None:
                retransmitter.cancel()
                try:
                    await retransmitter
                except asyncio.CancelledError:
                    pass

    async def leave(self) -> None:
        """Send ReqClose and return to NotConnected."""
        await self.endpoint.send(self.protocol.start_leave())

    async def send_app(self, payload: bytes) -> None:
        """Send an application payload to the group (sealed under K_g)."""
        await self.endpoint.send(self.protocol.seal_app(payload))

    async def next_event(self, timeout: float = 5.0) -> Event:
        """Wait for the next protocol event."""
        return await asyncio.wait_for(self.events.get(), timeout)

    async def drain_events(self) -> list[Event]:
        """Return all currently queued events without waiting."""
        drained = []
        while not self.events.empty():
            drained.append(self.events.get_nowait())
        return drained
