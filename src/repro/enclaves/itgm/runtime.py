"""Asyncio leader runtime: drives a GroupLeader over any transport."""

from __future__ import annotations

import asyncio

from repro.enclaves.common import Event
from repro.enclaves.itgm.leader import GroupLeader
from repro.exceptions import ConnectionClosed
from repro.net.transport import Endpoint


class LeaderRuntime:
    """The group leader bound to a transport endpoint.

    Runs two background tasks: the receive loop (envelope in, envelopes
    out) and an optional timer loop that calls
    :meth:`~repro.enclaves.itgm.leader.GroupLeader.tick` for periodic
    rekeying.
    """

    def __init__(
        self,
        leader: GroupLeader,
        endpoint: Endpoint,
        tick_interval: float | None = None,
        heartbeat_interval: float | None = None,
    ) -> None:
        self.leader = leader
        self.endpoint = endpoint
        self.events: asyncio.Queue[Event] = asyncio.Queue()
        self._tick_interval = tick_interval
        self._heartbeat_interval = heartbeat_interval
        self._tasks: list[asyncio.Task] = []

    def start(self) -> None:
        """Start the receive (and optional tick/heartbeat) loops."""
        if self._tasks:
            return
        loop = asyncio.get_running_loop()
        self._tasks.append(loop.create_task(self._recv_loop()))
        if self._tick_interval is not None:
            self._tasks.append(loop.create_task(self._tick_loop()))
        if self._heartbeat_interval is not None:
            self._tasks.append(loop.create_task(self._heartbeat_loop()))

    async def stop(self) -> None:
        """Cancel loops and close the endpoint."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        await self.endpoint.close()

    async def _recv_loop(self) -> None:
        try:
            while True:
                envelope = await self.endpoint.recv()
                outgoing, events = self.leader.handle(envelope)
                for out in outgoing:
                    await self.endpoint.send(out)
                for event in events:
                    self.events.put_nowait(event)
        except (ConnectionClosed, asyncio.CancelledError):
            pass

    async def _tick_loop(self) -> None:
        assert self._tick_interval is not None
        try:
            while True:
                await asyncio.sleep(self._tick_interval)
                for out in self.leader.tick():
                    await self.endpoint.send(out)
        except (ConnectionClosed, asyncio.CancelledError):
            pass

    async def _heartbeat_loop(self) -> None:
        assert self._heartbeat_interval is not None
        try:
            while True:
                await asyncio.sleep(self._heartbeat_interval)
                for out in self.leader.heartbeat():
                    await self.endpoint.send(out)
        except (ConnectionClosed, asyncio.CancelledError):
            pass

    async def rekey_now(self) -> None:
        """Rotate the group key immediately."""
        for out in self.leader.rekey_now():
            await self.endpoint.send(out)

    async def broadcast_admin(self, payload) -> None:
        """Queue an admin payload to every member and pump the channels."""
        for out in self.leader.broadcast_admin(payload):
            await self.endpoint.send(out)
