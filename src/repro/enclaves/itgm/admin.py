"""Group-management payloads: the ``X`` field of AdminMsg.

The paper (§3.2): "The field X is the actual group-management message.
For example, X may specify a new group key and initialization vector, or
indicate that a member has joined or left the session."

Each payload type has an injective binary encoding; :func:`decode_payload`
is the total inverse.  Payload bytes travel *inside* the AdminMsg sealed
box, so they inherit its authenticity, ordering, and freshness — none of
the payload types needs its own nonce or signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KEY_LEN, GroupKey
from repro.exceptions import CodecError
from repro.wire.codec import (
    decode_fields,
    decode_str,
    decode_str_list,
    encode_fields,
    encode_str,
    encode_str_list,
)

_TAG_NEW_KEY = 0x01
_TAG_JOINED = 0x02
_TAG_LEFT = 0x03
_TAG_MEMBERSHIP = 0x04
_TAG_TEXT = 0x05
_TAG_CERTIFIED = 0x06


@dataclass(frozen=True)
class AdminPayload:
    """Base class for group-management payloads."""

    def encode(self) -> bytes:
        raise NotImplementedError


@dataclass(frozen=True)
class NewGroupKeyPayload(AdminPayload):
    """Distribute a new group key K_g' (replaces §2.2's ``new_key``).

    ``eviction`` marks rotations that cryptographically evict someone
    (a leave or expulsion): receivers must then drop their previous-
    epoch cipher immediately, closing the rekey grace window — an
    ex-member's old key must not be honored for even one more frame.
    Benign rotations (join, periodic, manual) keep the grace window so
    in-flight traffic survives the rotation.
    """

    key: GroupKey
    epoch: int
    eviction: bool = False

    def encode(self) -> bytes:
        return encode_fields(
            [bytes([_TAG_NEW_KEY]), self.key.material,
             self.epoch.to_bytes(8, "big"),
             bytes([1 if self.eviction else 0])]
        )


@dataclass(frozen=True)
class MemberJoinedPayload(AdminPayload):
    """Announce that a user joined (authenticated replacement for the
    legacy plaintext notification)."""

    user_id: str

    def encode(self) -> bytes:
        return encode_fields([bytes([_TAG_JOINED]), encode_str(self.user_id)])


@dataclass(frozen=True)
class MemberLeftPayload(AdminPayload):
    """Announce that a user left (replaces the forgeable ``mem_removed``)."""

    user_id: str

    def encode(self) -> bytes:
        return encode_fields([bytes([_TAG_LEFT]), encode_str(self.user_id)])


@dataclass(frozen=True)
class MembershipPayload(AdminPayload):
    """Full membership view sent to a newly joined member."""

    members: tuple[str, ...]

    def encode(self) -> bytes:
        return encode_fields(
            [bytes([_TAG_MEMBERSHIP]), encode_str_list(list(self.members))]
        )


@dataclass(frozen=True)
class CertifiedPayload(AdminPayload):
    """An inner payload plus a quorum certificate over its statement.

    The Byzantine-quorum extension (:mod:`repro.quorum`): the inner
    payload is an ordinary group-management message; ``certificate``
    is the encoded :class:`~repro.quorum.attestation.QuorumCertificate`
    binding it to ``f + 1`` replica attestations.  The bytes are opaque
    at this layer — the admin codec stays independent of the quorum
    package; only quorum-aware members parse and verify them.  Nesting
    is rejected at decode time: a certificate certifies a concrete
    mutation, never another certificate.
    """

    inner: AdminPayload
    certificate: bytes

    def encode(self) -> bytes:
        return encode_fields(
            [bytes([_TAG_CERTIFIED]), self.inner.encode(), self.certificate]
        )


@dataclass(frozen=True)
class TextPayload(AdminPayload):
    """Free-form admin text (used by tests and ablation benchmarks)."""

    text: str

    def encode(self) -> bytes:
        return encode_fields([bytes([_TAG_TEXT]), encode_str(self.text)])


def decode_payload(data: bytes) -> AdminPayload:
    """Decode any admin payload, raising :class:`CodecError` if malformed."""
    fields = decode_fields(data)
    if not fields or len(fields[0]) != 1:
        raise CodecError("admin payload missing tag")
    tag = fields[0][0]
    if tag == _TAG_NEW_KEY:
        if (
            len(fields) != 4 or len(fields[1]) != KEY_LEN
            or len(fields[2]) != 8 or len(fields[3]) != 1
            or fields[3][0] not in (0, 1)
        ):
            raise CodecError("malformed NewGroupKeyPayload")
        return NewGroupKeyPayload(
            key=GroupKey(fields[1]),
            epoch=int.from_bytes(fields[2], "big"),
            eviction=bool(fields[3][0]),
        )
    if tag == _TAG_JOINED:
        if len(fields) != 2:
            raise CodecError("malformed MemberJoinedPayload")
        return MemberJoinedPayload(user_id=decode_str(fields[1]))
    if tag == _TAG_LEFT:
        if len(fields) != 2:
            raise CodecError("malformed MemberLeftPayload")
        return MemberLeftPayload(user_id=decode_str(fields[1]))
    if tag == _TAG_MEMBERSHIP:
        if len(fields) != 2:
            raise CodecError("malformed MembershipPayload")
        return MembershipPayload(members=tuple(decode_str_list(fields[1])))
    if tag == _TAG_TEXT:
        if len(fields) != 2:
            raise CodecError("malformed TextPayload")
        return TextPayload(text=decode_str(fields[1]))
    if tag == _TAG_CERTIFIED:
        if len(fields) != 3:
            raise CodecError("malformed CertifiedPayload")
        inner = decode_payload(fields[1])
        if isinstance(inner, CertifiedPayload):
            raise CodecError("nested CertifiedPayload")
        return CertifiedPayload(inner=inner, certificate=fields[2])
    raise CodecError(f"unknown admin payload tag {tag:#x}")
