"""repro — Intrusion-Tolerant Group Management in Enclaves (DSN 2001).

A complete reproduction of Dutertre, Saïdi & Stavridou's paper:

* :mod:`repro.enclaves.itgm` — the improved, intrusion-tolerant group
  management protocol (the paper's contribution), as sans-IO cores plus
  asyncio runtimes.
* :mod:`repro.enclaves.legacy` — the original flawed protocols of §2.2,
  the baseline the attacks break.
* :mod:`repro.formal` — the executable formal model: Dolev-Yao
  operators, ideals/coideals, the Figures 2-3 transition systems, the
  Figure 4 verification diagram, and bounded-exhaustive checking of
  every §5 theorem.
* :mod:`repro.attacks` — the §2.3 attacks, runnable against both stacks.
* :mod:`repro.crypto` — the from-scratch software crypto substrate.
* :mod:`repro.net` — adversarial in-memory network + TCP transport.
* :mod:`repro.sim` — discrete-event churn/traffic simulation.

Quickstart::

    from repro.enclaves.common import UserDirectory
    from repro.enclaves.harness import SyncNetwork, wire
    from repro.enclaves.itgm import GroupLeader, MemberProtocol

    net = SyncNetwork()
    directory = UserDirectory()
    alice = directory.register_password("alice", "correct horse")
    leader = GroupLeader("leader", directory)
    wire(net, "leader", leader)
    member = MemberProtocol(alice, "leader")
    wire(net, "alice", member)
    net.post(member.start_join())
    net.run()
    assert leader.members == ["alice"]

See ``examples/`` for asyncio, TCP, attack, and verification demos.
"""

__version__ = "1.0.0"

from repro.enclaves.common import (
    Credentials,
    RekeyPolicy,
    UserDirectory,
)
from repro.enclaves.harness import SyncNetwork, wire
from repro.exceptions import ReproError

__all__ = [
    "__version__",
    "Credentials",
    "UserDirectory",
    "RekeyPolicy",
    "SyncNetwork",
    "wire",
    "ReproError",
]
