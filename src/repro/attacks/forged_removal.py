"""§2.3: a member forges ``mem_removed`` to corrupt another's view.

    "Such a message can be easily forged by any group member since it is
     encrypted with the common group key.  A malevolent A can then
     convince a member B that A has left the group."

The attacker (mallory) is a *legitimate, joined member* — a compromised
participant in the paper's terms — so it holds the real group key.  In
the legacy stack membership notices are sealed only under that shared
key, so mallory's forgery is indistinguishable from the leader's.  In
the improved stack membership changes arrive only through the
nonce-chained AdminMsg channel under the victim's *session* key, which
mallory does not hold.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_itgm, build_legacy
from repro.crypto.aead import AuthenticatedCipher
from repro.enclaves.itgm.admin import MemberLeftPayload
from repro.enclaves.itgm.member import seal_ad
from repro.wire.codec import encode_fields, encode_str
from repro.wire.labels import Label
from repro.wire.message import Envelope


class ForgedRemovalAttack(Attack):
    """Compromised member convinces bob that mallory left the group."""

    name = "forged-removal"
    reference = "§2.3 (membership notice forgery)"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 2) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_legacy(["mallory", "bob"], seed=self.seed)
        mallory = scenario.members["mallory"]
        bob = scenario.members["bob"]
        assert "mallory" in bob.membership

        # Mallory extracts the group key from her own (compromised)
        # endpoint and forges the leader's removal notice.
        group_key = mallory.current_group_key
        assert group_key is not None
        cipher = AuthenticatedCipher(group_key)
        body = cipher.seal(
            encode_fields([encode_str("mallory")]),
            seal_ad(Label.MEM_REMOVED, "leader", "bob"),
        ).to_bytes()
        scenario.net.inject(
            Envelope(Label.MEM_REMOVED, "leader", "bob", body)
        )
        scenario.net.run()

        fooled = "mallory" not in bob.membership
        still_member = "mallory" in scenario.leader.members
        return AttackResult(
            self.name, "legacy", fooled and still_member,
            "bob now believes mallory left while mallory is still a member"
            if fooled else "bob's view was not corrupted",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_itgm(["mallory", "bob"], seed=self.seed)
        mallory = scenario.members["mallory"]
        bob = scenario.members["bob"]
        assert "mallory" in bob.membership

        # Mallory holds the group key but NOT bob's session key; the best
        # she can do is seal a fake MemberLeft admin payload under the
        # group key and hope bob's admin channel accepts it.
        group_key = mallory._group_key
        assert group_key is not None
        cipher = AuthenticatedCipher(group_key)
        fake = MemberLeftPayload("mallory").encode()
        body = cipher.seal(
            encode_fields(
                [encode_str("leader"), encode_str("bob"),
                 bytes(16), bytes(16), fake]
            ),
            seal_ad(Label.ADMIN_MSG, "leader", "bob"),
        ).to_bytes()
        rejected_before = bob.stats.rejected
        scenario.net.inject(Envelope(Label.ADMIN_MSG, "leader", "bob", body))
        scenario.net.run()

        fooled = "mallory" not in bob.membership
        return AttackResult(
            self.name, "itgm", fooled,
            "bob's view was corrupted" if fooled
            else "bob rejected the forgery "
                 f"({bob.stats.rejected - rejected_before} rejection(s)); "
                 "membership notices require the member's session key",
        )
