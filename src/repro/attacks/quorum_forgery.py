"""Byzantine insider: a compromised leader fabricates a rekey alone.

The paper's §3.2 protocol authenticates the *channel* — members verify
that an admin message really came from the leader's session — but the
leader itself is totally trusted (§6: "the group leader must be
trusted"; §7 names this the architecture's main limit).  A compromised
leader can therefore hand the group a key *it chose* (and shares with
an outside accomplice) and every member will install it.

The quorum layer (:mod:`repro.quorum`) closes this: a mutation is only
applied when it carries ``f + 1`` attestations from distinct replicas
over the matching statement.  The compromised primary acting alone has
two moves, both refused:

* send the mutation **bare** — rule 1, uncertified mutations are never
  applied;
* **self-sign** a certificate — one distinct signer is below the
  ``f + 1`` threshold, and no honest witness will attest a statement
  its own journal replay does not produce.

Column note: the "legacy" column of the matrix runs this against the
*single-trusted-leader* deployment — here the improved §3.2 stack
itself, to make the point that channel authentication alone cannot
help when the trusted endpoint is the attacker.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_itgm
from repro.crypto.keys import KEY_LEN, GroupKey
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.itgm.admin import CertifiedPayload, NewGroupKeyPayload
from repro.quorum.attestation import (
    Attestation,
    MutationStatement,
    QuorumCertificate,
    member_set_digest,
)
from repro.quorum.byzantine import build_quorum_scenario


class QuorumForgeryAttack(Attack):
    """Compromised leader distributes a key it fabricated alone."""

    name = "quorum-forgery"
    reference = "§6/§7 (total trust in the group leader)"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 2) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_itgm(["alice", "bob"], seed=self.seed)
        leader = scenario.leader
        alice = scenario.members["alice"]
        rng = DeterministicRandom(self.seed)
        chosen = GroupKey(rng.fork("chosen").key_material(KEY_LEN))
        epoch = leader.group_epoch + 1

        # The leader *is* the attacker: it queues the chosen key through
        # its own perfectly authentic admin channel.
        for uid in scenario.members:
            scenario.net.post_all(leader.send_admin_to(
                uid, NewGroupKeyPayload(key=chosen, epoch=epoch)
            ))
        scenario.net.run()

        installed = all(
            member.group_key_fingerprint == chosen.fingerprint()
            for member in scenario.members.values()
        )
        return AttackResult(
            self.name, "legacy", installed,
            "every member installed the leader's fabricated key "
            f"(epoch {alice.group_epoch}); the attacker reads all traffic"
            if installed else "members did not install the key",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_quorum_scenario(["alice", "bob"], seed=self.seed)
        qs = scenario.qs
        bob = scenario.members["bob"]
        rng = DeterministicRandom(self.seed)
        chosen = GroupKey(rng.fork("chosen").key_material(KEY_LEN))
        epoch = qs.leader.group_epoch + 1
        epoch_before = bob.group_epoch
        rejected_before = bob.stats.rejected

        # Move 1: skip certification entirely (the primary controls its
        # own pump) and send the mutation bare.
        qs.leader.bind_certifier(None)
        scenario.net.post_all(qs.leader.send_admin_to(
            "bob", NewGroupKeyPayload(key=chosen, epoch=epoch)
        ))
        scenario.net.run()

        # Move 2: self-sign a "certificate" over the matching statement.
        statement = MutationStatement(
            session_id=qs.session_id,
            seq=qs.journal.seq + 1,
            epoch=epoch,
            member_digest=member_set_digest(qs.leader.members),
            key_fingerprint=chosen.fingerprint(),
        )
        self_signed = QuorumCertificate((
            Attestation.sign(
                qs.primary_id, statement, qs.keys[qs.primary_id]
            ),
        ))
        scenario.net.post_all(qs.leader.send_admin_to(
            "bob", CertifiedPayload(
                inner=NewGroupKeyPayload(key=chosen, epoch=epoch),
                certificate=self_signed.encode(),
            )
        ))
        scenario.net.run()
        qs.leader.bind_certifier(qs._certify)

        installed = bob.group_key_fingerprint == chosen.fingerprint()
        rejections = bob.stats.rejected - rejected_before
        return AttackResult(
            self.name, "itgm", installed,
            "bob installed the fabricated key" if installed
            else f"bob refused both attempts ({rejections} rejection(s): "
                 "uncertified, then below the f+1 threshold); epoch still "
                 f"{bob.group_epoch} (was {epoch_before})",
        )
