"""Attack framework: scenarios, results, and the attacker's powers.

The attacker here is the paper's threat model made concrete: it sees
every frame on the wire (the :class:`~repro.enclaves.harness.SyncNetwork`
wire log), can inject arbitrary envelopes with any claimed sender, can
replay recorded frames, and — when the attack casts it as a compromised
*member* — holds real credentials and a real protocol instance whose
internal keys it may extract (a compromised participant "may be one who
intentionally misbehaves", §3.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import RekeyPolicy, UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.member import MemberProtocol
from repro.enclaves.legacy.leader import LegacyGroupLeader
from repro.enclaves.legacy.member import LegacyMemberProtocol


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one attack run against one protocol stack."""

    attack: str
    protocol: str  # "legacy" | "itgm"
    succeeded: bool
    detail: str

    def __str__(self) -> str:
        verdict = "SUCCEEDED" if self.succeeded else "blocked"
        return f"{self.attack} vs {self.protocol}: {verdict} — {self.detail}"


@dataclass
class LegacyScenario:
    """A running legacy group with a deterministic seed."""

    net: SyncNetwork
    leader: LegacyGroupLeader
    members: dict[str, LegacyMemberProtocol]
    directory: UserDirectory


@dataclass
class ItgmScenario:
    """A running improved-protocol group with a deterministic seed."""

    net: SyncNetwork
    leader: GroupLeader
    members: dict[str, MemberProtocol]
    directory: UserDirectory


def build_legacy(
    member_ids: list[str],
    seed: int = 0,
    rekey_policy: RekeyPolicy = RekeyPolicy.MANUAL,
) -> LegacyScenario:
    """Start a legacy group with every listed member joined."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    directory = UserDirectory()
    leader = LegacyGroupLeader(
        "leader", directory, rekey_policy=rekey_policy,
        rng=rng.fork("leader"),
    )
    wire(net, "leader", leader)
    members: dict[str, LegacyMemberProtocol] = {}
    for user_id in member_ids:
        creds = directory.register_password(user_id, f"pw-{user_id}")
        member = LegacyMemberProtocol(creds, "leader", rng.fork(user_id))
        members[user_id] = member
        wire(net, user_id, member)
    for user_id in member_ids:
        net.post(members[user_id].start_join())
        net.run()
    return LegacyScenario(net, leader, members, directory)


def build_itgm(
    member_ids: list[str],
    seed: int = 0,
    rekey_policy: RekeyPolicy = RekeyPolicy.ON_JOIN | RekeyPolicy.ON_LEAVE,
) -> ItgmScenario:
    """Start an improved-protocol group with every listed member joined."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    directory = UserDirectory()
    leader = GroupLeader(
        "leader", directory,
        config=LeaderConfig(rekey_policy=rekey_policy),
        rng=rng.fork("leader"),
    )
    wire(net, "leader", leader)
    members: dict[str, MemberProtocol] = {}
    for user_id in member_ids:
        creds = directory.register_password(user_id, f"pw-{user_id}")
        member = MemberProtocol(creds, "leader", rng.fork(user_id))
        members[user_id] = member
        wire(net, user_id, member)
    for user_id in member_ids:
        net.post(members[user_id].start_join())
        net.run()
    return ItgmScenario(net, leader, members, directory)


@dataclass
class DataScenario:
    """A running §3.2 group whose members carry the data plane."""

    net: SyncNetwork
    leader: GroupLeader
    members: dict  # user id -> DataMember
    directory: UserDirectory


def build_data(
    member_ids: list[str],
    seed: int = 0,
    ratcheted: bool = True,
    reliable: bool = True,
    rekey_policy: RekeyPolicy = RekeyPolicy.ON_JOIN | RekeyPolicy.ON_LEAVE,
) -> DataScenario:
    """Start an improved-protocol group with the data plane attached.

    ``ratcheted=False`` swaps every member's channel for the
    group-key-only :class:`~repro.dataplane.channel.GroupKeyChannel`
    baseline — the "legacy" column of the data-plane attack rows.  The
    *management* plane is the §3.2 stack in both configurations; what
    the baseline lacks is per-sender ratcheting and replay accounting
    on the data traffic itself.  ``reliable=False`` drops the ACK/NACK
    layer — attacks probing the channel itself use it so the contrast
    isn't muddied by the reliability layer's own deduplication.
    """
    from repro.dataplane.member import DataMember

    scenario = build_itgm(member_ids, seed=seed, rekey_policy=rekey_policy)
    members: dict = {}
    for user_id, member in scenario.members.items():
        dm = DataMember(member, ratcheted=ratcheted, reliable=reliable)
        members[user_id] = dm
        wire(scenario.net, user_id, dm)
    return DataScenario(scenario.net, scenario.leader, members,
                        scenario.directory)


class Attack(ABC):
    """One named attack, runnable against both protocol stacks."""

    #: Short identifier used in the matrix table.
    name: str = "attack"
    #: Paper reference for the weakness this attack exercises.
    reference: str = ""
    #: What the paper predicts against the legacy stack.
    expected_on_legacy: bool = True
    #: What the paper guarantees for the improved stack (always False).
    expected_on_itgm: bool = False

    @abstractmethod
    def run_legacy(self) -> AttackResult:
        """Run against the legacy §2.2 stack."""

    @abstractmethod
    def run_itgm(self) -> AttackResult:
        """Run against the improved §3.2 stack."""

    def run_both(self) -> tuple[AttackResult, AttackResult]:
        return self.run_legacy(), self.run_itgm()
