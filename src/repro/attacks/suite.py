"""The attack matrix: every attack against both protocol stacks.

``run_attack_matrix`` regenerates the paper's central security claim as
a table (experiment SEC-2.3 in DESIGN.md): each §2.3 attack succeeds
against the legacy protocol and is blocked by the improved one, and the
additional attacks are blocked everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.admin_replay import AdminReplayAttack
from repro.attacks.base import Attack, AttackResult
from repro.attacks.data_replay import DataReplayAttack
from repro.attacks.forged_close import ForgedCloseAttack
from repro.attacks.forged_denial import ForgedDenialAttack
from repro.attacks.forged_removal import ForgedRemovalAttack
from repro.attacks.impersonation import ImpersonationAttack
from repro.attacks.past_member_data import PastMemberDataAttack
from repro.attacks.quorum_equivocation import QuorumEquivocationAttack
from repro.attacks.quorum_forgery import QuorumForgeryAttack
from repro.attacks.rekey_replay import RekeyReplayAttack
from repro.attacks.stale_key import StaleSessionKeyAttack

#: All attacks, in paper order.  The two ``quorum-*`` rows model a
#: *Byzantine leader* (§6/§7's trusted party turning hostile): their
#: "legacy" column is the single-trusted-leader deployment and their
#: "improved" column is the quorum-hardened stack of :mod:`repro.quorum`.
#: The two data-plane rows follow the same convention: their "legacy"
#: column is the group-key-only data channel (what sealing app traffic
#: directly under K_g gives you) and their "improved" column is the
#: ratcheted channel of :mod:`repro.dataplane`.
ALL_ATTACKS: list[type[Attack]] = [
    ForgedDenialAttack,
    ForgedRemovalAttack,
    RekeyReplayAttack,
    AdminReplayAttack,
    ImpersonationAttack,
    ForgedCloseAttack,
    StaleSessionKeyAttack,
    QuorumForgeryAttack,
    QuorumEquivocationAttack,
    PastMemberDataAttack,
    DataReplayAttack,
]


@dataclass(frozen=True)
class MatrixRow:
    """One attack's outcome on both stacks, with expectations."""

    attack: str
    reference: str
    legacy: AttackResult
    itgm: AttackResult
    expected_legacy: bool
    expected_itgm: bool

    @property
    def as_expected(self) -> bool:
        return (
            self.legacy.succeeded == self.expected_legacy
            and self.itgm.succeeded == self.expected_itgm
        )


def run_attack_matrix(seed: int = 0) -> list[MatrixRow]:
    """Run every attack against both stacks; returns one row each."""
    rows = []
    for attack_cls in ALL_ATTACKS:
        attack = attack_cls(seed=seed + 11)
        legacy_result, itgm_result = attack.run_both()
        rows.append(
            MatrixRow(
                attack=attack.name,
                reference=attack.reference,
                legacy=legacy_result,
                itgm=itgm_result,
                expected_legacy=attack.expected_on_legacy,
                expected_itgm=attack.expected_on_itgm,
            )
        )
    return rows


def format_matrix(rows: list[MatrixRow]) -> str:
    """Render the matrix as the table the paper's §2.3 implies."""
    header = (
        f"{'attack':<20} {'legacy §2.2':<14} {'improved §3.2':<14} "
        f"{'as predicted':<12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        legacy = "SUCCEEDS" if row.legacy.succeeded else "blocked"
        itgm = "SUCCEEDS" if row.itgm.succeeded else "blocked"
        lines.append(
            f"{row.attack:<20} {legacy:<14} {itgm:<14} "
            f"{'yes' if row.as_expected else 'NO':<12}"
        )
    return "\n".join(lines)
