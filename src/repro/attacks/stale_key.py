"""Old-session-key attacks (oops-tolerance).

§3.1: "Each time A enters the group, L generates a new session key for
A, and the requirements must be satisfied even if old session keys are
compromised and known to nontrustworthy agents."  The formal model
publishes closed session keys via Oops events; this attack does the
concrete analogue: alice's first session key leaks in full to the
attacker after she leaves, and the attacker tries to use it against her
*second* session — injecting admin messages and forging her leave.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_itgm, build_legacy
from repro.crypto.aead import AuthenticatedCipher
from repro.enclaves.itgm.admin import MemberLeftPayload
from repro.enclaves.itgm.member import seal_ad
from repro.wire.codec import encode_fields, encode_str
from repro.wire.labels import Label
from repro.wire.message import Envelope


class StaleSessionKeyAttack(Attack):
    """Use a leaked old session key against the victim's new session."""

    name = "stale-session-key"
    reference = "§3.1 (tolerance of compromised old session keys)"
    expected_on_legacy = False
    expected_on_itgm = False

    def __init__(self, seed: int = 7) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_legacy(["alice", "bob"], seed=self.seed)
        net, leader = scenario.net, scenario.leader
        alice = scenario.members["alice"]

        # Session 1: capture the session key (full endpoint compromise),
        # then alice leaves and rejoins with a fresh key.
        old_key = alice._session_key
        assert old_key is not None
        net.post(alice.start_leave())
        net.run()
        net.post(alice.start_join())
        net.run()
        assert "alice" in leader.members

        # Inject a NEW_KEY under the old session key.
        from repro.crypto.keys import GroupKey
        cipher = AuthenticatedCipher(old_key)
        evil_group_key = GroupKey(b"\x13" * 32)
        body = cipher.seal(
            encode_fields([evil_group_key.material]),
            seal_ad(Label.NEW_KEY, "leader", "alice"),
        ).to_bytes()
        net.inject(Envelope(Label.NEW_KEY, "leader", "alice", body))
        net.run()

        hijacked = alice.group_key_fingerprint == evil_group_key.fingerprint()
        return AttackResult(
            self.name, "legacy", hijacked,
            "alice installed a key from a stale-session forgery" if hijacked
            else "stale-key forgery rejected: the new session uses a fresh "
                 "session key",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_itgm(["alice", "bob"], seed=self.seed)
        net, leader = scenario.net, scenario.leader
        alice = scenario.members["alice"]

        old_key = alice._session_key
        assert old_key is not None
        net.post(alice.start_leave())
        net.run()
        net.post(alice.start_join())
        net.run()
        assert "alice" in leader.members

        # Forge an AdminMsg and a ReqClose under the leaked old key.
        cipher = AuthenticatedCipher(old_key)
        admin_body = cipher.seal(
            encode_fields(
                [encode_str("leader"), encode_str("alice"),
                 bytes(16), bytes(16), MemberLeftPayload("bob").encode()]
            ),
            seal_ad(Label.ADMIN_MSG, "leader", "alice"),
        ).to_bytes()
        close_body = cipher.seal(
            encode_fields([encode_str("alice"), encode_str("leader")]),
            seal_ad(Label.REQ_CLOSE, "alice", "leader"),
        ).to_bytes()
        membership_before = set(alice.membership)
        net.inject(Envelope(Label.ADMIN_MSG, "leader", "alice", admin_body))
        net.inject(Envelope(Label.REQ_CLOSE, "alice", "leader", close_body))
        net.run()

        corrupted = alice.membership != membership_before
        expelled = "alice" not in leader.members
        succeeded = corrupted or expelled
        return AttackResult(
            self.name, "itgm", succeeded,
            "a stale-key forgery was accepted" if succeeded
            else "both forgeries rejected: the new session's key is fresh, "
                 "exactly as the Oops events in the formal model demand",
        )
