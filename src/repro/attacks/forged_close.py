"""Forged disconnect: expel a member by faking their leave request.

The legacy leave request is plaintext (``A, req_close``), so anyone who
knows a member's name can disconnect them — the same family of flaw as
the forged denial, on the session-teardown side.  The improved ReqClose
is ``{A, L}_{K_a}``: only the member (or the leader) can produce it.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_itgm, build_legacy
from repro.wire.labels import Label
from repro.wire.message import Envelope


class ForgedCloseAttack(Attack):
    """Outsider forges alice's leave request."""

    name = "forged-close"
    reference = "§2.2 (plaintext req_close; companion of the §2.3 DoS)"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 6) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_legacy(["alice", "bob"], seed=self.seed)
        net, leader = scenario.net, scenario.leader
        assert "alice" in leader.members

        net.inject(Envelope(Label.REQ_CLOSE_LEGACY, "alice", "leader", b""))
        net.run()

        expelled = "alice" not in leader.members
        return AttackResult(
            self.name, "legacy", expelled,
            "the leader disconnected alice on a forged plaintext req_close"
            if expelled else "alice is still a member",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_itgm(["alice", "bob"], seed=self.seed)
        net, leader = scenario.net, scenario.leader
        assert "alice" in leader.members

        # Plaintext attempt and a garbage sealed-box attempt.
        net.inject(Envelope(Label.REQ_CLOSE, "alice", "leader", b""))
        net.inject(Envelope(Label.REQ_CLOSE, "alice", "leader", b"\x00" * 64))
        net.run()

        expelled = "alice" not in leader.members
        return AttackResult(
            self.name, "itgm", expelled,
            "the leader disconnected alice on a forged close" if expelled
            else "forged closes rejected: ReqClose must be sealed under "
                 "alice's session key",
        )
