"""Impersonation: join as A without knowing P_a.

The §3.1 requirement: "If a user is accepted as group member A by the
leader then this user is actually A."  The attacker replays A's recorded
authentication frames from an earlier session and pads with garbage; it
never holds P_a, so it can neither read the leader's key-distribution
reply nor produce the session-key acknowledgment.  Both stacks block
this (authentication was not among the legacy flaws); the attack is in
the matrix to *witness* that claim rather than assume it.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_itgm, build_legacy
from repro.wire.labels import Label
from repro.wire.message import Envelope


class ImpersonationAttack(Attack):
    """Outsider replays old auth frames to be accepted as alice."""

    name = "impersonation"
    reference = "§3.1 (proper user authentication)"
    expected_on_legacy = False
    expected_on_itgm = False

    def __init__(self, seed: int = 5) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_legacy(["alice", "bob"], seed=self.seed)
        net, leader = scenario.net, scenario.leader
        alice = scenario.members["alice"]

        # Alice leaves; the attacker replays her whole recorded join.
        net.post(alice.start_leave())
        net.run()
        assert "alice" not in leader.members
        recorded = [
            e for e in net.wire_log
            if e.sender == "alice"
            and e.label in (Label.REQ_OPEN, Label.LEGACY_AUTH_1,
                            Label.LEGACY_AUTH_3)
        ]
        for envelope in recorded:
            net.inject(envelope)
            net.run()
        # Garbage key-ack attempts as well.
        net.inject(Envelope(Label.LEGACY_AUTH_3, "alice", "leader", b"\x00" * 64))
        net.run()

        accepted = "alice" in leader.members
        return AttackResult(
            self.name, "legacy", accepted,
            "the leader accepted a fake alice" if accepted
            else "replayed auth frames rejected: the attacker cannot read "
                 "the fresh AuthKeyDist without P_a",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_itgm(["alice", "bob"], seed=self.seed)
        net, leader = scenario.net, scenario.leader
        alice = scenario.members["alice"]

        net.post(alice.start_leave())
        net.run()
        assert "alice" not in leader.members
        recorded = [
            e for e in net.wire_log
            if e.sender == "alice"
            and e.label in (Label.AUTH_INIT_REQ, Label.AUTH_ACK_KEY)
        ]
        for envelope in recorded:
            net.inject(envelope)
            net.run()
        net.inject(Envelope(Label.AUTH_ACK_KEY, "alice", "leader", b"\x00" * 64))
        net.run()

        accepted = "alice" in leader.members
        return AttackResult(
            self.name, "itgm", accepted,
            "the leader accepted a fake alice" if accepted
            else "replays rejected: fresh N2/K_a per session; the replayed "
                 "AuthAckKey is sealed under a dead session key",
        )
