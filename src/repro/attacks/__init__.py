"""Attack library: the §2.3 weaknesses as runnable code.

Each attack implements the same scenario twice — once against the
legacy stack of §2.2 (where the paper predicts success) and once against
the improved intrusion-tolerant stack of §3.2 (where it must be
blocked).  :func:`~repro.attacks.suite.run_attack_matrix` produces the
table that `benchmarks/test_bench_attack_matrix.py` regenerates.

Attacks included (paper section in brackets):

* :class:`~repro.attacks.forged_denial.ForgedDenialAttack` [§2.3 ¶2] —
  outsider forges ``connection_denied`` to lock a legitimate user out.
* :class:`~repro.attacks.forged_removal.ForgedRemovalAttack` [§2.3 ¶3] —
  a *member* forges ``mem_removed`` to corrupt another member's view.
* :class:`~repro.attacks.rekey_replay.RekeyReplayAttack` [§2.3 ¶4] —
  a *past member* replays an old ``new_key`` message to force reuse of a
  group key it still holds, then reads group traffic.
* :class:`~repro.attacks.admin_replay.AdminReplayAttack` — duplicate
  delivery of a group-management message (no-duplication requirement).
* :class:`~repro.attacks.impersonation.ImpersonationAttack` — join as A
  without knowing P_a (proper-authentication requirement).
* :class:`~repro.attacks.forged_close.ForgedCloseAttack` — forge A's
  leave request to expel A (the legacy plaintext ``req_close``).
* :class:`~repro.attacks.stale_key.StaleSessionKeyAttack` — use a leaked
  old session key against the current session (oops-tolerance).
* :class:`~repro.attacks.quorum_forgery.QuorumForgeryAttack` [§6/§7] — a
  *compromised leader* fabricates a rekey alone; blocked only by the
  quorum certificate layer (:mod:`repro.quorum`).
* :class:`~repro.attacks.quorum_equivocation.QuorumEquivocationAttack`
  [§5.4] — a compromised leader shows each half of the group a
  different "certified" key; certificate gossip detects and convicts.
* :class:`~repro.attacks.past_member_data.PastMemberDataAttack`
  [§2.3, data plane] — a leaver's captured channel state against
  post-leave traffic; blocked only by the ratcheted, epoch-bound data
  channel (:mod:`repro.dataplane`).
* :class:`~repro.attacks.data_replay.DataReplayAttack` [§2.3, data
  plane] — duplicate delivery of an application data frame.
"""

from repro.attacks.base import Attack, AttackResult
from repro.attacks.admin_replay import AdminReplayAttack
from repro.attacks.data_replay import DataReplayAttack
from repro.attacks.forged_close import ForgedCloseAttack
from repro.attacks.forged_denial import ForgedDenialAttack
from repro.attacks.forged_removal import ForgedRemovalAttack
from repro.attacks.impersonation import ImpersonationAttack
from repro.attacks.past_member_data import PastMemberDataAttack
from repro.attacks.quorum_equivocation import QuorumEquivocationAttack
from repro.attacks.quorum_forgery import QuorumForgeryAttack
from repro.attacks.rekey_replay import RekeyReplayAttack
from repro.attacks.stale_key import StaleSessionKeyAttack
from repro.attacks.suite import ALL_ATTACKS, MatrixRow, run_attack_matrix

__all__ = [
    "Attack",
    "AttackResult",
    "ForgedDenialAttack",
    "ForgedRemovalAttack",
    "RekeyReplayAttack",
    "AdminReplayAttack",
    "ImpersonationAttack",
    "ForgedCloseAttack",
    "StaleSessionKeyAttack",
    "QuorumForgeryAttack",
    "QuorumEquivocationAttack",
    "PastMemberDataAttack",
    "DataReplayAttack",
    "ALL_ATTACKS",
    "MatrixRow",
    "run_attack_matrix",
]
