"""Duplicate delivery of a group-management message.

The §3.1 requirement says "no group-management message accepted by A is
a duplicate".  The attacker simply plays every admin/rekey frame to the
victim twice.  The legacy ``new_key`` has no freshness and is applied
twice (observable: the rekey-accept counter increments twice for one
leader rekey).  The improved AdminMsg chains nonces, so the second copy
is stale and discarded.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_itgm, build_legacy
from repro.wire.labels import Label
from repro.wire.message import Envelope


class AdminReplayAttack(Attack):
    """Duplicate every group-management frame to the victim."""

    name = "admin-replay"
    reference = "§3.1 (no-duplication requirement)"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 4) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_legacy(["alice", "bob"], seed=self.seed)
        net, leader = scenario.net, scenario.leader
        alice = scenario.members["alice"]

        def duplicate(envelope: Envelope):
            if envelope.label is Label.NEW_KEY and envelope.recipient == "alice":
                return [envelope, envelope]
            return None

        net.set_interceptor(duplicate)
        net.post_all(leader.rekey_now())
        net.run()
        net.set_interceptor(None)

        # One leader rekey, but alice applied the key-change twice.
        duplicated = alice.stats.rekeys_accepted == 2
        return AttackResult(
            self.name, "legacy", duplicated,
            f"one rekey, {alice.stats.rekeys_accepted} applications at alice"
            if duplicated else "duplicate was not applied",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_itgm(["alice", "bob"], seed=self.seed)
        net, leader = scenario.net, scenario.leader
        alice = scenario.members["alice"]

        def duplicate(envelope: Envelope):
            if (
                envelope.label is Label.ADMIN_MSG
                and envelope.recipient == "alice"
            ):
                return [envelope, envelope]
            return None

        accepted_before = alice.stats.admin_accepted
        rejected_before = alice.stats.rejected
        net.set_interceptor(duplicate)
        net.post_all(leader.rekey_now())
        net.run()
        net.set_interceptor(None)

        accepted = alice.stats.admin_accepted - accepted_before
        rejected = alice.stats.rejected - rejected_before
        duplicated = accepted != 1
        unique = len(alice.admin_log) == len(set(map(repr, alice.admin_log)))
        return AttackResult(
            self.name, "itgm", duplicated or not unique,
            "a duplicate admin message was accepted" if duplicated
            else f"exactly one copy accepted, {rejected} duplicate(s) "
                 "rejected as stale; admin log has no duplicates",
        )
