"""§2.3: the group-key replay by a past member.

    "An attacker can then force A to reuse an old group key K'_g by
     replaying an old key-distribution message. ... The attack can then
     be performed by a past member of the group who has left the
     application but has kept the old key K'_g.  The rekeying procedure
     is then insecure unless all present and past participants in the
     current application are trustworthy."

Scenario: mallory is a member at epoch 0 and records the leader's
rekeying message to alice (epoch 1) before leaving.  After mallory's
departure the leader rotates to epoch 2, locking mallory out — unless
she can replay the recorded epoch-1 message and drag alice back to a key
mallory still holds, at which point alice's "confidential" traffic is
readable by an ex-member.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_itgm, build_legacy
from repro.crypto.aead import AuthenticatedCipher, SealedBox
from repro.enclaves.common import RekeyPolicy
from repro.enclaves.itgm.member import app_ad
from repro.exceptions import IntegrityError
from repro.wire.codec import decode_fields
from repro.wire.labels import Label


class RekeyReplayAttack(Attack):
    """Past member replays an old rekey message to force key reuse."""

    name = "rekey-replay"
    reference = "§2.3 (new_key replay / old group key reuse)"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 3) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_legacy(
            ["alice", "mallory"], seed=self.seed,
            rekey_policy=RekeyPolicy.ON_LEAVE,
        )
        net, leader = scenario.net, scenario.leader
        alice = scenario.members["alice"]
        mallory = scenario.members["mallory"]

        # Epoch bump while mallory is present: she records the NEW_KEY
        # frame addressed to alice and keeps the key it carries.
        net.post_all(leader.rekey_now())
        net.run()
        recorded = [
            e for e in net.wire_log
            if e.label is Label.NEW_KEY and e.recipient == "alice"
        ][-1]
        old_group_key = mallory.current_group_key
        assert old_group_key is not None

        # Mallory leaves; ON_LEAVE policy rotates the key away from her.
        net.post(mallory.start_leave())
        net.run()
        assert alice.group_key_fingerprint != old_group_key.fingerprint()

        # The replay: alice has no freshness evidence and re-installs
        # the old key.
        net.inject(recorded)
        net.run()
        reverted = alice.group_key_fingerprint == old_group_key.fingerprint()

        # Demonstrate the confidentiality loss: alice "confidentially"
        # messages the group; ex-member mallory decrypts it off the wire.
        leaked = None
        if reverted:
            net.post(alice.seal_app(b"attack at dawn"))
            net.run()
            app_frames = [
                e for e in net.wire_log
                if e.label is Label.APP_DATA and e.sender == "alice"
            ]
            cipher = AuthenticatedCipher(old_group_key)
            for frame in app_frames:
                try:
                    plain = cipher.open(
                        SealedBox.from_bytes(frame.body), app_ad("alice")
                    )
                    leaked = decode_fields(plain, expect=2)[1]
                    break
                except IntegrityError:
                    continue
        succeeded = reverted and leaked == b"attack at dawn"
        return AttackResult(
            self.name, "legacy", succeeded,
            "alice reverted to the old key; ex-member mallory read "
            f"{leaked!r} off the wire" if succeeded
            else "alice did not revert to the old key",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_itgm(
            ["alice", "mallory"], seed=self.seed,
            rekey_policy=RekeyPolicy.ON_LEAVE,
        )
        net, leader = scenario.net, scenario.leader
        alice = scenario.members["alice"]
        mallory = scenario.members["mallory"]

        net.post_all(leader.rekey_now())
        net.run()
        recorded = [
            e for e in net.wire_log
            if e.label is Label.ADMIN_MSG and e.recipient == "alice"
        ][-1]
        old_group_key = mallory._group_key
        assert old_group_key is not None
        old_epoch = alice.group_epoch

        net.post(mallory.start_leave())
        net.run()
        assert alice.group_epoch > old_epoch

        current_epoch = alice.group_epoch
        rejected_before = alice.stats.rejected
        net.inject(recorded)
        net.run()

        reverted = alice.group_epoch < current_epoch
        return AttackResult(
            self.name, "itgm", reverted,
            "alice reverted to the old group key" if reverted
            else "replayed rekey rejected (stale nonce, "
                 f"{alice.stats.rejected - rejected_before} rejection(s)); "
                 f"alice still at epoch {alice.group_epoch}",
        )
