"""Byzantine insider: the leader shows different members different keys.

A compromised leader that cannot fabricate state alone (because members
demand certificates) can still try to *equivocate*: fork its journal
stream, harvest attestations for two conflicting states from disjoint
witness subsets, and show each half of the group its own "certified"
world.  Against a single trusted leader the same split needs no
ceremony at all — two bare rekeys do it, and the group is permanently
forked: members at one epoch hold different keys and can no longer read
each other's traffic, violating the §5.4 common-key agreement.

The quorum layer does not make the fork *impossible* — with ``f + 1``
thresholds a primary plus one duped witness can mint each side — it
makes the fork **detectable and attributable**: any observer that sees
both certificates holds self-verifying evidence convicting a specific
replica.  Certificate gossip between members provides that observer;
the evidence drives an automatic view change (evict the primary,
promote the healthiest honest witness, re-key above both forks) and the
group converges again.  The attack is "blocked" in the sense that
matters: it cannot create a *lasting, undetected* fork.

Column note: as with :mod:`repro.attacks.quorum_forgery`, the "legacy"
column runs the single-trusted-leader deployment of the improved §3.2
stack — the baseline the quorum hardens.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.enclaves.harness import wire
from repro.quorum.byzantine import (
    EquivocatingPrimary,
    build_quorum_scenario,
    build_single_scenario,
)


class QuorumEquivocationAttack(Attack):
    """Compromised leader splits the group across two certified keys."""

    name = "quorum-equivocation"
    reference = "§5.4 (common-key agreement) under a Byzantine leader"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 3) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_single_scenario(
            ["alice", "bob"], seed=self.seed
        )
        strike = EquivocatingPrimary(seed=self.seed).strike_single(scenario)
        alice = scenario.members["alice"]
        bob = scenario.members["bob"]
        forked = (
            alice.group_epoch == bob.group_epoch
            and alice.group_key_fingerprint != bob.group_key_fingerprint
        )
        return AttackResult(
            self.name, "legacy", forked,
            f"group forked at epoch {strike['epoch']}: alice holds "
            f"{alice.group_key_fingerprint}, bob holds "
            f"{bob.group_key_fingerprint}; neither can read the other"
            if forked else "the group did not fork",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_quorum_scenario(["alice", "bob"], seed=self.seed)
        qs = scenario.qs
        strike = EquivocatingPrimary(seed=self.seed).strike_quorum(scenario)

        # Certificate gossip: each member re-verifies what its peers
        # accepted.  The first conflicting pair yields evidence.
        evidence = None
        detector = None
        pool = [
            (uid, cert)
            for uid, member in sorted(scenario.members.items())
            for cert in member.accepted_certificates
        ]
        for uid, member in sorted(scenario.members.items()):
            for origin_uid, cert in pool:
                if origin_uid == uid:
                    continue
                found = member.verifier.observe(cert)
                if found is not None:
                    evidence, detector = found, uid
                    break
            if evidence is not None:
                break

        if evidence is None:
            return AttackResult(
                self.name, "itgm", True,
                f"fork at epoch {strike['epoch']} went undetected",
            )

        # The evidence convicts; the view change retires both forks.
        out = qs.view_change(
            evidence.accused, "equivocation evidence", evidence
        )
        wire(scenario.net, qs.session_id, qs.leader)
        for member in scenario.members.values():
            member.verifier.evict(evidence.accused)
            member.verifier.set_primary(qs.primary_id)
        scenario.net.post_all(out)
        scenario.net.run()

        fingerprints = {
            member.group_key_fingerprint
            for member in scenario.members.values()
        }
        healed = (
            len(fingerprints) == 1
            and fingerprints == {qs.leader.group_key_fingerprint}
            and qs.leader.group_epoch > strike["epoch"]
        )
        return AttackResult(
            self.name, "itgm", not healed,
            f"{detector} detected the fork; evidence convicted "
            f"{evidence.accused}; view change promoted {qs.primary_id} "
            f"and re-keyed at epoch {qs.leader.group_epoch} "
            f"(above both forks at {strike['epoch']})"
            if healed else "the fork survived the view change",
        )
