"""§2.3: the forged ``connection_denied`` denial of service.

    "To prevent a legitimate user A from joining the group, an attacker
     can forge a connection_denied reply and send it to A."

Against the legacy stack the attacker watches for A's plaintext
``req_open`` and races a forged plaintext denial.  Against the improved
stack there is *no* pre-authentication exchange to forge — the member
ignores the alien label and completes the handshake.
"""

from __future__ import annotations

from repro.attacks.base import (
    Attack,
    AttackResult,
    build_itgm,
    build_legacy,
)
from repro.enclaves.legacy.member import LegacyMemberState
from repro.enclaves.itgm.member import MemberState
from repro.wire.labels import Label
from repro.wire.message import Envelope


class ForgedDenialAttack(Attack):
    """Outsider forges a denial to lock a legitimate user out."""

    name = "forged-denial"
    reference = "§2.3 (pre-authentication DoS)"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed

    def run_legacy(self) -> AttackResult:
        scenario = build_legacy(["bob"], seed=self.seed)
        directory = scenario.directory
        creds = directory.register_password("alice", "pw-alice")
        from repro.crypto.rng import DeterministicRandom
        from repro.enclaves.harness import wire
        from repro.enclaves.legacy.member import LegacyMemberProtocol

        alice = LegacyMemberProtocol(
            creds, "leader", DeterministicRandom(self.seed).fork("alice")
        )
        wire(scenario.net, "alice", alice)

        # The attacker intercepts alice's plaintext req_open and races a
        # forged denial; the real req_open is dropped (the attacker owns
        # the wire).
        def intercept(envelope: Envelope):
            if envelope.label is Label.REQ_OPEN and envelope.sender == "alice":
                return [
                    Envelope(Label.CONNECTION_DENIED, "leader", "alice", b"")
                ]
            return None

        scenario.net.set_interceptor(intercept)
        scenario.net.post(alice.start_join())
        scenario.net.run()
        scenario.net.set_interceptor(None)

        locked_out = (
            alice.state is LegacyMemberState.NOT_CONNECTED
            and "alice" not in scenario.leader.members
        )
        return AttackResult(
            self.name, "legacy", locked_out,
            "alice accepted the forged denial and aborted her join"
            if locked_out else "alice joined despite the forgery",
        )

    def run_itgm(self) -> AttackResult:
        scenario = build_itgm(["bob"], seed=self.seed)
        directory = scenario.directory
        creds = directory.register_password("alice", "pw-alice")
        from repro.crypto.rng import DeterministicRandom
        from repro.enclaves.harness import wire
        from repro.enclaves.itgm.member import MemberProtocol

        alice = MemberProtocol(
            creds, "leader", DeterministicRandom(self.seed).fork("alice")
        )
        wire(scenario.net, "alice", alice)

        # The attacker forges the same denial the instant alice's first
        # message hits the wire.  (It cannot *drop* AuthInitReq and
        # claim success: dropping frames is plain packet loss, which no
        # protocol can distinguish from a slow network — the §2.3 attack
        # is specifically that a *forged reply* terminates the join.)
        def intercept(envelope: Envelope):
            if (
                envelope.label is Label.AUTH_INIT_REQ
                and envelope.sender == "alice"
            ):
                return [
                    Envelope(Label.CONNECTION_DENIED, "leader", "alice", b""),
                    envelope,
                ]
            return None

        scenario.net.set_interceptor(intercept)
        scenario.net.post(alice.start_join())
        scenario.net.run()
        scenario.net.set_interceptor(None)

        locked_out = not (
            alice.state is MemberState.CONNECTED
            and "alice" in scenario.leader.members
        )
        return AttackResult(
            self.name, "itgm", locked_out,
            "alice failed to join" if locked_out
            else "no pre-auth exchange exists; alice ignored the forged "
                 "denial and joined",
        )
