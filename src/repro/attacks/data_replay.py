"""Data-frame replay: duplicate delivery on the data plane.

A network attacker (or a lossy link) re-delivers a recorded data
frame.  Against a group-key-only channel there is nothing to notice:
the seal still verifies under the still-current group key, so the
application sees the payload **twice** — double-applied writes,
duplicated commands.  The ratcheted channel consumes one chain
position per frame: the first delivery ratchets the key away, and the
copy finds a consumed sequence number — shed as a typed ``replay``
rejection, application state unchanged.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_data
from repro.enclaves.common import RekeyPolicy
from repro.telemetry.events import DEFAULT_BUS, DataShed
from repro.wire.labels import Label

_PAYLOAD = b"transfer $100 to carol"


class DataReplayAttack(Attack):
    """Replay a recorded DATA_MSG frame at its original recipient."""

    name = "data-replay"
    reference = "§2.3 (replay), applied to application traffic"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 7) -> None:
        self.seed = seed

    def _run(self, ratcheted: bool) -> tuple[int, int, str]:
        """Returns (deliveries before replay, after, shed reason)."""
        # reliable=False: this attack contrasts the *channels* — the
        # reliability layer's message-id dedup would mask the baseline's
        # vulnerability, and replay protection must not depend on an
        # optional layer the application might not run.
        scenario = build_data(
            ["alice", "bob"], seed=self.seed,
            ratcheted=ratcheted, reliable=False,
            rekey_policy=(RekeyPolicy.ON_JOIN | RekeyPolicy.ON_LEAVE
                          if ratcheted else RekeyPolicy.MANUAL),
        )
        net = scenario.net
        alice, bob = scenario.members["alice"], scenario.members["bob"]

        net.post_all(alice.send_data(_PAYLOAD))
        net.run()
        recorded = [
            e for e in net.wire_log
            if e.label is Label.DATA_MSG and e.recipient == "bob"
        ][-1]
        before = len(bob.inbox)

        with DEFAULT_BUS.capture() as records:
            net.inject(recorded)   # byte-identical copy, straight at bob
            net.run()
        reasons = [r.event.reason for r in records
                   if isinstance(r.event, DataShed) and r.event.node == "bob"]
        return before, len(bob.inbox), reasons[0] if reasons else ""

    def run_legacy(self) -> AttackResult:
        before, after, _ = self._run(ratcheted=False)
        succeeded = after == before + 1 and before >= 1
        return AttackResult(
            self.name, "legacy", succeeded,
            f"bob's application saw the payload {after} times "
            "(group-key seal has no replay accounting)" if succeeded
            else "baseline unexpectedly deduplicated the replay",
        )

    def run_itgm(self) -> AttackResult:
        before, after, reason = self._run(ratcheted=True)
        succeeded = after != before
        return AttackResult(
            self.name, "itgm", succeeded,
            f"replay delivered ({after} vs {before})" if succeeded
            else "replayed frame shed as typed "
                 f"{reason or 'replay'} rejection; deliveries unchanged "
                 f"at {before}",
        )
