"""Past-member data access: the §2.3 attack family, on the data plane.

The paper's §2.3 attacks show a past member reusing an old *group key*
against the management plane.  The data-plane variant is simpler and,
against a group-key-only channel, devastating: a member who leaves
keeps the group key it was legitimately given, and until the key
rotates, every data frame on the wire is an open book — no replay, no
forgery, just reading.

Scenario (both stacks): mallory joins, captures **everything** her
endpoint holds — the group key *and* her entire data-channel state
(sender chain, receiver chains, banked skip keys) — then leaves.
Alice keeps talking.  Mallory points her captured channel at the
post-leave wire.

* **Baseline** (``GroupKeyChannel``, manual rekey — exactly what
  sealing app traffic directly under the group key gives you): the
  leave does not change the key, so mallory reads alice's post-leave
  traffic verbatim.
* **Ratcheted** (``DataChannel`` + rekey-on-leave): the leave commits
  a new epoch, every chain re-seeds from a group key mallory never
  saw.  Her captured chain state and her captured group key both open
  nothing — every attempt dies as a typed ``epoch`` / ``integrity``
  rejection, zero plaintext recovered.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult, build_data
from repro.dataplane.channel import DataChannel, GroupKeyChannel
from repro.enclaves.common import RekeyPolicy
from repro.exceptions import (
    EpochMismatchError,
    IntegrityError,
    RatchetError,
)
from repro.wire.labels import Label

_SECRET = b"quarterly numbers: 42"


class PastMemberDataAttack(Attack):
    """A leaver replays captured channel state against live traffic."""

    name = "past-member-data"
    reference = "§2.3 extended to the data plane (PAPERS.md: Xu, group " \
                "key management alone gives no forward secrecy)"
    expected_on_legacy = True
    expected_on_itgm = False

    def __init__(self, seed: int = 5) -> None:
        self.seed = seed

    # -- baseline: group-key-only channel --------------------------------------

    def run_legacy(self) -> AttackResult:
        # reliable=False: a passive read off the wire — the ACK/NACK
        # layer is irrelevant, and its message-id framing would wrap
        # the plaintext this attack checks for verbatim.
        scenario = build_data(
            ["alice", "bob", "mallory"], seed=self.seed,
            ratcheted=False, reliable=False,
            rekey_policy=RekeyPolicy.MANUAL,
        )
        net = scenario.net
        alice = scenario.members["alice"]
        mallory = scenario.members["mallory"]

        # Mallory's capture: the group key her membership granted her.
        captured_key = mallory.member.group_key
        captured_epoch = mallory.member.group_epoch
        assert captured_key is not None

        mark = len(net.wire_log)
        net.post(mallory.member.start_leave())
        net.run()

        # Alice speaks *after* mallory has left the group.
        net.post_all(alice.send_data(_SECRET))
        net.run()

        leaked = _read_off_wire(
            net.wire_log[mark:],
            GroupKeyChannel("mallory-offline"),
            captured_key, captured_epoch,
        )
        succeeded = _SECRET in leaked
        return AttackResult(
            self.name, "legacy", succeeded,
            f"ex-member read {leaked[0]!r} off the wire with the group key "
            "she left with (no rekey-on-leave, no ratchet)" if succeeded
            else "baseline unexpectedly protected post-leave traffic",
        )

    # -- ratcheted channel ------------------------------------------------------

    def run_itgm(self) -> AttackResult:
        scenario = build_data(
            ["alice", "bob", "mallory"], seed=self.seed,
            ratcheted=True, reliable=False,
            rekey_policy=RekeyPolicy.ON_JOIN | RekeyPolicy.ON_LEAVE,
        )
        net = scenario.net
        alice = scenario.members["alice"]
        mallory = scenario.members["mallory"]

        # Warm the chains so mallory's capture includes live receiver
        # state (the strongest capture: keys, chains, skip stores).
        net.post_all(alice.send_data(b"pre-leave chatter"))
        net.run()

        captured_channel = mallory.channel          # the live object itself
        captured_key = mallory.member.group_key
        assert captured_key is not None

        mark = len(net.wire_log)
        pre_leave_epoch = alice.member.group_epoch
        net.post(mallory.member.start_leave())
        net.run()
        assert alice.member.group_epoch > pre_leave_epoch, \
            "rekey-on-leave must bump the epoch"

        net.post_all(alice.send_data(_SECRET))
        net.run()
        post_leave = [
            e for e in net.wire_log[mark:]
            if e.label is Label.DATA_MSG and e.sender == "alice"
        ]
        assert post_leave, "alice's post-leave traffic must be on the wire"

        leaked: list[bytes] = []
        rejections: dict[str, int] = {"epoch": 0, "integrity": 0, "other": 0}
        for frame in post_leave:
            # Attempt 1: the captured channel, exactly as it was.
            try:
                leaked.append(captured_channel.open(frame)[2])
            except EpochMismatchError:
                rejections["epoch"] += 1
            except (RatchetError, IntegrityError):
                rejections["other"] += 1
            # Attempt 2: re-seed chains from the captured *key* at the
            # frame's (new) epoch — the best a key-holding leaver can do.
            forged = DataChannel("mallory-forged")
            forged.rebind(captured_key, alice.member.group_epoch)
            try:
                leaked.append(forged.open(frame)[2])
            except IntegrityError:
                rejections["integrity"] += 1
            except (RatchetError, IntegrityError):
                rejections["other"] += 1
        succeeded = bool(leaked)
        return AttackResult(
            self.name, "itgm", succeeded,
            f"captured state decrypted {len(leaked)} post-leave frame(s)"
            if succeeded else
            "zero post-leave plaintext: captured chain state shed as "
            f"epoch-mismatch ×{rejections['epoch']}, re-seeded old key "
            f"failed authentication ×{rejections['integrity']}",
        )


def _read_off_wire(frames, channel, key, epoch) -> list[bytes]:
    """Decrypt whatever the captured key opens among recorded frames."""
    channel.rebind(key, epoch)
    leaked = []
    for frame in frames:
        if frame.label is not Label.DATA_MSG:
            continue
        try:
            leaked.append(channel.open(frame)[2])
        except Exception:
            continue
    return leaked
