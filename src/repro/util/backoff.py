"""Unified retry backoff: exponential growth with seeded jitter.

Before this module, each retry loop carried its own ad-hoc delay
arithmetic — the self-healing member supervisor computed exponential
backoff with centered jitter inline, and the fabric member driver used
a bare fixed interval.  One formula, three jitter modes, every knob in
one dataclass:

* ``"none"`` — the raw exponential delay, unperturbed.  This is also
  what every policy yields when no RNG is supplied, so callers without
  a deterministic random source degrade gracefully instead of
  silently consuming entropy.
* ``"centered"`` — scale by ``1 + jitter * (u - 0.5)`` for a uniform
  ``u`` in [0, 1): the historical supervisor formula, kept bit-exact
  (same 8-byte draw, same arithmetic) so seeded chaos runs reproduce
  the same schedules they always did.
* ``"full"`` — scale by ``1 - jitter * u``: delays land uniformly in
  ``[delay * (1 - jitter), delay]``.  With ``jitter=1.0`` this is the
  classic AWS "full jitter", which decorrelates a thundering herd far
  better than centered jitter; new subsystems (the quorum view-change
  retries) default to it.

Jitter draws consume exactly eight bytes from the injected
:class:`~repro.crypto.rng.RandomSource` per call, so a policy's random
stream is easy to reason about in deterministic tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import RandomSource

#: Accepted jitter modes, in increasing order of decorrelation.
JITTER_MODES = ("none", "centered", "full")


def _uniform(rng: RandomSource) -> float:
    """One uniform draw in [0, 1) from eight bytes of the source."""
    raw = int.from_bytes(rng.random_bytes(8), "big")
    return raw / float(1 << 64)


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff schedule with optional seeded jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... grows as
    ``base * factor ** attempt`` capped at ``max_delay``, then jittered
    per ``mode``.  The policy is immutable and stateless: the caller
    owns the attempt counter and the RNG, so one policy instance can be
    shared by any number of independent retry loops.
    """

    base: float = 0.25
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    mode: str = "full"

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.mode not in JITTER_MODES:
            raise ValueError(
                f"mode must be one of {JITTER_MODES}, got {self.mode!r}"
            )

    def raw_delay(self, attempt: int) -> float:
        """The capped exponential delay before jitter."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(self.max_delay, self.base * self.factor ** attempt)

    def delay(self, attempt: int, rng: RandomSource | None = None) -> float:
        """The jittered delay for one retry attempt.

        Without an RNG (or with ``mode="none"`` / ``jitter=0``) this is
        exactly :meth:`raw_delay` and consumes no randomness.
        """
        delay = self.raw_delay(attempt)
        if rng is None or self.mode == "none" or self.jitter == 0.0:
            return delay
        u = _uniform(rng)
        if self.mode == "centered":
            return delay * (1.0 + self.jitter * (u - 0.5))
        # mode == "full"
        return delay * (1.0 - self.jitter * u)

    def schedule(
        self, attempts: int, rng: RandomSource | None = None
    ) -> list[float]:
        """The first ``attempts`` delays, in order (handy in tests)."""
        return [self.delay(i, rng) for i in range(attempts)]


def constant(interval: float) -> BackoffPolicy:
    """A degenerate policy: every attempt waits exactly ``interval``.

    Used where a subsystem historically retried on a fixed cadence
    (the fabric member driver) — routing it through the same policy
    type keeps the pacing knobs in one place without changing the
    produced delays.
    """
    return BackoffPolicy(
        base=interval, factor=1.0, max_delay=interval, jitter=0.0,
        mode="none",
    )


__all__ = ["BackoffPolicy", "JITTER_MODES", "constant"]
