"""Byte-string operations used by the crypto substrate.

These are deliberately simple, dependency-free implementations.  The
constant-time comparison mirrors ``hmac.compare_digest``: the loop always
visits every byte so the running time does not leak the position of the
first mismatch.
"""

from __future__ import annotations

from repro.exceptions import PaddingError


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Compare two byte strings in time independent of their contents.

    Length differences are still observable (as with HMAC verification in
    general, the MAC length is public), but the position of the first
    differing byte is not.
    """
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"xor_bytes: length mismatch ({len(a)} vs {len(b)})")
    return bytes(x ^ y for x, y in zip(a, b))


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` using PKCS#7.

    A full block of padding is added when ``data`` is already aligned, so
    padding is always removable unambiguously.
    """
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Remove PKCS#7 padding, raising :class:`PaddingError` if malformed."""
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise PaddingError(f"invalid padding length byte {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]
