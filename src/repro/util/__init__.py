"""Low-level utilities shared across the library."""

from repro.util.bytesops import (
    constant_time_eq,
    pkcs7_pad,
    pkcs7_unpad,
    xor_bytes,
)
from repro.util.clock import Clock, RealClock, VirtualClock

__all__ = [
    "constant_time_eq",
    "pkcs7_pad",
    "pkcs7_unpad",
    "xor_bytes",
    "Clock",
    "RealClock",
    "VirtualClock",
]
