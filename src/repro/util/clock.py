"""Clock abstraction.

The runtime protocol stack and the simulation harness both consume a
:class:`Clock`.  Production code uses :class:`RealClock`; tests and the
discrete-event simulator use :class:`VirtualClock` so that time-dependent
behaviour (periodic rekeying, timeouts) is deterministic.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic time source measured in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    def now_ns(self) -> int:
        """The current time in integer nanoseconds.

        Virtual clocks derive this from :meth:`now`, so virtual-time
        timestamps stay exact and deterministic; :class:`RealClock`
        overrides it with the raw monotonic counter.
        """
        return int(self.now() * 1_000_000_000)


class RealClock(Clock):
    """Wall-clock backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def now_ns(self) -> int:
        return time.monotonic_ns()


class VirtualClock(Clock):
    """Manually advanced clock for deterministic tests and simulation."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> None:
        """Move time forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ValueError("cannot move a VirtualClock backwards")
        self._now += delta

    def set(self, value: float) -> None:
        """Jump to an absolute time (must not go backwards)."""
        if value < self._now:
            raise ValueError("cannot move a VirtualClock backwards")
        self._now = float(value)


class TickClock(Clock):
    """A logical clock that advances a fixed step on every reading.

    Useful for timestamping event streams from synchronous harnesses
    (which have no time axis of their own): every reading is distinct,
    strictly increasing, and deterministic — so two runs of the same
    scripted scenario produce byte-identical timestamps.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0) -> None:
        if step <= 0:
            raise ValueError("step must be > 0")
        self._step = float(step)
        self._now = float(start)

    def now(self) -> float:
        value = self._now
        self._now += self._step
        return value


class CallableClock(Clock):
    """Adapt any ``() -> float`` time source (e.g. an asyncio loop's
    ``time`` method) to the :class:`Clock` interface."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def now(self) -> float:
        return self._fn()
