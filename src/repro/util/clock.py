"""Clock abstraction.

The runtime protocol stack and the simulation harness both consume a
:class:`Clock`.  Production code uses :class:`RealClock`; tests and the
discrete-event simulator use :class:`VirtualClock` so that time-dependent
behaviour (periodic rekeying, timeouts) is deterministic.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic time source measured in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""


class RealClock(Clock):
    """Wall-clock backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()


class VirtualClock(Clock):
    """Manually advanced clock for deterministic tests and simulation."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> None:
        """Move time forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ValueError("cannot move a VirtualClock backwards")
        self._now += delta

    def set(self, value: float) -> None:
        """Jump to an absolute time (must not go backwards)."""
        if value < self._now:
            raise ValueError("cannot move a VirtualClock backwards")
        self._now = float(value)
