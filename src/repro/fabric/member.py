"""A group member that follows the directory.

:class:`FabricMember` wraps the *unchanged* §3.2
:class:`~repro.enclaves.itgm.member.MemberProtocol` with exactly the
routing the fabric adds and nothing more: it looks its group up in the
:class:`~repro.fabric.directory.GroupDirectory`, wraps every outbound
frame in a ``GROUP_WRAP`` envelope addressed at the hosting shard, and
understands ``GROUP_REDIRECT`` answers by re-consulting the directory
and rejoining.  The cryptographic protocol underneath is untouched —
the same argument as leader failover (:mod:`repro.enclaves.itgm.\
failover`): from the member's point of view, a migrated group is a
leader that forgot its session, and §3.2 already handles that by
re-authentication.

Rejoin discipline (mirrors the supervisor's, :mod:`repro.enclaves.itgm.\
supervisor`): before abandoning a connected session the member seals a
``ReqClose`` and *caches* it, resending it ahead of every join attempt
until a join succeeds — because a live leader that still holds our old
session would otherwise reject the fresh ``AuthInitReq``.  Half-open
joins resume by byte-identical retransmission, which is safe at both an
old leader (treated as a replay) and a new one (ordinary message 1).
"""

from __future__ import annotations

from repro.crypto.rng import DeterministicRandom, RandomSource, SystemRandom
from repro.enclaves.common import Credentials, Event, Joined
from repro.enclaves.itgm.member import MemberProtocol, MemberState
from repro.fabric.directory import GroupDirectory, RouteResult
from repro.fabric.shard import parse_redirect
from repro.overload.deadline import RetryBudget
from repro.telemetry.events import EventBus, RetryBudgetExhausted
from repro.wire.labels import Label
from repro.wire.message import Envelope, wrap_group


class FabricMember:
    """Sans-IO directory-following member for one group."""

    def __init__(
        self,
        credentials: Credentials,
        group_id: str,
        fabric: GroupDirectory,
        *,
        rng: RandomSource | None = None,
        rekey_grace: bool = True,
        telemetry: EventBus | None = None,
        protocol_factory=None,
        retry_budget: RetryBudget | None = None,
    ) -> None:
        self.credentials = credentials
        self.user_id = credentials.user_id
        self.group_id = group_id
        self.fabric = fabric
        self._rng = rng if rng is not None else SystemRandom()
        self._rekey_grace = rekey_grace
        self._telemetry = telemetry
        #: Optional ``(credentials, group_id, rng, rekey_grace,
        #: telemetry) -> MemberProtocol`` override, so protocol variants
        #: (e.g. the certificate-verifying quorum member) ride the
        #: fabric's routing unchanged.
        self._protocol_factory = protocol_factory
        self._epoch = 0
        self.protocol = self._new_protocol()
        self.route: RouteResult | None = None
        self._pending_close: Envelope | None = None
        #: Optional cap on redirect chasing.  During a migration storm
        #: (or a malicious directory bouncing a member between shards)
        #: each ``GROUP_REDIRECT`` costs a directory lookup plus a
        #: retransmit or full re-join; the budget turns an unbounded
        #: chase into a clean, observable stop.  None (default) = chase
        #: forever, the seed behaviour.
        self._retry_budget = retry_budget
        self.redirects = 0
        self.rejoins = 0
        self.chases_dropped = 0

    def _new_protocol(self) -> MemberProtocol:
        # A fresh protocol per join epoch, on a forked rng stream, so a
        # rejoin never reuses nonces from the abandoned attempt (and
        # deterministic runs replay identically).
        rng = (
            self._rng.fork(f"{self.user_id}-epoch-{self._epoch}")
            if isinstance(self._rng, DeterministicRandom)
            else self._rng
        )
        if self._protocol_factory is not None:
            return self._protocol_factory(
                self.credentials, self.group_id, rng,
                self._rekey_grace, self._telemetry,
            )
        return MemberProtocol(
            self.credentials,
            self.group_id,
            rng=rng,
            rekey_grace=self._rekey_grace,
            telemetry=self._telemetry,
        )

    # -- routing -------------------------------------------------------------

    def refresh_route(self) -> RouteResult:
        """Re-consult the directory (recording redirects for stats)."""
        known = self.route.version if self.route else None
        result = self.fabric.lookup(self.group_id, known)
        if result.redirected:
            self.redirects += 1
        self.route = result
        return result

    def _wrap(self, inner: Envelope) -> Envelope:
        if self.route is None:
            self.refresh_route()
        assert self.route is not None
        return wrap_group(self.group_id, inner, self.route.shard_id)

    # -- user-initiated actions ----------------------------------------------

    @property
    def state(self) -> MemberState:
        return self.protocol.state

    @property
    def connected(self) -> bool:
        return self.protocol.state is MemberState.CONNECTED

    def start_join(self) -> list[Envelope]:
        """Open (or reopen) the session via the current route.

        Returns the cached ``ReqClose`` for any abandoned session first,
        then the wrapped ``AuthInitReq`` — the order matters: the close
        must clear a live leader's stale session before the fresh join
        arrives.
        """
        self.refresh_route()
        if self._retry_budget is not None:
            self._retry_budget.record_request()
        out: list[Envelope] = []
        if self._pending_close is not None:
            out.append(self._wrap(self._pending_close))
        out.append(self._wrap(self.protocol.start_join()))
        return out

    def retransmit_last(self) -> list[Envelope]:
        """Wrapped byte-identical resend of a half-open join, plus the
        pending close (also idempotent), for timer-driven loss recovery."""
        frame = self.protocol.retransmit_last()
        if frame is None:
            return []
        # Re-consult the directory first: a half-open join must chase
        # the group if it moved (or its shard died) mid-handshake.
        self.refresh_route()
        out: list[Envelope] = []
        if self._pending_close is not None:
            out.append(self._wrap(self._pending_close))
        out.append(self._wrap(frame))
        return out

    def start_leave(self) -> Envelope:
        """Leave cleanly through the current route.

        The sealed ``ReqClose`` is also *cached*: leaving resets the
        local protocol immediately, so if this one frame is lost the
        leader still holds the session — and would then reject a future
        fresh join forever, with no way for the member to re-seal the
        close (the session key is gone).  Resending the cached copy
        ahead of the next join attempt breaks that wedge; a leader that
        already processed it (or never had the session) rejects the
        duplicate harmlessly.
        """
        inner = self.protocol.start_leave()
        self._pending_close = inner
        return self._wrap(inner)

    def seal_app(self, payload: bytes) -> Envelope:
        """Seal an application payload and wrap it for the shard."""
        return self._wrap(self.protocol.seal_app(payload))

    def reset_for_rejoin(self) -> None:
        """Abandon the current session for a fresh join attempt.

        Used when the member decides its leader-side session is gone or
        desynced (watchdog silence, a redirect while connected).  A
        connected session's ``ReqClose`` is sealed and cached *before*
        the protocol is replaced — see the module docstring.
        """
        if self.protocol.state is MemberState.CONNECTED:
            self._pending_close = self.protocol.start_leave()
        self._epoch += 1
        self.rejoins += 1
        self.protocol = self._new_protocol()

    # -- envelope handling ----------------------------------------------------

    def handle(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        """Process one inbound envelope; outputs come back wrapped.

        ``GROUP_REDIRECT`` frames are consumed here: the member
        re-consults the directory and either resumes a half-open join at
        the new shard (byte-identical retransmission) or abandons the
        session and rejoins.  Everything else goes to the §3.2 core.
        """
        if envelope.label is Label.GROUP_REDIRECT:
            return self._on_redirect(envelope), []
        out, events = self.protocol.handle(envelope)
        if any(isinstance(e, Joined) for e in events):
            # The join landed: any stale session it superseded is gone.
            self._pending_close = None
        return [self._wrap(frame) for frame in out], events

    def _on_redirect(self, envelope: Envelope) -> list[Envelope]:
        # The no-op default is the seed chase body plus this one falsy
        # branch (the disabled-overhead bound in
        # ``benchmarks/test_bench_overload.py`` times exactly this
        # pair).  With a budget armed, a dry budget sheds the redirect
        # before even parsing it — backpressure ahead of work.
        if self._retry_budget is not None:
            if not self._retry_budget.can_retry():
                # Out of chase budget: stop following this redirect.
                # The join simply does not progress; the driver's
                # timers surface that as a failed join instead of the
                # member spinning through lookups forever.
                self.chases_dropped += 1
                if self._telemetry:
                    self._telemetry.emit(RetryBudgetExhausted(
                        self.user_id, "redirect-chase", self.redirects
                    ))
                return []
            self._retry_budget.record_retry()
        return self._chase(envelope)

    def _chase(self, envelope: Envelope) -> list[Envelope]:
        """The seed redirect body: re-consult the directory and resume
        or restart the join at the group's new shard."""
        parse_redirect(envelope)  # CodecError on malformed frames
        self.refresh_route()
        if self.protocol.state is MemberState.WAITING_FOR_KEY:
            # Half-open join: replay message 1 at the new shard.  Safe
            # verbatim — a leader that saw it treats the copy as a
            # replay/resend; a fresh leader treats it as message 1.
            return self.retransmit_last()
        self.reset_for_rejoin()
        return self.start_join()
