"""Rebalance policy: telemetry-driven migration proposals.

The balancer is a pure function from observations to proposals.  It
reads the fabric's metrics (groups per shard from the directory;
per-group join rates and rekey latencies from a
:class:`~repro.telemetry.metrics.MetricsRegistry`) and proposes
:class:`MigrationProposal`\\ s; something else — an operator, the soak
harness, a control loop — decides whether to *execute* them via
:func:`~repro.fabric.migration.migrate_group`.  Keeping the policy free
of side effects makes it trivially testable and trivially deterministic:
sorted iteration everywhere, and the injected RNG is consulted only to
break exact ties.

The placement signal is a weighted load score per shard::

    load(shard) = Σ over hosted groups of (1 + join_weight·join_rate
                                             + rekey_weight·rekey_p99)

so a shard hosting few frantic groups can outweigh one hosting many
idle groups.  A move is proposed when shifting the busiest group off
the hottest shard onto the coolest one would shrink the gap between
them — the classic "does the move help" greedy test, repeated up to
``max_proposals`` times against the projected loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import RandomSource
from repro.fabric.directory import GroupDirectory
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class MigrationProposal:
    """One proposed move, with the evidence that motivated it."""

    group_id: str
    source: str
    target: str
    #: Human-auditable motivation, e.g. ``"load 7.00 -> 3.00"``.
    reason: str
    #: Projected post-move gap between hottest and coolest shard.
    projected_gap: float


@dataclass
class RebalancePolicy:
    """Greedy gap-shrinking rebalancer over shard load scores."""

    #: Extra load per unit of a group's join rate (joins per second).
    join_weight: float = 2.0
    #: Extra load per second of a group's p99 rekey latency.
    rekey_weight: float = 1.0
    #: Minimum hottest-to-coolest gap (in load units) worth acting on;
    #: below this the fabric is considered balanced.
    min_gap: float = 1.5
    #: Cap on proposals per evaluation (migrations are not free).
    max_proposals: int = 4
    rng: RandomSource | None = field(default=None, repr=False)

    def group_load(self, group_id: str, metrics: MetricsRegistry) -> float:
        """One group's weighted load contribution (≥ 1)."""
        join_rate = metrics.gauge("fabric_join_rate", group=group_id).value
        rekey_p99 = 0.0
        hist = metrics.histogram("fabric_rekey_latency", group=group_id)
        if len(hist):
            rekey_p99 = hist.p99
        return 1.0 + self.join_weight * join_rate + self.rekey_weight * rekey_p99

    def shard_loads(
        self, fabric: GroupDirectory, metrics: MetricsRegistry
    ) -> dict[str, float]:
        """Projected load score per serving shard."""
        loads = {shard: 0.0 for shard in fabric.shard_ids}
        for group_id, shard in fabric.placements().items():
            if shard in loads:
                loads[shard] += self.group_load(group_id, metrics)
        return loads

    def propose(
        self, fabric: GroupDirectory, metrics: MetricsRegistry
    ) -> list[MigrationProposal]:
        """Migration proposals that would shrink the load gap."""
        loads = self.shard_loads(fabric, metrics)
        if len(loads) < 2:
            return []
        placements = fabric.placements()
        proposals: list[MigrationProposal] = []
        moved: set[str] = set()

        for _ in range(self.max_proposals):
            hottest = self._pick(loads, reverse=True)
            coolest = self._pick(loads, reverse=False)
            gap = loads[hottest] - loads[coolest]
            if gap < self.min_gap or hottest == coolest:
                break
            candidates = sorted(
                g for g, s in placements.items()
                if s == hottest and g not in moved
            )
            best: tuple[float, float, str] | None = None
            for group_id in candidates:
                load = self.group_load(group_id, metrics)
                new_gap = abs(
                    (loads[hottest] - load) - (loads[coolest] + load)
                )
                # Moving must strictly shrink the gap, else skip.
                if new_gap >= gap:
                    continue
                if best is None or (new_gap, -load) < (best[0], -best[1]):
                    best = (new_gap, load, group_id)
            if best is None:
                break
            new_gap, load, group_id = best
            proposals.append(MigrationProposal(
                group_id=group_id,
                source=hottest,
                target=coolest,
                reason=(
                    f"shard load {loads[hottest]:.2f} -> "
                    f"{loads[hottest] - load:.2f} "
                    f"(gap {gap:.2f} -> {new_gap:.2f})"
                ),
                projected_gap=new_gap,
            ))
            moved.add(group_id)
            placements[group_id] = coolest
            loads[hottest] -= load
            loads[coolest] += load
        return proposals

    def _pick(self, loads: dict[str, float], *, reverse: bool) -> str:
        """The extreme-load shard; RNG breaks *exact* ties only, so the
        policy stays deterministic under a seeded source."""
        extreme = max(loads.values()) if reverse else min(loads.values())
        tied = sorted(s for s, v in loads.items() if v == extreme)
        if len(tied) > 1 and self.rng is not None:
            pick = int.from_bytes(self.rng.random_bytes(2), "big") % len(tied)
            return tied[pick]
        return tied[0]
