"""One shard host: many group leaders behind a single endpoint.

A :class:`ShardHost` demultiplexes ``GROUP_WRAP`` frames by the group id
carried in the wrapper and hands the inner envelope to the hosted
:class:`~repro.enclaves.itgm.leader.GroupLeader` for that group.  Each
hosted group gets its *own* write-ahead journal (its own file, its own
storage key) via the unchanged :mod:`repro.storage.journal` API — groups
stay independent failure and recovery domains even when co-hosted.

The demux layer enforces the fabric's isolation stance:

* A frame scoped to a group this shard does not host is **rejected
  loudly** (:class:`~repro.telemetry.events.ForeignGroupRejected` plus a
  :class:`~repro.enclaves.common.Rejected` event) — never silently
  dropped, never guessed into another group.
* A frame scoped to a group that *moved away* is answered with a
  ``GROUP_REDIRECT`` naming the group, so a member routing on a stale
  directory version learns to re-consult the directory instead of
  mistaking the silence for a dead leader.
* The group id in the wrapper is routing metadata, not authentication:
  a cross-posted frame rewrapped under another group's id reaches that
  group's leader and dies on its seals, exactly like any forged frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import KeyMaterial
from repro.crypto.rng import RandomSource
from repro.enclaves.common import Event, Rejected, UserDirectory
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.persistence import restore_leader
from repro.exceptions import CodecError, StateError
from repro.storage.journal import Journal
from repro.telemetry.events import (
    EventBus,
    ForeignGroupRejected,
    FrameRejected,
    GroupHosted,
    GroupRedirected,
    ShardDelivered,
    frame_id,
)
from repro.util.clock import Clock
from repro.wire.codec import decode_fields, decode_str, encode_fields, encode_str
from repro.wire.labels import Label
from repro.wire.message import Envelope, unwrap_group


def redirect_envelope(
    shard_id: str, member: str, group_id: str, target: str | None
) -> Envelope:
    """A shard's answer for a group it no longer serves.

    ``target`` names the new shard when the sender knows it (a completed
    move), or ``None`` when the member must re-consult the directory
    (mid-quiesce, or the shard only knows the group left).
    """
    return Envelope(
        label=Label.GROUP_REDIRECT,
        sender=shard_id,
        recipient=member,
        body=encode_fields(
            [encode_str(group_id), encode_str(target or "")]
        ),
    )


def parse_redirect(envelope: Envelope) -> tuple[str, str | None]:
    """``(group id, new shard or None)`` from a GROUP_REDIRECT frame."""
    if envelope.label is not Label.GROUP_REDIRECT:
        raise CodecError(
            f"expected GROUP_REDIRECT, got {envelope.label.name}"
        )
    group_b, target_b = decode_fields(envelope.body, expect=2)
    target = decode_str(target_b)
    return decode_str(group_b), (target or None)


@dataclass
class ShardStats:
    """Demux counters (the balancer and soak assertions read these)."""

    frames_in: int = 0
    delivered: int = 0
    redirected: int = 0
    foreign_rejected: int = 0
    malformed: int = 0
    #: Frames refused at the bounded intake (overload protection).
    shed: int = 0


@dataclass
class _Hosted:
    leader: GroupLeader
    journal: Journal
    quiesced: bool = False


class ShardHost:
    """Sans-IO multi-group host: ``handle(envelope) -> (out, events)``."""

    def __init__(
        self,
        shard_id: str,
        disk,
        *,
        rng: RandomSource | None = None,
        clock: Clock | None = None,
        telemetry: EventBus | None = None,
        fsync_every: int = 1,
        compact_threshold: int | None = 64,
        mailbox=None,
    ) -> None:
        self.shard_id = shard_id
        self.disk = disk
        self._rng = rng
        self._clock = clock
        self._telemetry = telemetry
        self._fsync_every = fsync_every
        self._compact_threshold = compact_threshold
        #: Optional :class:`~repro.overload.mailbox.BoundedMailbox` in
        #: front of the demux (see :meth:`enqueue`/:meth:`pump`); None
        #: keeps the seed behaviour — every frame demuxed on arrival.
        self._mailbox = mailbox
        self._hosted: dict[str, _Hosted] = {}
        #: Groups that moved away: ``group id -> new shard or None``.
        self._departed: dict[str, str | None] = {}
        #: optional PhaseProfiler (observability); None when off.
        self._profiler = None
        self.stats = ShardStats()

    def bind_profiler(self, profiler) -> None:
        """Attach a :class:`~repro.observability.profile.PhaseProfiler`
        to the demux path (None detaches)."""
        self._profiler = profiler

    # -- lifecycle ----------------------------------------------------------

    @property
    def groups(self) -> list[str]:
        return sorted(self._hosted)

    def hosts(self, group_id: str) -> bool:
        return group_id in self._hosted

    def leader(self, group_id: str) -> GroupLeader:
        return self._entry(group_id).leader

    def journal(self, group_id: str) -> Journal:
        return self._entry(group_id).journal

    def journal_path(self, group_id: str) -> str:
        """The per-group journal file name on this shard's disk."""
        return f"{group_id}.wal"

    def _entry(self, group_id: str) -> _Hosted:
        entry = self._hosted.get(group_id)
        if entry is None:
            raise StateError(
                f"shard {self.shard_id!r} does not host {group_id!r}"
            )
        return entry

    def host_group(
        self,
        group_id: str,
        users: UserDirectory,
        *,
        storage_key: KeyMaterial,
        config: LeaderConfig | None = None,
        state: dict | None = None,
        start_seq: int = 0,
        rng: RandomSource | None = None,
    ) -> GroupLeader:
        """Start serving a group, journaled under its own storage key.

        With ``state`` (a leader snapshot, e.g. from a migration replay
        or a crashed shard's journal) the leader is *restored*; without,
        a fresh one is created.  ``start_seq`` continues the journal's
        sequence past the shipped history so replays of the whole move
        see one gap-free record stream per group.
        """
        if group_id in self._hosted:
            raise StateError(
                f"shard {self.shard_id!r} already hosts {group_id!r}"
            )
        self._departed.pop(group_id, None)
        leader_rng = rng if rng is not None else self._rng
        if state is not None:
            if state.get("leader_id") != group_id:
                raise StateError(
                    f"snapshot is for {state.get('leader_id')!r}, "
                    f"not {group_id!r}"
                )
            leader = restore_leader(
                state, users, config=config, rng=leader_rng,
                clock=self._clock, telemetry=self._telemetry,
            )
        else:
            leader = GroupLeader(
                group_id, users, config=config, rng=leader_rng,
                clock=self._clock, telemetry=self._telemetry,
            )
        journal = Journal(
            self.disk,
            self.journal_path(group_id),
            storage_key,
            fsync_every=self._fsync_every,
            compact_threshold=self._compact_threshold,
            rng=leader_rng,
            node=f"{self.shard_id}/{group_id}",
            telemetry=self._telemetry,
        )
        journal.attach(leader, start_seq=start_seq)
        self._hosted[group_id] = _Hosted(leader, journal)
        if self._telemetry:
            self._telemetry.emit(
                GroupHosted(self.shard_id, group_id, journal.seq)
            )
        return leader

    def host_prepared(
        self, group_id: str, leader: GroupLeader, journal: Journal
    ) -> None:
        """Serve an externally constructed (leader, journal) pair.

        The quorum fabric glue (:mod:`repro.quorum.fabric`) uses this to
        put a replica set's *primary* — a core whose journal, shipping
        stream, and certification wiring already exist and must not be
        rebuilt — behind the shard's demux.  Redirects, eviction, and
        the tick fan-out behave exactly as for natively hosted groups.
        """
        if group_id in self._hosted:
            raise StateError(
                f"shard {self.shard_id!r} already hosts {group_id!r}"
            )
        self._departed.pop(group_id, None)
        self._hosted[group_id] = _Hosted(leader, journal)
        if self._telemetry:
            self._telemetry.emit(
                GroupHosted(self.shard_id, group_id, journal.seq)
            )

    def rebind_group(
        self, group_id: str, leader: GroupLeader, journal: Journal
    ) -> None:
        """Swap the served core for an already-hosted group in place.

        A quorum view change replaces the primary's leader object (the
        promoted witness's replayed state) without the group moving
        shards; the demux must follow or it would keep serving the
        evicted core.  No redirect breadcrumb, no directory change —
        from the members' side nothing happened but an epoch bump.
        """
        entry = self._entry(group_id)
        entry.leader = leader
        entry.journal = journal

    def quiesce(self, group_id: str) -> None:
        """Stop serving a group's traffic (members get redirects) while
        its state ships; the leader object stays for checkpointing."""
        self._entry(group_id).quiesced = True

    def resume(self, group_id: str) -> None:
        """Undo :meth:`quiesce` (an aborted migration)."""
        self._entry(group_id).quiesced = False

    def evict_group(self, group_id: str, target: str | None) -> None:
        """Forget a group after it moved; keep a redirect breadcrumb.

        The journal object is dropped but its file stays on disk —
        history is never destroyed by an eviction, only superseded by
        the target shard's journal.
        """
        self._entry(group_id)  # loud on unknown groups
        del self._hosted[group_id]
        self._departed[group_id] = target

    # -- the demux path -----------------------------------------------------

    def handle(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        """Route one wrapped frame to its hosted leader."""
        self.stats.frames_in += 1
        prof = self._profiler
        tok = prof.begin("demux") if prof else None
        try:
            return self._demux(envelope)
        finally:
            if prof:
                prof.end(tok)

    def handle_many(
        self, envelopes: list[Envelope]
    ) -> tuple[list[Envelope], list[Event]]:
        """Route a batch of wrapped frames, coalescing same-group runs.

        Consecutive frames that route to the *same* hosted leader are
        handed to :meth:`~repro.enclaves.itgm.leader.GroupLeader.handle_many`
        in one call so its batch ``open_many`` path can amortise the
        per-frame crypto.  Everything else (rejects, redirects, group
        switches) flushes the run and takes the per-frame path, so
        outputs and events come back in exactly the order sequential
        :meth:`handle` calls would produce them.  With a profiler bound
        the batch path is skipped entirely: per-frame phase attribution
        is part of the observability contract.
        """
        if self._profiler is not None:
            out: list[Envelope] = []
            events: list[Event] = []
            for envelope in envelopes:
                frames, evts = self.handle(envelope)
                out.extend(frames)
                events.extend(evts)
            return out, events

        out = []
        events = []
        run_leader: GroupLeader | None = None
        run_inner: list[Envelope] = []

        def flush() -> None:
            nonlocal run_leader, run_inner
            if run_leader is None:
                return
            if len(run_inner) >= 2:
                frames, evts = run_leader.handle_many(run_inner)
            else:
                frames, evts = run_leader.handle(run_inner[0])
            out.extend(frames)
            events.extend(evts)
            run_leader, run_inner = None, []

        for envelope in envelopes:
            self.stats.frames_in += 1
            delivery, frames, evts = self._route(envelope)
            if delivery is None:
                flush()
                out.extend(frames)
                events.extend(evts)
                continue
            leader, inner = delivery
            if leader is not run_leader:
                flush()
                run_leader = leader
                run_inner = [inner]
            else:
                run_inner.append(inner)
        flush()
        return out, events

    def _demux(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        delivery, out, events = self._route(envelope)
        if delivery is None:
            return out, events
        leader, inner = delivery
        return leader.handle(inner)

    def _route(
        self, envelope: Envelope
    ) -> tuple[
        tuple[GroupLeader, Envelope] | None, list[Envelope], list[Event]
    ]:
        """Classify one wrapped frame without delivering it.

        Returns ``((leader, inner), [], [])`` for a deliverable frame
        (demux stats and telemetry already emitted), or
        ``(None, out, events)`` when the demux layer answered it
        (malformed, foreign, or redirected).
        """
        if envelope.label is not Label.GROUP_WRAP:
            self.stats.malformed += 1
            reason = "shard endpoint accepts only GROUP_WRAP frames"
            self._reject_frame(envelope, reason)
            return None, [], [Rejected(reason, envelope.label)]
        try:
            group_id, inner = unwrap_group(envelope)
        except CodecError as exc:
            self.stats.malformed += 1
            reason = f"malformed group wrapper: {exc}"
            self._reject_frame(envelope, reason)
            return None, [], [Rejected(reason, envelope.label)]

        entry = self._hosted.get(group_id)
        if entry is None or entry.quiesced:
            if entry is not None or group_id in self._departed:
                # Known-but-not-served: a stale route.  Answer it.
                target = (
                    None if entry is not None
                    else self._departed.get(group_id)
                )
                self.stats.redirected += 1
                if self._telemetry:
                    self._telemetry.emit(GroupRedirected(
                        self.shard_id, group_id, inner.sender,
                        target or "", frame_id(envelope),
                    ))
                return (
                    None,
                    [redirect_envelope(
                        self.shard_id, inner.sender, group_id, target
                    )],
                    [],
                )
            # Never ours: foreign (or fabricated) group id.
            self.stats.foreign_rejected += 1
            reason = f"group {group_id!r} is not hosted here"
            if self._telemetry:
                self._telemetry.emit(ForeignGroupRejected(
                    self.shard_id, group_id, frame_id(envelope), reason
                ))
            return None, [], [Rejected(reason, envelope.label)]

        self.stats.delivered += 1
        if self._telemetry:
            # The causal splice: wrapper id -> inner id, the inner id
            # being what the hosted leader's events carry as caused_by.
            self._telemetry.emit(ShardDelivered(
                self.shard_id, group_id, inner.sender,
                frame_id(envelope), frame_id(inner),
            ))
        return (entry.leader, inner), [], []

    # -- bounded intake (overload protection) --------------------------------

    @property
    def mailbox(self):
        return self._mailbox

    def enqueue(self, envelope: Envelope, now: float = 0.0) -> bool:
        """Admit one frame into the bounded intake (False = shed).

        Drivers that want backpressure route arrivals through here and
        drain with :meth:`pump`; :meth:`handle` stays available for
        direct synchronous use (and is what :meth:`pump` calls).
        Without a mailbox the frame is handled immediately and the
        outputs are dropped — use :meth:`handle` directly when there is
        no intake to bound.
        """
        if self._mailbox is None:
            raise StateError(
                f"shard {self.shard_id!r} has no bounded intake"
            )
        accepted = self._mailbox.offer(envelope, now)
        if not accepted:
            self.stats.shed += 1
        return accepted

    def pump(self, budget: int) -> tuple[list[Envelope], list[Event]]:
        """Demux up to ``budget`` queued frames, priority order."""
        if self._mailbox is None:
            raise StateError(
                f"shard {self.shard_id!r} has no bounded intake"
            )
        drained = self._mailbox.drain(budget)
        if self._profiler is None and len(drained) >= 2:
            return self.handle_many(drained)
        out: list[Envelope] = []
        events: list[Event] = []
        for envelope in drained:
            frames, evts = self.handle(envelope)
            out.extend(frames)
            events.extend(evts)
        return out, events

    def _reject_frame(self, envelope: Envelope, reason: str) -> None:
        if self._telemetry:
            self._telemetry.emit(FrameRejected(
                self.shard_id, envelope.label.name, reason,
                frame_id(envelope),
            ))

    # -- time-driven behaviour ----------------------------------------------

    def tick_all(self) -> list[Envelope]:
        """Advance every hosted (non-quiesced) leader's timers."""
        out: list[Envelope] = []
        for group_id in self.groups:
            entry = self._hosted[group_id]
            if not entry.quiesced:
                out.extend(entry.leader.tick())
        return out

    def heartbeats(self) -> list[Envelope]:
        """One liveness beacon per member, across all hosted groups."""
        out: list[Envelope] = []
        for group_id in self.groups:
            entry = self._hosted[group_id]
            if not entry.quiesced:
                out.extend(entry.leader.heartbeat())
        return out
