"""The many-group soak: §5 safety fabric-wide, plus isolation.

Runs N independent groups placed by the directory onto M shard hosts
over the in-memory network, under seeded churn (`sim.workload`),
seeded network faults (`net.faults`), a live migration, and a shard
crash with directory failover — all on the virtual-time loop, so a
given seed replays byte-identically.

What the run asserts, continuously and at the end:

* **§5.4 per group** — every connected member's accepted admin list is
  a prefix of its hosting leader's send log, group-key epochs strictly
  increase (the same formal predicates the single-group chaos soak
  uses, via :func:`repro.chaos.soak._member_safety`).
* **Zero cross-group leakage** — an adversary task actively rewraps
  one group's sealed traffic toward other shards (existing group id →
  dies on the foreign group's key; fabricated group id → rejected by
  the demux) and the run requires every attempt to be rejected, loudly,
  with the rejections visible in telemetry.  Independently, every
  application payload a member accepts must carry its own group's tag.
* **Reconvergence** — after the fault windows heal, every member that
  wants to be joined is connected to the leader *currently* hosting
  its group (post-migration, post-crash placement), holds that
  leader's current group key, and has an empty admin outbox.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.chaos.loop import LoopClock, run_virtual
from repro.chaos.soak import _member_safety
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import (
    AppMessage,
    Joined,
    RekeyPolicy,
    UserDirectory,
)
from repro.enclaves.itgm.leader import LeaderConfig
from repro.enclaves.itgm.member import MemberState
from repro.exceptions import ConnectionClosed, StateError
from repro.fabric.balancer import RebalancePolicy
from repro.fabric.directory import GroupDirectory
from repro.fabric.member import FabricMember
from repro.fabric.migration import migrate_group, rehost_cold
from repro.fabric.shard import ShardHost
from repro.net.adversary import Adversary
from repro.net.faults import FaultPlan
from repro.net.memnet import MemoryNetwork
from repro.sim.workload import ChurnWorkload, WorkloadKind
from repro.storage.recovery import replay_records
from repro.storage.simdisk import SimDisk
from repro.telemetry.events import (
    EventBus,
    ForeignGroupRejected,
    GroupRedirected,
    ShardFailed,
    frame_id,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.util.backoff import BackoffPolicy
from repro.util.backoff import constant as backoff_constant
from repro.wire.message import Envelope, wrap_group


@dataclass
class FabricConfig:
    """One seeded fabric soak scenario."""

    seed: int = 7
    n_groups: int = 16
    n_shards: int = 4
    members_per_group: int = 3
    duration: float = 40.0
    #: Per-group churn (aggregate join arrivals/s and mean session).
    churn_join_rate: float = 0.35
    churn_mean_session: float = 6.0
    #: Fraction of the duration during which churn events may fire;
    #: after the horizon every member is mustered back in so the
    #: convergence check covers the full fabric.
    churn_horizon: float = 0.55
    app_interval: float = 1.0
    cross_post_interval: float = 1.5
    #: Network fault windows (None disables).
    loss_window: tuple[float, float] | None = None
    drop_rate: float = 0.12
    duplicate_rate: float = 0.04
    delay_window: tuple[float, float] | None = None
    delay_rate: float = 0.2
    max_hold: float = 0.3
    #: Fabric lifecycle events (None disables).
    migrate_at: float | None = None
    rebalance_at: float | None = None
    crash_shard_at: float | None = None
    #: Timers.
    tick_interval: float = 0.25
    heartbeat_interval: float = 0.5
    monitor_interval: float = 0.5
    watchdog_timeout: float = 2.5
    retransmit_interval: float = 0.5
    converge_timeout: float = 20.0

    def retry_policy(self) -> BackoffPolicy:
        """The member driver's retry pacing as a shared policy object.

        Historically a bare fixed interval; expressed as a degenerate
        :class:`~repro.util.backoff.BackoffPolicy` (factor 1, no
        jitter) so every retry knob in the codebase lives behind the
        same type without changing the produced delays.
        """
        return backoff_constant(self.retransmit_interval)
    journal_fsync_every: int = 1
    vnodes: int = 16

    @classmethod
    def full(cls, seed: int = 7, **overrides) -> "FabricConfig":
        """The everything-on scenario used by CLI soak and the tests."""
        base = dict(
            seed=seed,
            loss_window=(4.0, 12.0),
            delay_window=(4.0, 12.0),
            migrate_at=14.0,
            rebalance_at=17.0,
            crash_shard_at=19.0,
        )
        base.update(overrides)
        return cls(**base)


@dataclass
class FabricReport:
    """Outcome of one fabric soak run."""

    seed: int
    duration: float
    n_groups: int
    n_shards: int
    n_members: int
    converged: bool
    converge_time: float | None
    n_desired: int
    n_converged: int
    violations: list[str]
    #: Adversarial cross-posting: every attempt must be rejected.
    cross_post_attempts: int
    cross_post_rejected: int
    foreign_post_attempts: int
    foreign_post_rejected: int
    #: Payloads accepted by members of the wrong group (must be 0).
    cross_group_deliveries: int
    app_delivered: int
    redirects: int
    rejoins: int
    migrations: list[dict]
    #: Virtual seconds from the directory flip until every desired
    #: member of the migrated group reconnected (None = no migration
    #: or it never reconverged).
    migration_downtime: float | None
    rebalance_proposals: list[str]
    crashed_shard: str | None
    regrouped: int
    directory_version: int
    placements: dict[str, str]
    metrics: dict
    notes: list[str] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return not self.violations

    @property
    def isolated(self) -> bool:
        """Did every cross-group attempt die loudly, with no leakage?"""
        return (
            self.cross_group_deliveries == 0
            and self.cross_post_rejected == self.cross_post_attempts
            and self.foreign_post_rejected == self.foreign_post_attempts
        )

    def format_table(self) -> str:
        lines = [
            f"fabric soak — seed={self.seed} groups={self.n_groups} "
            f"shards={self.n_shards} members={self.n_members} "
            f"duration={self.duration:.0f}s",
            "  converged          : "
            + ("NO" if not self.converged
               else f"yes (t={self.converge_time:.1f}s)"
               if self.converge_time is not None else "yes"),
            f"  members reconverged: {self.n_converged}/{self.n_desired}",
            f"  safety violations  : {len(self.violations)}",
        ]
        for violation in self.violations[:8]:
            lines.append(f"    ! {violation}")
        lines.append(
            f"  cross-group posts  : {self.cross_post_attempts} attempted, "
            f"{self.cross_post_rejected} rejected on the foreign key"
        )
        lines.append(
            f"  phantom-group posts: {self.foreign_post_attempts} attempted, "
            f"{self.foreign_post_rejected} rejected by the demux"
        )
        lines.append(
            f"  cross-group leaks  : {self.cross_group_deliveries}"
        )
        lines.append(
            f"  app delivered      : {self.app_delivered}"
            f"  redirects: {self.redirects}  rejoins: {self.rejoins}"
        )
        for migration in self.migrations:
            lines.append(
                f"  migration          : {migration['group']} "
                f"{migration['source']} -> {migration['target']} "
                f"(seq {migration['record_seq']}, {migration['kind']})"
            )
        if self.migration_downtime is not None:
            lines.append(
                f"  migration downtime : {self.migration_downtime:.2f}s "
                "virtual (flip -> members rejoined)"
            )
        for proposal in self.rebalance_proposals:
            lines.append(f"  rebalance proposal : {proposal}")
        if self.crashed_shard is not None:
            lines.append(
                f"  shard crash        : {self.crashed_shard} "
                f"({self.regrouped} groups re-homed by the directory)"
            )
        lines.append(
            f"  directory version  : {self.directory_version}"
        )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


# -- runtimes ----------------------------------------------------------------


class _ShardRuntime:
    """Pumps one :class:`ShardHost` over one network endpoint."""

    def __init__(self, host: ShardHost, endpoint, config: FabricConfig) -> None:
        self.host = host
        self.endpoint = endpoint
        self.config = config
        self.alive = True
        self._tasks: list[asyncio.Task] = []

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._recv_loop()),
            loop.create_task(self._timer_loop()),
        ]

    async def _recv_loop(self) -> None:
        try:
            while True:
                envelope = await self.endpoint.recv()
                outgoing, _events = self.host.handle(envelope)
                for out in outgoing:
                    await self.endpoint.send(out)
        except (ConnectionClosed, asyncio.CancelledError):
            pass

    async def _timer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        last_heartbeat = loop.time()
        try:
            while True:
                await asyncio.sleep(self.config.tick_interval)
                for out in self.host.tick_all():
                    await self.endpoint.send(out)
                if (loop.time() - last_heartbeat
                        >= self.config.heartbeat_interval):
                    last_heartbeat = loop.time()
                    for out in self.host.heartbeats():
                        await self.endpoint.send(out)
        except (ConnectionClosed, asyncio.CancelledError):
            pass

    async def crash(self) -> None:
        """Power-cut the host: tasks die, endpoint detaches, disk drops
        its unsynced tail (with ``fsync_every=1`` there is none)."""
        self.alive = False
        await self._cancel()
        await self.endpoint.close()
        self.host.disk.crash(keep="none")

    async def stop(self) -> None:
        await self._cancel()
        if self.alive:
            await self.endpoint.close()

    async def _cancel(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []


class _MemberRuntime:
    """Drives one :class:`FabricMember` with join/leave intent, a
    retransmission timer, and a liveness watchdog."""

    def __init__(
        self, fm: FabricMember, endpoint, config: FabricConfig
    ) -> None:
        self.fm = fm
        self.endpoint = endpoint
        self.config = config
        self.desired = False
        self.pending_leave = False
        self.last_heard = 0.0
        self.last_attempt = 0.0
        self.joined_at: float | None = None
        #: Application payloads accepted this run (cross-group audit).
        self.received: list[bytes] = []
        self._tasks: list[asyncio.Task] = []

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._recv_loop()),
            loop.create_task(self._drive_loop()),
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        await self.endpoint.close()

    async def _send_all(self, frames: list[Envelope]) -> None:
        for frame in frames:
            await self.endpoint.send(frame)

    # -- intent --------------------------------------------------------------

    async def want_join(self) -> None:
        self.desired = True
        self.pending_leave = False
        if self.fm.state is MemberState.NOT_CONNECTED:
            await self._begin_join()

    async def want_leave(self) -> None:
        if self.fm.connected:
            self.desired = False
            await self.endpoint.send(self.fm.start_leave())
        elif self.fm.state is MemberState.WAITING_FOR_KEY and self.desired:
            # Mid-handshake: finish the join, then leave — abandoning a
            # half-open attempt would strand leader-side session state.
            self.pending_leave = True
        else:
            self.desired = False

    async def _begin_join(self) -> None:
        loop = asyncio.get_running_loop()
        self.last_attempt = loop.time()
        try:
            await self._send_all(self.fm.start_join())
        except StateError:
            pass

    # -- loops ---------------------------------------------------------------

    async def _recv_loop(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                envelope = await self.endpoint.recv()
                self.last_heard = loop.time()
                outgoing, events = self.fm.handle(envelope)
                await self._send_all(outgoing)
                for event in events:
                    if isinstance(event, Joined):
                        self.joined_at = loop.time()
                        if self.pending_leave:
                            self.pending_leave = False
                            self.desired = False
                            await self.endpoint.send(self.fm.start_leave())
                    elif isinstance(event, AppMessage):
                        self.received.append(event.payload)
        except (ConnectionClosed, asyncio.CancelledError):
            pass

    async def _drive_loop(self) -> None:
        loop = asyncio.get_running_loop()
        policy = self.config.retry_policy()
        interval = policy.delay(0)
        try:
            while True:
                await asyncio.sleep(interval)
                if not self.desired:
                    continue
                now = loop.time()
                state = self.fm.state
                if state is MemberState.NOT_CONNECTED:
                    await self._begin_join()
                elif state is MemberState.WAITING_FOR_KEY:
                    if now - self.last_attempt >= interval:
                        self.last_attempt = now
                        await self._send_all(self.fm.retransmit_last())
                elif now - self.last_heard > self.config.watchdog_timeout:
                    # Connected but silent past the liveness horizon:
                    # assume our leader-side session is gone (crash,
                    # migration) and re-authenticate from scratch.
                    self.fm.reset_for_rejoin()
                    self.last_heard = now
                    await self._begin_join()
        except (ConnectionClosed, asyncio.CancelledError):
            pass


# -- the soak ----------------------------------------------------------------


async def _run_fabric(
    config: FabricConfig, telemetry: EventBus | None
) -> FabricReport:
    loop = asyncio.get_running_loop()
    rng = DeterministicRandom(config.seed)
    registry = MetricsRegistry()
    violations: list[str] = []
    notes: list[str] = []

    # Always run over a live bus: the isolation assertions count
    # rejections *as observed in telemetry*, not via side channels.
    bus = telemetry if telemetry is not None else EventBus()
    bus.set_clock(LoopClock(loop))

    counts = {
        "foreign_rejected": 0,
        "cross_rejected": 0,
        "redirects": 0,
        "shard_failures": 0,
    }
    evil_frames: set[str] = set()

    def observe(record) -> None:
        event = record.event
        if isinstance(event, ForeignGroupRejected):
            counts["foreign_rejected"] += 1
        elif isinstance(event, GroupRedirected):
            counts["redirects"] += 1
        elif isinstance(event, ShardFailed):
            counts["shard_failures"] += 1
        elif getattr(event, "frame", None) in evil_frames:
            # Any rejection family will do (integrity for the foreign
            # seal, state for a non-member sender) — what matters is
            # that the forged frame's id shows up rejected at all.
            counts["cross_rejected"] += 1

    bus.subscribe(observe)

    # -- topology ------------------------------------------------------------

    shard_ids = [f"shard-{i}" for i in range(config.n_shards)]
    group_ids = [f"grp-{i:02d}" for i in range(config.n_groups)]
    fabric = GroupDirectory(
        shard_ids, vnodes=config.vnodes,
        rng=rng.fork("directory"), telemetry=bus,
    )

    net = MemoryNetwork(telemetry=bus)
    adversary = Adversary(telemetry=bus)
    net.attach_adversary(adversary)
    plan = FaultPlan(seed=config.seed)
    if config.loss_window is not None:
        plan.loss(*config.loss_window, drop_rate=config.drop_rate,
                  duplicate_rate=config.duplicate_rate)
    if config.delay_window is not None:
        plan.delay(*config.delay_window, min_hold=0.05,
                   max_hold=config.max_hold, delay_rate=config.delay_rate)
    adversary.set_policy(plan.as_policy(loop.time, telemetry=bus))

    leader_config = LeaderConfig(
        rekey_policy=RekeyPolicy.ON_JOIN | RekeyPolicy.ON_LEAVE,
    )
    shards: dict[str, _ShardRuntime] = {}
    for shard_id in shard_ids:
        disk = SimDisk(rng=rng.fork(f"disk-{shard_id}"))
        host = ShardHost(
            shard_id, disk,
            rng=rng.fork(f"host-{shard_id}"),
            clock=LoopClock(loop),
            telemetry=bus,
            fsync_every=config.journal_fsync_every,
        )
        endpoint = await net.attach(shard_id)
        shards[shard_id] = _ShardRuntime(host, endpoint, config)

    users: dict[str, UserDirectory] = {}
    members: dict[str, dict[str, _MemberRuntime]] = {}
    for group_id in group_ids:
        record = fabric.create_group(group_id)
        directory = UserDirectory()
        users[group_id] = directory
        members[group_id] = {}
        for j in range(config.members_per_group):
            uid = f"{group_id}.u{j}"
            creds = directory.register_password(uid, f"pw-{uid}")
            fm = FabricMember(
                creds, group_id, fabric,
                rng=rng.fork(uid), telemetry=bus,
            )
            endpoint = await net.attach(uid)
            members[group_id][uid] = _MemberRuntime(fm, endpoint, config)
        shards[record.shard_id].host.host_group(
            group_id, directory,
            storage_key=record.storage_key,
            config=leader_config,
        )

    for runtime in shards.values():
        runtime.start()
    for group in members.values():
        for runtime in group.values():
            runtime.start()

    def hosting(group_id: str):
        """The live (host, leader) currently serving a group, or None."""
        shard_id = fabric.record(group_id).shard_id
        runtime = shards[shard_id]
        if not runtime.alive or not runtime.host.hosts(group_id):
            return None
        return runtime.host.leader(group_id)

    # -- continuous safety ---------------------------------------------------

    def sample_safety() -> None:
        for group_id, group in members.items():
            leader = hosting(group_id)
            if leader is None:
                continue
            in_session = set(leader.members)
            for uid, runtime in group.items():
                if not runtime.fm.connected or uid not in in_session:
                    # §5.4 is a property of one *live* session.  A member
                    # still holding a session with a previous incarnation
                    # of a migrated / re-homed group has no counterpart
                    # log at the current leader; it is about to be
                    # redirected into a fresh session, which will then be
                    # sampled.  (Mirrors the chaos soak, which samples
                    # against ``supervisor.active`` — the incarnation the
                    # session is actually with.)
                    continue
                violations.extend(_member_safety(
                    uid, group_id,
                    list(runtime.fm.protocol.admin_log),
                    leader.admin_send_log(uid),
                ))

    async def monitor() -> None:
        while True:
            await asyncio.sleep(config.monitor_interval)
            sample_safety()

    # -- workloads -----------------------------------------------------------

    churn_until = config.churn_horizon * config.duration

    async def churn(group_id: str) -> None:
        workload = ChurnWorkload(
            sorted(members[group_id]),
            join_rate=config.churn_join_rate,
            mean_session=config.churn_mean_session,
            seed=int.from_bytes(
                rng.fork(f"churn-{group_id}").random_bytes(4), "big"
            ),
        )
        for event in workload.events(churn_until):
            delay = event.time - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            runtime = members[group_id][event.user_id]
            if event.kind is WorkloadKind.JOIN:
                registry.counter("fabric_joins", group=group_id).incr()
                await runtime.want_join()
            elif event.kind is WorkloadKind.LEAVE:
                await runtime.want_leave()

    async def muster() -> None:
        """Bring every member (back) in after the churn horizon, so the
        end-of-run convergence check spans the whole fabric."""
        delay = churn_until + 1.0 - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        for group in members.values():
            for runtime in group.values():
                if not runtime.desired:
                    await runtime.want_join()

    app_sent = 0

    async def app_traffic() -> None:
        nonlocal app_sent
        round_no = 0
        while True:
            await asyncio.sleep(config.app_interval)
            round_no += 1
            for group_id, group in members.items():
                for uid, runtime in group.items():
                    if not runtime.fm.connected:
                        continue
                    payload = f"{group_id}|{uid}|r{round_no}".encode()
                    try:
                        await runtime.endpoint.send(
                            runtime.fm.seal_app(payload)
                        )
                    except StateError:
                        pass

    # -- the adversary: active cross-posting ---------------------------------

    cross_attempts = 0
    foreign_attempts = 0
    lifecycle_busy = asyncio.Lock()

    async def cross_poster() -> None:
        """Rewrap one group's sealed frame for another group's shard.

        Injected via ``deliver_raw`` (bypassing the fault policy), so
        every attempt reaches a shard and the report can demand
        attempts == rejections exactly.
        """
        nonlocal cross_attempts, foreign_attempts
        turn = 0
        while True:
            await asyncio.sleep(config.cross_post_interval)
            async with lifecycle_busy:
                turn += 1
                src = group_ids[turn % len(group_ids)]
                dst = group_ids[(turn + 1) % len(group_ids)]
                sender = next(
                    (
                        r for r in members[src].values()
                        if r.fm.connected and r.fm.protocol.has_group_key
                    ),
                    None,
                )
                leader = hosting(dst)
                if sender is None or leader is None:
                    continue
                # A sealed frame from src's key space, readdressed to
                # dst's leader: the demux routes it, dst's key kills it.
                legit = sender.fm.protocol.seal_app(
                    f"LEAK|{src}|{turn}".encode()
                )
                forged = Envelope(
                    legit.label, legit.sender, dst, legit.body
                )
                evil_frames.add(frame_id(forged))
                cross_attempts += 1
                await net.deliver_raw(wrap_group(
                    dst, forged, fabric.record(dst).shard_id
                ))
                # And a frame scoped to a group id nobody hosts.
                phantom = wrap_group(
                    "grp-phantom", legit, fabric.record(dst).shard_id
                )
                foreign_attempts += 1
                await net.deliver_raw(phantom)

    # -- fabric lifecycle events ---------------------------------------------

    migrations: list[dict] = []
    migration_downtime: float | None = None
    rebalance_lines: list[str] = []
    crashed_shard: str | None = None
    regrouped = 0

    async def do_migration(group_id: str, kind: str) -> dict | None:
        source_id = fabric.record(group_id).shard_id
        source = shards[source_id]
        target_id = min(
            (s for s in fabric.shard_ids if s != source_id),
            key=lambda s: (len(fabric.groups_on(s)), s),
        )
        target = shards[target_id]
        if not (source.alive and target.alive):
            return None
        _leader, report = migrate_group(
            fabric, source.host, target.host, group_id,
            users[group_id],
            config=leader_config,
            rng=rng.fork(f"migrate-{group_id}"),
            telemetry=bus,
        )
        entry = {
            "group": group_id,
            "source": report.source,
            "target": report.target,
            "record_seq": report.record_seq,
            "old_fingerprint": report.old_fingerprint,
            "kind": kind,
        }
        migrations.append(entry)
        return entry

    async def wait_group_converged(group_id: str, timeout: float) -> bool:
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            leader = hosting(group_id)
            if leader is not None:
                fingerprint = leader.group_key_fingerprint
                wanted = [
                    r for r in members[group_id].values() if r.desired
                ]
                if wanted and all(
                    r.fm.connected
                    and r.fm.protocol.group_key_fingerprint == fingerprint
                    for r in wanted
                ):
                    return True
            await asyncio.sleep(0.25)
        return False

    async def lifecycle() -> None:
        nonlocal migration_downtime, crashed_shard, regrouped
        events: list[tuple[float, str]] = []
        if config.migrate_at is not None:
            events.append((config.migrate_at, "migrate"))
        if config.rebalance_at is not None:
            events.append((config.rebalance_at, "rebalance"))
        if config.crash_shard_at is not None:
            events.append((config.crash_shard_at, "crash"))
        for at, kind in sorted(events):
            delay = at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            async with lifecycle_busy:
                if kind == "migrate":
                    # Deterministic choice: the first group on the most
                    # loaded shard (ties by shard id).
                    load = fabric.load()
                    busiest = max(
                        sorted(load), key=lambda s: (load[s], s)
                    )
                    group_id = fabric.groups_on(busiest)[0]
                    flip = loop.time()
                    moved = await do_migration(group_id, "explicit")
                    if moved and await wait_group_converged(
                        group_id, config.converge_timeout
                    ):
                        migration_downtime = loop.time() - flip
                elif kind == "rebalance":
                    # Publish join rates, then let the policy speak.
                    for group_id in group_ids:
                        joins = registry.counter(
                            "fabric_joins", group=group_id
                        ).value
                        registry.gauge(
                            "fabric_join_rate", group=group_id
                        ).set(joins / max(loop.time(), 1.0))
                    policy = RebalancePolicy(
                        min_gap=0.5, max_proposals=1,
                        rng=rng.fork("balancer"),
                    )
                    proposals = policy.propose(fabric, registry)
                    for proposal in proposals:
                        rebalance_lines.append(
                            f"{proposal.group_id}: {proposal.source} -> "
                            f"{proposal.target} ({proposal.reason})"
                        )
                        await do_migration(proposal.group_id, "rebalance")
                elif kind == "crash":
                    load = fabric.load()
                    victims = [
                        s for s in sorted(load) if shards[s].alive
                    ]
                    if len(victims) < 2:
                        continue
                    victim = max(victims, key=lambda s: (load[s], s))
                    crashed_shard = victim
                    runtime = shards[victim]
                    n_groups = len(runtime.host.groups)
                    keys = {
                        g: fabric.storage_key(g)
                        for g in runtime.host.groups
                    }
                    paths = {
                        g: runtime.host.journal_path(g)
                        for g in runtime.host.groups
                    }
                    await runtime.crash()
                    bus.emit(ShardFailed(victim, n_groups))
                    # Directory failover: entries re-point to survivors,
                    # then each group is re-hosted from its durable
                    # journal prefix.
                    moved = fabric.fail_shard(victim)
                    regrouped = len(moved)
                    runtime.host.disk.restart()
                    for group_id in moved:
                        data = runtime.host.disk.read(paths[group_id])
                        result = replay_records(data, keys[group_id])
                        new_home = shards[fabric.record(group_id).shard_id]
                        new_home.host.host_group(
                            group_id, users[group_id],
                            storage_key=keys[group_id],
                            config=leader_config,
                            state=rehost_cold(result.state),
                            start_seq=result.last_seq + 1,
                            rng=rng.fork(f"rehost-{group_id}"),
                        )

    tasks = [
        loop.create_task(monitor()),
        loop.create_task(app_traffic()),
        loop.create_task(cross_poster()),
        loop.create_task(muster()),
        loop.create_task(lifecycle()),
    ] + [
        loop.create_task(churn(group_id)) for group_id in group_ids
    ]

    await asyncio.sleep(config.duration - loop.time())
    # Stop the noise (workload + adversary); let recovery finish.
    for task in tasks[1:3]:
        task.cancel()

    # -- convergence ---------------------------------------------------------

    def converged_now() -> tuple[bool, int, int]:
        desired = 0
        good = 0
        for group_id, group in members.items():
            leader = hosting(group_id)
            fingerprint = (
                leader.group_key_fingerprint if leader else None
            )
            for uid, runtime in group.items():
                if not runtime.desired:
                    continue
                desired += 1
                if (
                    leader is not None
                    and runtime.fm.connected
                    and runtime.fm.protocol.group_key_fingerprint
                    == fingerprint
                    and leader.outbox_depth(uid) == 0
                ):
                    good += 1
        return good == desired, desired, good

    converge_time: float | None = None
    deadline = loop.time() + config.converge_timeout
    while loop.time() < deadline:
        done, _desired, _good = converged_now()
        if done:
            converge_time = loop.time()
            break
        await asyncio.sleep(0.25)
    converged, n_desired, n_converged = converged_now()
    sample_safety()
    if not converged:
        # Name the stragglers — a soak that fails to converge should say
        # exactly who is stuck and how.
        for group_id, group in sorted(members.items()):
            leader = hosting(group_id)
            for uid, runtime in sorted(group.items()):
                if not runtime.desired:
                    continue
                fp = runtime.fm.protocol.group_key_fingerprint
                want = leader.group_key_fingerprint if leader else None
                depth = leader.outbox_depth(uid) if leader else -1
                if (
                    leader is None or not runtime.fm.connected
                    or fp != want or depth != 0
                ):
                    notes.append(
                        f"stuck: {uid} state={runtime.fm.state.name} "
                        f"key={fp} want={want} outbox={depth} "
                        f"leader={'up' if leader else 'DOWN'}"
                    )

    for task in tasks:
        task.cancel()
    for task in tasks:
        try:
            await task
        except asyncio.CancelledError:
            pass

    # -- isolation audit -----------------------------------------------------

    app_delivered = 0
    cross_deliveries = 0
    rejoins = 0
    redirect_total = 0
    for group_id, group in members.items():
        for uid, runtime in group.items():
            rejoins += runtime.fm.rejoins
            redirect_total += runtime.fm.redirects
            for payload in runtime.received:
                parts = payload.split(b"|")
                if len(parts) != 3:
                    continue  # heartbeat beacons etc.
                app_delivered += 1
                if parts[0].decode() != group_id:
                    cross_deliveries += 1
                    violations.append(
                        f"{uid}: accepted cross-group payload "
                        f"{payload[:40]!r}"
                    )

    for group in members.values():
        for runtime in group.values():
            await runtime.stop()
    for runtime in shards.values():
        await runtime.stop()
    bus.unsubscribe(observe)

    if counts["cross_rejected"] != cross_attempts:
        violations.append(
            f"cross-post rejections {counts['cross_rejected']} != "
            f"attempts {cross_attempts} (a forged frame went unanswered)"
        )
    if counts["foreign_rejected"] != foreign_attempts:
        violations.append(
            f"phantom-group rejections {counts['foreign_rejected']} != "
            f"attempts {foreign_attempts}"
        )

    for shard_id, runtime in shards.items():
        stats = runtime.host.stats
        registry.counter("fabric_frames", shard=shard_id).incr(
            stats.frames_in
        )
        registry.counter("fabric_redirects", shard=shard_id).incr(
            stats.redirected
        )
    registry.gauge("fabric_directory_version").set(fabric.version)

    return FabricReport(
        seed=config.seed,
        duration=config.duration,
        n_groups=config.n_groups,
        n_shards=config.n_shards,
        n_members=config.n_groups * config.members_per_group,
        converged=converged,
        converge_time=converge_time,
        n_desired=n_desired,
        n_converged=n_converged,
        violations=sorted(set(violations)),
        cross_post_attempts=cross_attempts,
        cross_post_rejected=counts["cross_rejected"],
        foreign_post_attempts=foreign_attempts,
        foreign_post_rejected=counts["foreign_rejected"],
        cross_group_deliveries=cross_deliveries,
        app_delivered=app_delivered,
        redirects=counts["redirects"],
        rejoins=rejoins,
        migrations=migrations,
        migration_downtime=migration_downtime,
        rebalance_proposals=rebalance_lines,
        crashed_shard=crashed_shard,
        regrouped=regrouped,
        directory_version=fabric.version,
        placements=fabric.placements(),
        metrics=registry.snapshot(),
        notes=notes,
    )


def run_fabric_soak(
    config: FabricConfig | None = None,
    telemetry: EventBus | None = None,
) -> FabricReport:
    """Run one fabric soak deterministically on the virtual clock."""
    config = config if config is not None else FabricConfig.full()
    return run_virtual(_run_fabric(config, telemetry))
