"""The enclave fabric: many groups, sharded managers, one directory.

The paper's §7 programme ("replace the single leader by a distributed
set of group managers") continues here at the *service* level: a
directory places independent enclave groups onto a pool of shard
hosts, each shard runs many :class:`~repro.enclaves.itgm.leader.\
GroupLeader` instances behind one endpoint (journaled per group), and
groups migrate live between shards.  Every §5 safety property stays
per (user, leader, group); the scale harness re-asserts them
fabric-wide plus the new isolation property — no frame or key ever
crosses groups.

* :mod:`~repro.fabric.directory` — placement + versioned routing.
* :mod:`~repro.fabric.shard` — multi-group hosting and frame demux.
* :mod:`~repro.fabric.member` — a member that follows the directory.
* :mod:`~repro.fabric.migration` — live shard-to-shard group moves.
* :mod:`~repro.fabric.balancer` — metrics-driven rebalance proposals.
* :mod:`~repro.fabric.scale` — the seeded many-group soak harness.
"""

from repro.fabric.balancer import MigrationProposal, RebalancePolicy
from repro.fabric.directory import GroupDirectory, GroupRecord, HashRing, RouteResult
from repro.fabric.member import FabricMember
from repro.fabric.migration import (
    MigrationDemo,
    MigrationReport,
    migrate_group,
    rehost_cold,
    run_migration_demo,
)
from repro.fabric.scale import FabricConfig, FabricReport, run_fabric_soak
from repro.fabric.shard import ShardHost, ShardStats

__all__ = [
    "GroupDirectory",
    "GroupRecord",
    "HashRing",
    "RouteResult",
    "ShardHost",
    "ShardStats",
    "FabricMember",
    "MigrationDemo",
    "MigrationReport",
    "migrate_group",
    "rehost_cold",
    "run_migration_demo",
    "RebalancePolicy",
    "MigrationProposal",
    "FabricConfig",
    "FabricReport",
    "run_fabric_soak",
]
