"""Live migration: moving one group between shard hosts.

The move is quiesce → checkpoint → ship → flip → rejoin:

1. **Quiesce** — the source shard stops serving the group's traffic;
   members that try get a ``GROUP_REDIRECT``, never silence.
2. **Checkpoint** — the group's write-ahead journal is synced, so the
   durable log *is* the checkpoint (no separate snapshot format).
3. **Ship** — the sealed records travel to the target via the existing
   :mod:`repro.storage.shipping` machinery; the target replays them to
   a valid prefix and refuses to proceed unless that prefix reaches the
   shipped head (a migration must never lose committed mutations).
4. **Flip** — the directory entry moves to the target (version bump),
   the source keeps a redirect breadcrumb.
5. **Rejoin** — members re-authenticate via the *unchanged* §3.2
   protocol.  This is the same argument as leader failover: a migrated
   group looks, to its members, exactly like a leader that lost their
   sessions, and the protocol already recovers from that loudly.

Key hygiene across the move is structural, not best-effort:
:func:`rehost_cold` strips the group key (and every session) from the
shipped state before the target re-hosts it, so the first rejoin forces
a *fresh* group key at a higher epoch — the pre-move key can never be
reused after the move, and :func:`migrate_group` asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.enclaves.common import UserDirectory
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.exceptions import RecoveryError, StateError
from repro.fabric.directory import GroupDirectory
from repro.fabric.shard import ShardHost
from repro.storage.shipping import JournalFollower, JournalShipper
from repro.telemetry.events import (
    EventBus,
    GroupMigrated,
    MigrationAborted,
    MigrationStarted,
)


def rehost_cold(state: dict) -> dict:
    """A shipped leader snapshot, scrubbed for re-hosting elsewhere.

    Keeps the group's identity and **epoch counter** (so the epoch
    keeps increasing monotonically across the move) but drops:

    * the group key — the first member to rejoin triggers a rotation to
      a fresh key at ``epoch + 1``, so key material never crosses hosts;
    * all sessions and outboxes — per-member channel state (nonce
      chains, retransmission caches) is only meaningful to the exact
      process that held it; members re-authenticate instead.
    """
    cold = dict(state)
    cold["group_key"] = None
    cold["sessions"] = {}
    cold["outboxes"] = {}
    cold["last_rotation_was_eviction"] = False
    return cold


@dataclass(frozen=True)
class MigrationReport:
    """What one :func:`migrate_group` call did."""

    group_id: str
    source: str
    target: str
    #: Journal records shipped (base snapshot counts as one).
    shipped_records: int
    #: The journal seq at the moment of the move; the target's journal
    #: continues at ``record_seq + 1`` so the combined history is
    #: gap-free.
    record_seq: int
    #: Fingerprint of the group key *before* the move (None if the
    #: group never keyed).  Tests assert it never reappears after.
    old_fingerprint: str | None
    #: New directory version after the flip.
    directory_version: int


def migrate_group(
    fabric: GroupDirectory,
    source: ShardHost,
    target: ShardHost,
    group_id: str,
    users: UserDirectory,
    *,
    config: LeaderConfig | None = None,
    rng=None,
    telemetry: EventBus | None = None,
) -> tuple[GroupLeader, MigrationReport]:
    """Move ``group_id`` from ``source`` to ``target``.

    Returns the re-hosted leader and a :class:`MigrationReport`.
    Raises :class:`StateError` on bad topology (group not on source,
    already on target) and :class:`RecoveryError` if the shipped
    replica does not replay to the journal head — in which case nothing
    has been flipped and the source still serves the group after
    :meth:`~repro.fabric.shard.ShardHost.resume`.
    """
    if not source.hosts(group_id):
        raise StateError(
            f"group {group_id!r} is not hosted on {source.shard_id!r}"
        )
    if target.hosts(group_id):
        raise StateError(
            f"group {group_id!r} is already hosted on {target.shard_id!r}"
        )
    record = fabric.record(group_id)
    if record.shard_id != source.shard_id:
        raise StateError(
            f"directory places {group_id!r} on {record.shard_id!r}, "
            f"not {source.shard_id!r}"
        )

    old_leader = source.leader(group_id)
    old_fingerprint = old_leader.group_key_fingerprint
    journal = source.journal(group_id)

    # 1. Quiesce: traffic stops mutating the group from here on.
    source.quiesce(group_id)
    if telemetry:
        telemetry.emit(MigrationStarted(
            group_id, source.shard_id, target.shard_id
        ))
    try:
        # 2. Checkpoint: the synced journal is the authoritative state.
        journal.sync()

        # 3. Ship: prime a follower with a base snapshot at the current
        #    head (plus nothing else — the group is quiesced, so the
        #    stream is exactly one record).
        shipper = JournalShipper(journal, telemetry=telemetry)
        follower = JournalFollower(target.shard_id, record.storage_key)
        try:
            shipper.add_follower(follower, leader=old_leader)
        finally:
            shipper.detach()

        result = follower.replay()
        if result.last_seq != journal.seq:
            raise RecoveryError(
                f"shipped replica for {group_id!r} replays to seq "
                f"{result.last_seq}, journal head is {journal.seq}; "
                "refusing to migrate on a lossy checkpoint"
            )

        # 4a. Re-host cold on the target, continuing the journal seq.
        leader = target.host_group(
            group_id,
            users,
            storage_key=record.storage_key,
            config=config if config is not None else old_leader.config,
            state=rehost_cold(result.state),
            start_seq=result.last_seq + 1,
            rng=rng,
        )
    except BaseException as exc:
        source.resume(group_id)
        if telemetry:
            telemetry.emit(MigrationAborted(
                group_id, source.shard_id, str(exc)
            ))
        raise

    # The structural no-reuse guarantee, asserted: the re-hosted group
    # has no key at all until a member rejoins and forces a rotation.
    assert leader.group_key_fingerprint is None
    assert not leader.members

    # 4b. Flip the directory, then retire the source's copy.
    flipped = fabric.move(group_id, target.shard_id)
    source.evict_group(group_id, target.shard_id)
    if telemetry:
        telemetry.emit(GroupMigrated(
            group_id, source.shard_id, target.shard_id, result.last_seq
        ))

    return leader, MigrationReport(
        group_id=group_id,
        source=source.shard_id,
        target=target.shard_id,
        shipped_records=follower.records,
        record_seq=result.last_seq,
        old_fingerprint=old_fingerprint,
        directory_version=flipped.version,
    )


# -- the scripted demo --------------------------------------------------------


@dataclass
class MigrationDemo:
    """What the scripted :func:`run_migration_demo` observed."""

    group_id: str
    source: str
    target: str
    members: list[str]
    report: MigrationReport
    epoch_before: int
    epoch_after: int
    fingerprint_before: str
    fingerprint_after: str
    redirects: int
    rejoins: int
    app_delivered_before: int
    app_delivered_after: int
    target_journal_seq: int
    frames_total: int
    lines: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.fingerprint_after != self.fingerprint_before
            and self.epoch_after > self.epoch_before
            and self.app_delivered_after > 0
            and self.target_journal_seq > self.report.record_seq
        )

    def format_report(self) -> str:
        out = [
            f"live migration demo — {self.group_id}: "
            f"{self.source} -> {self.target}",
        ]
        out += [f"  {line}" for line in self.lines]
        out.append(
            "  verdict            : "
            + ("OK — fresh key, higher epoch, traffic resumed"
               if self.ok else "FAILED")
        )
        return "\n".join(out)


def run_migration_demo(seed: int = 0) -> MigrationDemo:
    """Drive one complete migration over the deterministic sync pump.

    Two shards, one group, three members: join, chat, migrate, then let
    every member discover the move through a ``GROUP_REDIRECT`` (never
    silence), rejoin via the unchanged §3.2 handshake, and chat again
    under a *fresh* group key at a higher epoch.
    """
    from repro.crypto.rng import DeterministicRandom
    from repro.enclaves.common import AppMessage
    from repro.enclaves.harness import SyncNetwork, wire
    from repro.fabric.member import FabricMember
    from repro.storage.simdisk import SimDisk

    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    users = UserDirectory()
    fabric = GroupDirectory(["shard-a", "shard-b"], rng=rng.fork("directory"))
    shards = {
        shard_id: ShardHost(
            shard_id, SimDisk(rng=rng.fork(f"disk-{shard_id}")),
            rng=rng.fork(shard_id),
        )
        for shard_id in ("shard-a", "shard-b")
    }
    for shard_id, host in shards.items():
        wire(net, shard_id, host)

    group_id = "grp-demo"
    record = fabric.create_group(group_id)
    source = shards[record.shard_id]
    target = shards[
        "shard-b" if record.shard_id == "shard-a" else "shard-a"
    ]
    source.host_group(group_id, users, storage_key=record.storage_key)

    member_ids = ["alice", "bob", "carol"]
    members: dict[str, FabricMember] = {}
    for uid in member_ids:
        creds = users.register_password(uid, f"{uid}-pw")
        fm = FabricMember(creds, group_id, fabric, rng=rng.fork(uid))
        members[uid] = fm
        wire(net, uid, fm)
        net.post_all(fm.start_join())
        net.run()

    def app_count(uid: str) -> int:
        return len(net.events_of(uid, AppMessage))

    net.post(members["alice"].seal_app(b"hello from " + record.shard_id.encode()))
    net.run()
    app_before = sum(app_count(uid) for uid in member_ids)

    leader_before = source.leader(group_id)
    epoch_before = leader_before.group_epoch
    fingerprint_before = leader_before.group_key_fingerprint
    assert fingerprint_before is not None

    lines = [
        f"joined             : {leader_before.members} "
        f"on {source.shard_id}",
        f"group key          : {fingerprint_before} "
        f"(epoch {epoch_before})",
        f"app chat           : {app_before} deliveries before the move",
    ]

    leader, report = migrate_group(
        fabric, source, target, group_id, users, rng=rng.fork("rehost"),
    )
    lines.append(
        f"journal shipped    : {report.shipped_records} record(s) "
        f"to seq {report.record_seq}; directory v{report.directory_version}"
    )
    lines.append(
        "re-hosted cold     : no key, no sessions "
        "(old key can never be reused)"
    )

    # Every member still routes at the source; the next frame each sends
    # is answered with a redirect, which triggers rejoin at the target.
    for uid in member_ids:
        try:
            net.post(members[uid].seal_app(f"poke from {uid}".encode()))
        except StateError:  # already learned and mid-rejoin
            pass
        net.run()

    epoch_after = leader.group_epoch
    fingerprint_after = leader.group_key_fingerprint
    assert fingerprint_after is not None
    redirects = sum(m.redirects for m in members.values())
    rejoins = sum(m.rejoins for m in members.values())
    lines.append(
        f"redirected + rejoin: {redirects} redirect(s), "
        f"{rejoins} rejoin(s) via unchanged §3.2 handshakes"
    )
    lines.append(
        f"fresh group key    : {fingerprint_after} (epoch {epoch_after}) "
        f"on {target.shard_id}"
    )

    net.post(members["alice"].seal_app(b"hello from " + target.shard_id.encode()))
    net.run()
    app_after = sum(app_count(uid) for uid in member_ids) - app_before
    lines.append(
        f"app chat           : {app_after} deliveries after the move"
    )
    lines.append(
        f"target journal     : continued at seq "
        f"{target.journal(group_id).seq} (> shipped head "
        f"{report.record_seq}, gap-free)"
    )

    return MigrationDemo(
        group_id=group_id,
        source=report.source,
        target=report.target,
        members=sorted(members),
        report=report,
        epoch_before=epoch_before,
        epoch_after=epoch_after,
        fingerprint_before=fingerprint_before,
        fingerprint_after=fingerprint_after,
        redirects=redirects,
        rejoins=rejoins,
        app_delivered_before=app_before,
        app_delivered_after=app_after,
        target_journal_seq=target.journal(group_id).seq,
        frames_total=len(net.wire_log),
        lines=lines,
    )
