"""The group directory: placement and versioned routing.

The directory is the fabric's control plane.  It owns the mapping
``group id -> shard`` (placed by consistent hashing so shard arrivals
and departures move O(groups/shards) entries, not everything), a
monotonically increasing **routing version**, and the per-group storage
keys under which each group's journal is sealed.

Routing is *versioned* so staleness is always loud: a member caches the
version it last routed with, and a :meth:`GroupDirectory.lookup` against
a newer entry comes back with ``redirected=True`` and the previous
shard — never a silent failure.  The wire-level counterpart is the
shard's ``GROUP_REDIRECT`` frame (:mod:`repro.fabric.shard`).

The directory is deliberately a trusted, in-process component, like the
user registry: the paper's trust model already requires an honest
management plane (§6), and nothing here handles member secrets — the
storage keys it holds are operator material, not protocol keys.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.keys import KEY_LEN, KeyMaterial
from repro.crypto.rng import DeterministicRandom, RandomSource, SystemRandom
from repro.exceptions import StateError
from repro.telemetry.events import DirectoryUpdated, EventBus


class HashRing:
    """Consistent hashing with virtual nodes.

    Each node is hashed at ``vnodes`` points on a 2^64 ring; a key maps
    to the first virtual node clockwise from its own hash.  Placement
    is a pure function of the node set — no RNG — so every component
    that can see the directory computes identical placements.
    """

    def __init__(self, nodes: tuple[str, ...] = (), *, vnodes: int = 32) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.sha256(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise StateError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            self._points.append((self._hash(f"{node}#{i}"), node))
        self._points.sort()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise StateError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def locate(self, key: str, *, exclude: frozenset[str] = frozenset()) -> str:
        """The node owning ``key`` (skipping ``exclude``, e.g. draining
        shards).  Raises :class:`StateError` when no node is eligible."""
        candidates = [(h, n) for h, n in self._points if n not in exclude]
        if not candidates:
            raise StateError("no eligible node on the ring")
        target = self._hash(key)
        for point, node in candidates:
            if point >= target:
                return node
        return candidates[0][1]  # wrap around


@dataclass(frozen=True)
class GroupRecord:
    """One directory entry: where a group lives and since which version."""

    group_id: str
    shard_id: str
    version: int          # directory version at the entry's last change
    storage_key: KeyMaterial


@dataclass(frozen=True)
class RouteResult:
    """Answer to one routing lookup.

    ``redirected`` is true when the caller routed with a stale cached
    version: the entry moved since, and ``previous`` names the shard
    the caller probably talked to — the redirect, spelled out.
    """

    group_id: str
    shard_id: str
    version: int
    redirected: bool = False
    previous: str | None = None


class GroupDirectory:
    """create / lookup / drain / delete over a shard pool."""

    def __init__(
        self,
        shard_ids: list[str],
        *,
        vnodes: int = 32,
        rng: RandomSource | None = None,
        telemetry: EventBus | None = None,
    ) -> None:
        if not shard_ids:
            raise ValueError("shard pool must not be empty")
        self.ring = HashRing(tuple(shard_ids), vnodes=vnodes)
        self._rng = rng if rng is not None else SystemRandom()
        self._telemetry = telemetry
        self.version = 0
        self._records: dict[str, GroupRecord] = {}
        self.draining: set[str] = set()
        self.failed: set[str] = set()

    # -- internals ----------------------------------------------------------

    def _bump(self, group_id: str, shard_id: str, change: str) -> None:
        self.version += 1
        if self._telemetry:
            self._telemetry.emit(DirectoryUpdated(
                self.version, group_id, shard_id, change
            ))

    def _ineligible(self) -> frozenset[str]:
        return frozenset(self.draining | self.failed)

    def _storage_key(self, group_id: str) -> KeyMaterial:
        rng = (
            self._rng.fork(f"storage-{group_id}")
            if isinstance(self._rng, DeterministicRandom)
            else self._rng
        )
        return KeyMaterial(rng.key_material(KEY_LEN))

    # -- the service API ----------------------------------------------------

    @property
    def shard_ids(self) -> list[str]:
        """Shards currently serving (ring minus failed)."""
        return [s for s in self.ring.nodes if s not in self.failed]

    def create_group(self, group_id: str) -> GroupRecord:
        """Place a new group on the ring and mint its storage key."""
        if group_id in self._records:
            raise StateError(f"group {group_id!r} already exists")
        shard_id = self.ring.locate(group_id, exclude=self._ineligible())
        self._bump(group_id, shard_id, "create")
        record = GroupRecord(
            group_id, shard_id, self.version, self._storage_key(group_id)
        )
        self._records[group_id] = record
        return record

    def lookup(
        self, group_id: str, known_version: int | None = None
    ) -> RouteResult:
        """Route a group; loud on unknown groups, redirect on staleness.

        ``known_version`` is the directory version the caller last
        routed this group with.  If the entry changed since, the result
        carries ``redirected=True`` plus the shard the caller knew —
        a stale route is *answered*, never silently dropped.
        """
        record = self._records.get(group_id)
        if record is None:
            raise StateError(f"unknown group {group_id!r}")
        redirected = (
            known_version is not None and known_version < record.version
        )
        return RouteResult(
            group_id=group_id,
            shard_id=record.shard_id,
            version=record.version,
            redirected=redirected,
            previous=None,  # filled by move-aware callers via history
        )

    def record(self, group_id: str) -> GroupRecord:
        record = self._records.get(group_id)
        if record is None:
            raise StateError(f"unknown group {group_id!r}")
        return record

    def storage_key(self, group_id: str) -> KeyMaterial:
        return self.record(group_id).storage_key

    def move(self, group_id: str, target_shard: str) -> GroupRecord:
        """Flip a group's entry to ``target_shard`` (migration commit)."""
        old = self.record(group_id)
        if target_shard not in self.ring.nodes:
            raise StateError(f"unknown shard {target_shard!r}")
        if target_shard in self.failed:
            raise StateError(f"shard {target_shard!r} has failed")
        if old.shard_id == target_shard:
            raise StateError(
                f"group {group_id!r} already on {target_shard!r}"
            )
        self._bump(group_id, target_shard, "move")
        record = GroupRecord(
            group_id, target_shard, self.version, old.storage_key
        )
        self._records[group_id] = record
        return record

    def drain(self, shard_id: str) -> tuple[str, ...]:
        """Mark a shard draining; returns the groups to migrate off it.

        A draining shard keeps serving its current groups (migration
        moves them one by one) but receives no new placements.
        """
        if shard_id not in self.ring.nodes:
            raise StateError(f"unknown shard {shard_id!r}")
        self.draining.add(shard_id)
        return self.groups_on(shard_id)

    def delete(self, group_id: str) -> None:
        """Retire a group; its routing entry and storage key are gone."""
        record = self.record(group_id)
        del self._records[group_id]
        self._bump(group_id, record.shard_id, "delete")

    def fail_shard(self, shard_id: str) -> tuple[str, ...]:
        """Mark a shard dead and re-place its groups on the survivors.

        Returns the affected groups, already re-pointed in the routing
        table (directory failover); the caller re-hosts their state
        from the journals and members follow the new routes.
        """
        if shard_id not in self.ring.nodes:
            raise StateError(f"unknown shard {shard_id!r}")
        self.failed.add(shard_id)
        moved = self.groups_on(shard_id)
        for group_id in moved:
            old = self._records[group_id]
            new_shard = self.ring.locate(
                group_id, exclude=self._ineligible()
            )
            self._bump(group_id, new_shard, "fail")
            self._records[group_id] = GroupRecord(
                group_id, new_shard, self.version, old.storage_key
            )
        return moved

    def add_shard(self, shard_id: str) -> None:
        """Grow the pool (existing placements stay where they are)."""
        self.ring.add(shard_id)

    # -- introspection -------------------------------------------------------

    def placements(self) -> dict[str, str]:
        """``group id -> shard id`` for every known group."""
        return {g: r.shard_id for g, r in sorted(self._records.items())}

    def groups_on(self, shard_id: str) -> tuple[str, ...]:
        return tuple(sorted(
            g for g, r in self._records.items() if r.shard_id == shard_id
        ))

    def load(self) -> dict[str, int]:
        """Groups per serving shard (the balancer's primary signal)."""
        counts = {s: 0 for s in self.shard_ids}
        for record in self._records.values():
            if record.shard_id in counts:
                counts[record.shard_id] += 1
        return counts
