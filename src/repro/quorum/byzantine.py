"""Seeded Byzantine fault family: what a compromised leader can do.

Each fault class models one concrete misbehaviour of a *compromised
group manager* (the party the paper must trust — §6) and strikes two
stacks with it:

* the **quorum stack** (:class:`~repro.quorum.replicas.QuorumLeaderSet`
  with certificate-verifying members), where every fault is meant to be
  detected, attributed, and survived, and
* the **single-leader stack** (a plain :class:`GroupLeader` with the
  PR-3 journal/shipping machinery and trusting members), the paper's
  own architecture, where each fault demonstrably violates a §5.4-style
  guarantee.

The four faults, and the lever each one pulls:

===================  ====================================================
``equivocation``     The primary owns the storage key, so it *forges*
                     sealed snapshot records and ships a different fork
                     to different witnesses, harvesting attestations for
                     two conflicting statements; members are then shown
                     two different "certified" group keys for one epoch.
``silence``          The primary stays perfectly responsive to most of
                     the group while dropping every frame to chosen
                     victims (selective silence — indistinguishable
                     from loss to the victim, invisible to everyone
                     else).
``withholding``      The primary rotates the group key and journals the
                     rotation — witnesses attest it — but never sends
                     the key to anyone: the group is cryptographically
                     moved forward while every member is left behind.
``corruption``       The shipping stream to a standby is bit-flipped in
                     flight.  The single-leader stack's ``promote``
                     silently replays the valid prefix (rolling members
                     back); a quorum witness refuses to attest a replica
                     it cannot replay, and promotion skips it.
===================  ====================================================

Everything is deterministic given a seed: scenario builders fork one
:class:`~repro.crypto.rng.DeterministicRandom` per party, and the fault
classes draw forged keys from their own seeded source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import KEY_LEN, GroupKey, KeyMaterial
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import Credentials, UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.enclaves.itgm.admin import CertifiedPayload, NewGroupKeyPayload
from repro.enclaves.itgm.failover import ManagerSet
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.member import MemberProtocol
from repro.enclaves.itgm.persistence import snapshot_leader
from repro.quorum.attestation import Attestation, QuorumCertificate
from repro.quorum.member import QuorumMemberProtocol
from repro.quorum.replicas import QuorumGroupLeader, QuorumLeaderSet
from repro.storage.journal import Journal, seal_record
from repro.storage.shipping import JournalFollower, JournalShipper, promote
from repro.storage.simdisk import SimDisk
from repro.telemetry.events import EventBus

#: The fault modes, in the order the soak matrix runs them.
FAULT_NAMES = ("equivocation", "silence", "withholding", "corruption")


# ---------------------------------------------------------------------------
# Scenario containers
# ---------------------------------------------------------------------------

@dataclass
class QuorumScenario:
    """A wired quorum stack: replica set + certificate-verifying members."""

    net: SyncNetwork
    directory: UserDirectory
    creds: dict[str, Credentials]
    qs: QuorumLeaderSet
    members: dict[str, QuorumMemberProtocol]

    @property
    def leader_addr(self) -> str:
        return self.qs.session_id

    @property
    def leader(self) -> QuorumGroupLeader:
        """The set's *current* primary (re-resolved after view changes)."""
        return self.qs.leader


@dataclass
class SingleScenario:
    """The vulnerable baseline: one trusted leader, trusting members.

    Carries the PR-3 durability machinery (journal, shipper, one warm
    standby follower) so the corruption fault can demonstrate the
    silent-rollback promotion the quorum layer closes.
    """

    net: SyncNetwork
    directory: UserDirectory
    creds: dict[str, Credentials]
    managers: ManagerSet
    journal: Journal
    shipper: JournalShipper
    follower: JournalFollower
    members: dict[str, MemberProtocol]
    disk: SimDisk = field(default_factory=SimDisk)
    leader_addr: str = "mgr-0"

    @property
    def leader(self) -> GroupLeader:
        return self.managers.primary


def build_quorum_scenario(
    member_ids: tuple[str, ...] | list[str],
    seed: int,
    telemetry: EventBus | None = None,
) -> QuorumScenario:
    """n = 4 / f = 1 replica set with every member joined and keyed."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork(telemetry=telemetry)
    directory = UserDirectory()
    creds = {
        uid: directory.register_password(uid, f"pw-{uid}")
        for uid in member_ids
    }
    qs = QuorumLeaderSet(
        directory, rng=rng.fork("quorum"), telemetry=telemetry
    )
    wire(net, qs.session_id, qs.leader)
    members = {
        uid: qs.member(creds[uid], rng=rng.fork(uid), telemetry=telemetry)
        for uid in member_ids
    }
    for uid, member in members.items():
        wire(net, uid, member)
        net.post(member.start_join())
        net.run()
    return QuorumScenario(net, directory, creds, qs, members)


def build_single_scenario(
    member_ids: tuple[str, ...] | list[str],
    seed: int,
    telemetry: EventBus | None = None,
) -> SingleScenario:
    """Single leader + journal + one shipping follower, members joined."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork(telemetry=telemetry)
    directory = UserDirectory()
    creds = {
        uid: directory.register_password(uid, f"pw-{uid}")
        for uid in member_ids
    }
    managers = ManagerSet.create(
        2, directory, config=LeaderConfig(), rng=rng.fork("mgrs")
    )
    leader = managers.primary
    for manager_id, manager in managers.managers.items():
        wire(net, manager_id, manager)
    disk = SimDisk()
    storage_key = KeyMaterial(rng.fork("storage").key_material(KEY_LEN))
    journal = Journal(
        disk, "single/journal.log", storage_key,
        node=managers.primary_id, telemetry=telemetry,
    )
    journal.attach(leader)
    shipper = JournalShipper(journal, telemetry=telemetry)
    follower = JournalFollower("standby", storage_key)
    shipper.add_follower(follower, leader=leader)
    members = {
        uid: MemberProtocol(
            creds[uid], managers.primary_id, rng.fork(uid),
            telemetry=telemetry,
        )
        for uid in member_ids
    }
    for uid, member in members.items():
        wire(net, uid, member)
        net.post(member.start_join())
        net.run()
    return SingleScenario(
        net=net, directory=directory, creds=creds, managers=managers,
        journal=journal, shipper=shipper, follower=follower,
        members=members, disk=disk, leader_addr=managers.primary_id,
    )


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _forged_key_record(
    journal: Journal, leader: GroupLeader, key: GroupKey,
    epoch: int, seq: int,
) -> bytes:
    """A sealed snapshot record claiming ``leader`` holds ``key``.

    This is the compromised primary's core power: it legitimately holds
    the storage key, so it can seal *any* state it likes as a perfectly
    authentic journal record.  The forgery starts from the real state
    (sessions, outboxes — everything members could cross-check) and
    swaps only the group key and epoch.
    """
    snapshot = snapshot_leader(leader)
    snapshot["group_key"] = key.material.hex()
    snapshot["group_epoch"] = epoch
    return seal_record(journal._cipher, seq, "snapshot", snapshot)


def _silence_interceptor(origin: str, victims: set[str]):
    """A :class:`SyncNetwork` interceptor dropping origin -> victim."""
    def interceptor(envelope):
        if envelope.sender == origin and envelope.recipient in victims:
            return []
        return None
    return interceptor


def _corrupting_receive(follower: JournalFollower) -> dict:
    """Wrap ``follower.receive`` so every shipped record is bit-flipped.

    The flip lands mid-record — inside the sealed body — so the CRC
    check fails at replay and truncates the stream there, which is the
    realistic torn/rotted-shipping shape (framing survives, content
    does not).  Returns a counter dict (``{"corrupted": n}``).
    """
    original = follower.receive
    counter = {"corrupted": 0}

    def receive(record: bytes, seq: int, kind: str) -> None:
        damaged = bytearray(record)
        damaged[len(damaged) // 2] ^= 0x40
        counter["corrupted"] += 1
        original(bytes(damaged), seq, kind)

    follower.receive = receive  # type: ignore[method-assign]
    return counter


# ---------------------------------------------------------------------------
# The faults
# ---------------------------------------------------------------------------

class ByzantineFault:
    """Base: one seeded misbehaviour, strikeable against either stack."""

    name = "byzantine"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = DeterministicRandom(seed)

    def strike_quorum(self, scenario: QuorumScenario) -> dict:
        raise NotImplementedError

    def strike_single(self, scenario: SingleScenario) -> dict:
        raise NotImplementedError


class EquivocatingPrimary(ByzantineFault):
    """Show half the group one new key, the other half another.

    Quorum stack: the primary forges two sealed snapshot records for
    one (invented, far-future) journal seq — fork A carries key ``K_a``,
    fork B key ``K_b``, both at epoch ``e + 1`` — ships fork A into one
    witness's follower and fork B into another's, harvests their
    attestations, adds its own double-signature, and delivers the two
    resulting "certificates" to disjoint member subsets over the real
    session channels.  Both certificates *verify* (each has f + 1 = 2
    distinct signers); the crime is only visible to an observer that
    sees both — which is exactly what certificate gossip provides.

    Single stack: the same split needs no forgery at all — the leader
    just sends different bare ``NewGroupKeyPayload``s to each subset,
    and trusting members apply them.
    """

    name = "equivocation"

    def strike_quorum(self, scenario: QuorumScenario) -> dict:
        qs = scenario.qs
        epoch = qs.leader.group_epoch + 1
        key_a = GroupKey(self.rng.fork("fork-a").key_material(KEY_LEN))
        key_b = GroupKey(self.rng.fork("fork-b").key_material(KEY_LEN))
        # An invented far-future seq: the primary controls its own
        # stream, so it can claim any position it likes.  Honest deltas
        # arriving afterwards then trail the forged offered head, which
        # is what later marks these witnesses' replicas as damaged.
        fork_seq = qs.journal.seq + 64
        record_a = _forged_key_record(
            qs.journal, qs.leader, key_a, epoch, fork_seq
        )
        record_b = _forged_key_record(
            qs.journal, qs.leader, key_b, epoch, fork_seq
        )
        witness_ids = sorted(qs.witnesses)
        dupe_a, dupe_b = witness_ids[0], witness_ids[1]
        qs.witnesses[dupe_a].follower.receive(record_a, fork_seq, "snapshot")
        qs.witnesses[dupe_b].follower.receive(record_b, fork_seq, "snapshot")
        att_a = qs.witnesses[dupe_a].attest(qs.session_id)
        att_b = qs.witnesses[dupe_b].attest(qs.session_id)
        primary_key = qs.keys[qs.primary_id]
        cert_a = QuorumCertificate((
            Attestation.sign(qs.primary_id, att_a.statement, primary_key),
            att_a,
        ))
        cert_b = QuorumCertificate((
            Attestation.sign(qs.primary_id, att_b.statement, primary_key),
            att_b,
        ))
        subset_a, subset_b = self._split(scenario.members)
        payload_a = CertifiedPayload(
            inner=NewGroupKeyPayload(key=key_a, epoch=epoch),
            certificate=cert_a.encode(),
        )
        payload_b = CertifiedPayload(
            inner=NewGroupKeyPayload(key=key_b, epoch=epoch),
            certificate=cert_b.encode(),
        )
        for uid in subset_a:
            scenario.net.post_all(qs.leader.send_admin_to(uid, payload_a))
        for uid in subset_b:
            scenario.net.post_all(qs.leader.send_admin_to(uid, payload_b))
        scenario.net.run()
        return {
            "epoch": epoch,
            "subset_a": subset_a, "fp_a": key_a.fingerprint(),
            "subset_b": subset_b, "fp_b": key_b.fingerprint(),
            "duped_witnesses": [dupe_a, dupe_b],
        }

    def strike_single(self, scenario: SingleScenario) -> dict:
        leader = scenario.leader
        epoch = leader.group_epoch + 1
        key_a = GroupKey(self.rng.fork("fork-a").key_material(KEY_LEN))
        key_b = GroupKey(self.rng.fork("fork-b").key_material(KEY_LEN))
        subset_a, subset_b = self._split(scenario.members)
        for uid in subset_a:
            scenario.net.post_all(leader.send_admin_to(
                uid, NewGroupKeyPayload(key=key_a, epoch=epoch)
            ))
        for uid in subset_b:
            scenario.net.post_all(leader.send_admin_to(
                uid, NewGroupKeyPayload(key=key_b, epoch=epoch)
            ))
        scenario.net.run()
        return {
            "epoch": epoch,
            "subset_a": subset_a, "fp_a": key_a.fingerprint(),
            "subset_b": subset_b, "fp_b": key_b.fingerprint(),
        }

    @staticmethod
    def _split(members: dict) -> tuple[list[str], list[str]]:
        uids = sorted(members)
        half = max(1, len(uids) // 2)
        return uids[:half], uids[half:]


class SelectiveSilencePrimary(ByzantineFault):
    """Starve one member of a rekey while serving everyone else.

    The leader's own machinery runs honestly — the fault is at the
    wire: every frame from the leader to the victim is dropped.  On the
    quorum stack the rekey is certified and journaled, so the victim's
    lagging acked epoch shows up in :meth:`QuorumLeaderSet.audit`; on
    the single stack nothing watches, and the victim is simply left on
    the old key forever.  The interceptor stays installed after the
    strike — silence is a standing property of the compromised party,
    not a one-shot event — so healing requires actually replacing the
    primary, not just retransmitting.
    """

    name = "silence"

    def strike_quorum(self, scenario: QuorumScenario) -> dict:
        return self._strike(
            scenario.net, scenario.qs.leader,
            scenario.leader_addr, scenario.members,
        )

    def strike_single(self, scenario: SingleScenario) -> dict:
        return self._strike(
            scenario.net, scenario.leader,
            scenario.leader_addr, scenario.members,
        )

    def _strike(self, net, leader, leader_addr, members) -> dict:
        victim = sorted(members)[-1]
        net.set_interceptor(_silence_interceptor(leader_addr, {victim}))
        before = net.dropped
        net.post_all(leader.rekey_now())
        net.run()
        return {
            "victim": victim,
            "epoch": leader.group_epoch,
            "dropped": net.dropped - before,
        }


class KeyWithholdingPrimary(ByzantineFault):
    """Rotate the group key and tell no one.

    The primary calls its own rotation and checkpoint paths directly —
    the journal records the new key (and on the quorum stack the
    shipping stream carries it to every witness, whose attestations
    would certify it) — but no distribution payload is ever queued.
    Every member's installed epoch now trails the journal's certified
    epoch, which is precisely the symptom the audit watches for.  A
    single-leader deployment has no such cross-check: the members just
    wait for a key that never comes.
    """

    name = "withholding"

    def strike_quorum(self, scenario: QuorumScenario) -> dict:
        return self._strike(scenario.qs.leader)

    def strike_single(self, scenario: SingleScenario) -> dict:
        return self._strike(scenario.leader)

    @staticmethod
    def _strike(leader: GroupLeader) -> dict:
        leader._rotate_group_key()
        leader._checkpoint()
        return {
            "withheld_epoch": leader.group_epoch,
            "withheld_fp": leader.group_key_fingerprint,
        }


class CorruptingShipper(ByzantineFault):
    """Bit-flip the journal stream on its way to a standby.

    Strikes the *replication* path rather than the member protocol.
    Two rekeys ride the corrupted stream, then each stack faces a
    primary loss:

    * Single stack: ``promote`` accepts the damaged follower (its
      applied head matches what was shipped — nothing was *dropped*),
      replays the valid prefix, and silently re-hosts a leader from
      *before* the corrupted records: members are now ahead of their
      own group manager, the §5.4 agreement the journal was supposed
      to preserve.
    * Quorum stack: the damaged witness refuses to attest (its replay
      truncates), certification proceeds over the healthy witnesses,
      and the view change's promotion pass skips the damaged replica.
    """

    name = "corruption"

    def strike_quorum(self, scenario: QuorumScenario) -> dict:
        qs = scenario.qs
        # Damage the witness that promotion would otherwise try first
        # (candidates tie on applied seq and are taken in reverse-id
        # order), so the skip logic is actually exercised.
        target = sorted(qs.witnesses)[-1]
        counter = _corrupting_receive(qs.witnesses[target].follower)
        for _ in range(2):
            scenario.net.post_all(qs.leader.rekey_now())
            scenario.net.run()
        return {
            "target": target,
            "corrupted": counter["corrupted"],
            "refusals": qs.witnesses[target].refused,
        }

    def strike_single(self, scenario: SingleScenario) -> dict:
        counter = _corrupting_receive(scenario.follower)
        leader = scenario.leader
        for _ in range(2):
            scenario.net.post_all(leader.rekey_now())
            scenario.net.run()
        epoch_before = leader.group_epoch
        # The primary dies; the standby promotes from its (corrupted)
        # replica.  promote() only refuses *dropped* records, so the
        # truncated replay sails through and rolls the group back.
        scenario.managers.fail_primary()
        promoted = promote(scenario.follower, scenario.managers)
        wire(scenario.net, scenario.leader_addr, promoted)
        return {
            "target": scenario.follower.name,
            "corrupted": counter["corrupted"],
            "epoch_before_crash": epoch_before,
            "epoch_after_promotion": promoted.group_epoch,
        }


#: Fault name -> class, in matrix order.
FAULTS: dict[str, type[ByzantineFault]] = {
    cls.name: cls
    for cls in (
        EquivocatingPrimary,
        SelectiveSilencePrimary,
        KeyWithholdingPrimary,
        CorruptingShipper,
    )
}

__all__ = [
    "FAULTS",
    "FAULT_NAMES",
    "ByzantineFault",
    "CorruptingShipper",
    "EquivocatingPrimary",
    "KeyWithholdingPrimary",
    "QuorumScenario",
    "SelectiveSilencePrimary",
    "SingleScenario",
    "build_quorum_scenario",
    "build_single_scenario",
]
