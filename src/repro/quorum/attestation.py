"""Attestations, quorum certificates, and equivocation evidence.

The unit of trust is a :class:`MutationStatement`: one replica's claim
that, at journal sequence ``seq``, the group identified by
``session_id`` had epoch ``epoch``, member set ``member_digest`` and
group key ``key_fingerprint``.  A replica *attests* a statement by
MACing its canonical encoding under a per-replica attestation key; a
:class:`QuorumCertificate` is ``f + 1`` (or more) attestations from
distinct replicas over one identical statement.

Keys. The repository's crypto substrate is deliberately symmetric-only
(the paper's protocol is), so attestations are HMACs under per-replica
keys derived from a quorum root secret.  This is a documented stand-in
for digital signatures: verification requires the signing key, so a
certificate convinces exactly the parties provisioned with the replica
key set (the group's members), not third parties.  Every structural
property the quorum layer relies on — unforgeability by *other*
replicas, attributable double-signing — holds identically; only
public verifiability is lost, which nothing here needs.

Conflict semantics.  Two *valid* attestations conflict when they bind
the same ``(session_id, seq)`` to different statements (a forked
journal stream) or the same ``(session_id, epoch)`` to different key
fingerprints (key equivocation).  :class:`EquivocationEvidence` packages
two conflicting certificates plus the accused replica; it is
self-verifying given the key set, so a single honest observer can
convict.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.crypto.keys import KeyMaterial
from repro.crypto.mac import hmac_sha256, verify_hmac_sha256
from repro.exceptions import CodecError, QuorumError
from repro.wire.codec import (
    decode_fields,
    decode_str,
    encode_fields,
    encode_str,
)

#: Domain-separation label for attestation MACs: an attestation can
#: never be confused with any other HMAC in the system.
ATTESTATION_AD = b"repro-quorum-attestation-v1"

#: Domain-separation label for per-replica key derivation.
_KEY_DERIVE_AD = b"repro-quorum-replica-key-v1"


def member_set_digest(members: Iterable[str]) -> str:
    """Canonical digest of a member set (order-independent).

    16 hex digits of SHA-256 over the injectively encoded *sorted*
    member list — short enough to read in logs, long enough that a
    collision needs ~2^32 sets.
    """
    encoded = encode_fields(
        [encode_str(member) for member in sorted(members)]
    )
    return hashlib.sha256(encoded).hexdigest()[:16]


def derive_attestation_key(root: KeyMaterial, replica_id: str) -> KeyMaterial:
    """Derive one replica's attestation key from the quorum root secret."""
    return KeyMaterial(
        hmac_sha256(
            root.material, _KEY_DERIVE_AD + encode_str(replica_id)
        )
    )


@dataclass(frozen=True, slots=True)
class MutationStatement:
    """What one replica claims the group state was at one journal seq."""

    session_id: str
    seq: int
    epoch: int
    member_digest: str
    key_fingerprint: str  # "" before the first group key

    def encode(self) -> bytes:
        return encode_fields([
            encode_str(self.session_id),
            self.seq.to_bytes(8, "big", signed=True),
            self.epoch.to_bytes(8, "big", signed=True),
            encode_str(self.member_digest),
            encode_str(self.key_fingerprint),
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "MutationStatement":
        fields = decode_fields(data, expect=5)
        if len(fields[1]) != 8 or len(fields[2]) != 8:
            raise CodecError("malformed MutationStatement integers")
        return cls(
            session_id=decode_str(fields[0]),
            seq=int.from_bytes(fields[1], "big", signed=True),
            epoch=int.from_bytes(fields[2], "big", signed=True),
            member_digest=decode_str(fields[3]),
            key_fingerprint=decode_str(fields[4]),
        )

    def conflicts_with(self, other: "MutationStatement") -> bool:
        """True when the two statements cannot both describe one honest
        history: same journal position with different content (a forked
        stream), or one epoch bound to two different group keys."""
        if self.session_id != other.session_id:
            return False
        if self.seq == other.seq and self != other:
            return True
        return (
            self.epoch == other.epoch
            and self.key_fingerprint != other.key_fingerprint
        )


@dataclass(frozen=True, slots=True)
class Attestation:
    """One replica's MAC over one statement."""

    replica_id: str
    statement: MutationStatement
    mac: bytes

    @classmethod
    def sign(
        cls,
        replica_id: str,
        statement: MutationStatement,
        key: KeyMaterial,
    ) -> "Attestation":
        mac = hmac_sha256(
            key.material, ATTESTATION_AD + statement.encode()
        )
        return cls(replica_id=replica_id, statement=statement, mac=mac)

    def verify(self, key: KeyMaterial) -> bool:
        return verify_hmac_sha256(
            key.material, ATTESTATION_AD + self.statement.encode(), self.mac
        )

    def encode(self) -> bytes:
        return encode_fields([
            encode_str(self.replica_id),
            self.statement.encode(),
            self.mac,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "Attestation":
        replica_b, stmt_b, mac = decode_fields(data, expect=3)
        return cls(
            replica_id=decode_str(replica_b),
            statement=MutationStatement.from_bytes(stmt_b),
            mac=mac,
        )


@dataclass(frozen=True, slots=True)
class QuorumCertificate:
    """``f + 1`` (or more) attestations over one identical statement."""

    attestations: tuple[Attestation, ...]

    @property
    def statement(self) -> MutationStatement:
        if not self.attestations:
            raise QuorumError("empty certificate has no statement")
        return self.attestations[0].statement

    @property
    def signers(self) -> frozenset[str]:
        return frozenset(a.replica_id for a in self.attestations)

    def encode(self) -> bytes:
        return encode_fields([a.encode() for a in self.attestations])

    @classmethod
    def from_bytes(cls, data: bytes) -> "QuorumCertificate":
        try:
            fields = decode_fields(data)
            return cls(
                attestations=tuple(
                    Attestation.from_bytes(f) for f in fields
                )
            )
        except CodecError as exc:
            raise QuorumError(f"undecodable certificate: {exc}") from exc

    def verify(
        self,
        keys: Mapping[str, KeyMaterial],
        threshold: int,
        evicted: frozenset[str] | set[str] = frozenset(),
    ) -> MutationStatement:
        """Check the certificate; returns its statement.

        Requirements, each a distinct :class:`QuorumError`:

        * every attestation covers the *same* statement (a certificate
          mixing statements is malformed, not merely weak),
        * every signer is a known replica with a valid MAC,
        * at least ``threshold`` *distinct, non-evicted* signers — an
          evicted replica's attestation is skipped rather than fatal
          (honest certificates issued before its eviction legitimately
          carry its signature; it simply no longer counts), and
          duplicate attestations from one replica count once, so a
          single replica cannot pad its way past the threshold.
        """
        if not self.attestations:
            raise QuorumError("empty certificate")
        statement = self.attestations[0].statement
        distinct: set[str] = set()
        for attestation in self.attestations:
            if attestation.statement != statement:
                raise QuorumError(
                    "certificate mixes statements "
                    f"({attestation.replica_id} diverges)"
                )
            key = keys.get(attestation.replica_id)
            if key is None:
                raise QuorumError(
                    f"unknown replica {attestation.replica_id!r}"
                )
            if attestation.replica_id in evicted:
                continue
            if not attestation.verify(key):
                raise QuorumError(
                    f"bad attestation MAC from {attestation.replica_id!r}"
                )
            distinct.add(attestation.replica_id)
        if len(distinct) < threshold:
            raise QuorumError(
                f"{len(distinct)} distinct attestations < "
                f"threshold {threshold}"
            )
        return statement

    def attestation_by(self, replica_id: str) -> Attestation | None:
        for attestation in self.attestations:
            if attestation.replica_id == replica_id:
                return attestation
        return None


@dataclass(frozen=True, slots=True)
class EquivocationEvidence:
    """Two valid certificates over conflicting statements.

    ``accused`` is the replica the evidence convicts: a replica that
    signed both certificates (attributable double-signing — honest
    replicas never sign two conflicting statements), or, when the
    certificates share no signer, the *primary*: honest witnesses
    attest only what the primary's journal stream showed them, so
    disjoint certificates over conflicting statements mean the primary
    forked its own stream.  :func:`repro.formal.quorum_model` checks
    that this accusation rule never convicts an honest replica in any
    enumerable small world.
    """

    accused: str
    first: QuorumCertificate
    second: QuorumCertificate

    def encode(self) -> bytes:
        return encode_fields([
            encode_str(self.accused),
            self.first.encode(),
            self.second.encode(),
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "EquivocationEvidence":
        try:
            accused_b, first_b, second_b = decode_fields(data, expect=3)
        except CodecError as exc:
            raise QuorumError(f"undecodable evidence: {exc}") from exc
        return cls(
            accused=decode_str(accused_b),
            first=QuorumCertificate.from_bytes(first_b),
            second=QuorumCertificate.from_bytes(second_b),
        )

    def verify(
        self,
        keys: Mapping[str, KeyMaterial],
        threshold: int,
        primary_id: str,
    ) -> None:
        """Check that the evidence actually convicts ``accused``.

        Both certificates must verify, their statements must conflict,
        and the accusation must follow the rule above.  Raises
        :class:`QuorumError` otherwise — fabricated evidence must never
        trigger a view change.
        """
        first_stmt = self.first.verify(keys, threshold)
        second_stmt = self.second.verify(keys, threshold)
        if not first_stmt.conflicts_with(second_stmt):
            raise QuorumError("statements do not conflict")
        common = self.first.signers & self.second.signers
        if common:
            if self.accused not in common:
                raise QuorumError(
                    f"accused {self.accused!r} did not sign both "
                    f"certificates (double-signers: {sorted(common)})"
                )
        elif self.accused != primary_id:
            raise QuorumError(
                "disjoint certificates convict the stream source "
                f"{primary_id!r}, not {self.accused!r}"
            )


def build_evidence(
    first: QuorumCertificate,
    second: QuorumCertificate,
    primary_id: str,
) -> EquivocationEvidence:
    """Package two conflicting certificates, picking the accused."""
    common = sorted(first.signers & second.signers)
    accused = common[0] if common else primary_id
    return EquivocationEvidence(accused=accused, first=first, second=second)


__all__ = [
    "ATTESTATION_AD",
    "Attestation",
    "EquivocationEvidence",
    "MutationStatement",
    "QuorumCertificate",
    "build_evidence",
    "derive_attestation_key",
    "member_set_digest",
]
