"""Byzantine leader quorum: replicated, equivocation-detecting group
management with automatic view change.

The paper's improved §3.2 protocol tolerates compromised *members* but
still trusts a single leader (§7 names this as the main limit; the
crash-only manager sets of :mod:`repro.enclaves.itgm.failover` inherit
it).  This package builds the Byzantine half of the fault model: a
replica set of ``n = 3f + 1`` managers in which every membership
mutation — join, leave, rekey, close — is only *applied* by a member
when it carries a certificate of ``f + 1`` independent replica
attestations over the same ``(session, journal seq, epoch, member-set
digest, key fingerprint)`` statement.

It is deliberately a **certificate layer, not a consensus engine**: the
primary still drives the protocol exactly as before, witnesses co-sign
what the primary's journal shipping stream shows them, and members
verify the resulting certificate inside the existing sealed AdminMsg
channel.  What the layer buys:

* **Forgery resistance** — a primary acting alone cannot fabricate a
  mutation: every valid certificate contains at least one honest
  attestation, and honest replicas attest only states actually derived
  from the shipped journal (:mod:`repro.formal.quorum_model` checks
  this exhaustively for small worlds).
* **Equivocation detection** — a primary that forks its journal stream
  *can* assemble conflicting certificates for one epoch, but any two
  such certificates are cryptographic evidence: either a replica
  signed both (attributable double-signing) or two honest witnesses
  attested diverging streams, which only the primary can produce.
  Detection yields a typed ``EquivocationDetected`` telemetry event and
  a signed :class:`~repro.quorum.attestation.EquivocationEvidence`
  blob.
* **Automatic view change** — evidence evicts the accused replica,
  promotes the healthiest witness through the journal-shipping
  machinery (sessions stay warm), and re-keys the group at a strictly
  higher epoch, so both sides of any fork are cryptographically
  retired.

Entry points: :class:`~repro.quorum.replicas.QuorumLeaderSet` (the
replica set), :class:`~repro.quorum.member.QuorumMemberProtocol`
(certificate-verifying member), :mod:`repro.quorum.byzantine` (the
seeded Byzantine fault family), and :func:`~repro.quorum.soak.run_quorum_soak`
(the comparative chaos soak).  ``python -m repro quorum {demo,attack,soak}``
drives all of it from the CLI.
"""

from repro.quorum.attestation import (
    Attestation,
    EquivocationEvidence,
    MutationStatement,
    QuorumCertificate,
    derive_attestation_key,
    member_set_digest,
)
from repro.quorum.byzantine import (
    FAULT_NAMES,
    FAULTS,
    build_quorum_scenario,
    build_single_scenario,
)
from repro.quorum.fabric import (
    QuorumMigrationReport,
    host_quorum_group,
    migrate_quorum_group,
    quorum_fabric_member,
    rebind_after_view_change,
)
from repro.quorum.member import QuorumMemberProtocol, QuorumVerifier
from repro.quorum.replicas import QuorumConfig, QuorumLeaderSet, WitnessReplica
from repro.quorum.soak import (
    QuorumSoakReport,
    format_byzantine_matrix,
    run_byzantine_matrix,
    run_quorum_soak,
    soak_as_expected,
)

__all__ = [
    "Attestation",
    "FAULTS",
    "FAULT_NAMES",
    "EquivocationEvidence",
    "MutationStatement",
    "QuorumCertificate",
    "QuorumConfig",
    "QuorumLeaderSet",
    "QuorumMemberProtocol",
    "QuorumMigrationReport",
    "QuorumSoakReport",
    "QuorumVerifier",
    "WitnessReplica",
    "build_quorum_scenario",
    "build_single_scenario",
    "derive_attestation_key",
    "format_byzantine_matrix",
    "host_quorum_group",
    "member_set_digest",
    "migrate_quorum_group",
    "quorum_fabric_member",
    "rebind_after_view_change",
    "run_byzantine_matrix",
    "run_quorum_soak",
    "soak_as_expected",
]
