"""The leader replica set: primary, witnesses, certification, view change.

Topology.  One :class:`QuorumGroupLeader` (the primary) drives the
§3.2 protocol exactly as a single leader would — same handshake, same
nonce-chained admin channel, same journal.  ``n - 1``
:class:`WitnessReplica` standbys follow its write-ahead journal through
the existing shipping stream (:mod:`repro.storage.shipping`), each
holding a sealed replica it can replay independently.  After every
mutation the primary asks the witnesses to *attest* the resulting
``(seq, epoch, member set, key)`` statement; with ``f + 1`` matching
attestations (its own included) it wraps the mutation's outgoing admin
payloads in :class:`~repro.enclaves.itgm.admin.CertifiedPayload`.

Why witnesses are more than signature oracles: a witness attests only
the state *its own replay* of the shipped journal produces.  It refuses
when the replica is damaged (truncated tail, failed replay — the
journal-corrupting-shipper fault), when records were dropped, and when
asked to re-sign a ``seq`` or bind an ``epoch`` it already signed
differently — the double-signing refusal that makes equivocation
attributable.

View change.  Verified :class:`~repro.quorum.attestation.\
EquivocationEvidence` (or an operator decision backed by audit
telemetry, e.g. key withholding) evicts the accused replica.  When the
accused is the primary, the healthiest witness — highest applied
journal seq — is promoted *warm* through the same replay machinery
cold standbys use, re-hosting the logical session identity so member
sessions continue; the group is then re-keyed at a strictly higher
epoch than anything either side of the fork ever certified, which
cryptographically retires both branches.
"""

from __future__ import annotations

from repro.crypto.keys import KEY_LEN, KeyMaterial
from repro.crypto.rng import DeterministicRandom, RandomSource, SystemRandom
from repro.enclaves.common import Credentials, UserDirectory
from repro.enclaves.itgm.admin import (
    CertifiedPayload,
    MemberJoinedPayload,
    MemberLeftPayload,
    MembershipPayload,
    NewGroupKeyPayload,
)
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.persistence import restore_leader
from repro.exceptions import QuorumError, StateError
from repro.quorum.attestation import (
    Attestation,
    EquivocationEvidence,
    MutationStatement,
    QuorumCertificate,
    derive_attestation_key,
    member_set_digest,
)
from repro.overload.deadline import RetryBudget
from repro.quorum.member import QuorumMemberProtocol, QuorumVerifier
from repro.storage.journal import Journal
from repro.storage.shipping import JournalFollower, JournalShipper
from repro.storage.simdisk import SimDisk
from repro.telemetry.events import (
    AttestationIssued,
    AttestationRefused,
    CertificateIssued,
    EventBus,
    ReplicaEvicted,
    RetryBudgetExhausted,
    ViewChangeCompleted,
    ViewChangeStarted,
    resolve_bus,
)
from repro.util.clock import Clock
from repro.wire.message import Envelope

#: Delta records between journal compactions on a quorum journal.  Far
#: more aggressive than the recovery-only default (64): witnesses replay
#: their replica on *every* certification, so certification cost is
#: O(records since the last base snapshot) per witness per mutation —
#: compaction cadence is the knob that bounds it.
QUORUM_COMPACT_THRESHOLD = 8

#: Admin payload types that mutate a member's group view — exactly the
#: ones a quorum member refuses without a certificate.
MUTATION_PAYLOADS = (
    NewGroupKeyPayload,
    MemberJoinedPayload,
    MemberLeftPayload,
    MembershipPayload,
)


def _fork(rng: RandomSource, label: str) -> RandomSource:
    return rng.fork(label) if isinstance(rng, DeterministicRandom) else rng


class QuorumConfig:
    """Sizing: ``n = 3f + 1`` replicas, certificates need ``f + 1``.

    ``f + 1`` is the certificate threshold (not ``2f + 1``) because the
    layer certifies *state provenance*, not ordering consensus: one
    honest attestation inside every certificate is what makes
    fabrication impossible and forks attributable.  Ordering still
    comes from the journal seq; the formal model
    (:mod:`repro.formal.quorum_model`) checks the resulting safety
    properties exhaustively for small worlds.
    """

    def __init__(self, f: int = 1) -> None:
        if f < 1:
            raise ValueError("f must be >= 1")
        self.f = f

    @property
    def n(self) -> int:
        return 3 * self.f + 1

    @property
    def threshold(self) -> int:
        return self.f + 1


class QuorumGroupLeader(GroupLeader):
    """A :class:`GroupLeader` whose mutation payloads leave wrapped.

    ``bind_certifier`` installs a callback returning the encoded
    certificate for the *current* journal head (or ``None`` when no
    quorum could be assembled).  The pump checkpoints first — witnesses
    can only attest what the shipping stream has shown them — then
    wraps every still-bare mutation payload in the outboxes.  With no
    certifier bound the class degrades to a plain single leader, which
    is exactly the vulnerable baseline the soak compares against.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._certifier = None

    def bind_certifier(self, certifier) -> None:
        """Install ``certifier() -> bytes | None`` (pass None to unbind)."""
        self._certifier = certifier

    def _pending_bare_mutations(self) -> bool:
        return any(
            isinstance(payload, MUTATION_PAYLOADS)
            for outbox in self._outboxes.values()
            for payload in outbox
        )

    def _pump(self) -> list[Envelope]:
        if self._certifier is not None and self._pending_bare_mutations():
            # Ship the mutation before asking for attestations; the
            # journal diff is idempotent, so the enclosing entry
            # point's own checkpoint stays a no-op.
            self._checkpoint()
            certificate = self._certifier()
            if certificate is not None:
                for outbox in self._outboxes.values():
                    for i, payload in enumerate(outbox):
                        if isinstance(payload, MUTATION_PAYLOADS):
                            outbox[i] = CertifiedPayload(
                                inner=payload, certificate=certificate
                            )
        return super()._pump()


class WitnessReplica:
    """One standby: a sealed journal replica plus an attestation key.

    The replica *is* the witness's worldview — it attests nothing it
    cannot replay.  ``attest`` raises :class:`QuorumError` (never
    returns a bad attestation) when:

    * records were dropped (applied head trails the offered head),
    * the replica fails to replay cleanly to its applied head
      (corrupted or truncated shipping — the witness must not certify
      a prefix as if it were the whole stream),
    * it already signed a *different* statement for this ``seq``, or
      bound this ``epoch`` to a different key — the double-signing
      refusal honest replicas never violate.
    """

    def __init__(
        self,
        replica_id: str,
        storage_key: KeyMaterial,
        attestation_key: KeyMaterial,
        directory: UserDirectory,
        telemetry: EventBus | None = None,
    ) -> None:
        self.replica_id = replica_id
        self.follower = JournalFollower(replica_id, storage_key)
        self.key = attestation_key
        self.directory = directory
        self._telemetry = resolve_bus(telemetry)
        self._signed_by_seq: dict[int, MutationStatement] = {}
        self._fp_by_epoch: dict[int, str] = {}
        self.attested = 0
        self.refused = 0

    def current_statement(self, session_id: str) -> MutationStatement:
        """The statement this witness's replica supports right now."""
        follower = self.follower
        if follower.applied_seq < follower.offered_seq:
            raise QuorumError(
                f"replica dropped records (applied {follower.applied_seq} "
                f"trails offered {follower.offered_seq})"
            )
        try:
            result = follower.replay()
        except Exception as exc:  # noqa: BLE001 — any replay failure
            # (integrity, codec, recovery) means the replica cannot
            # vouch for the stream; refuse, never crash.
            raise QuorumError(
                f"journal replica failed to replay: {exc}"
            ) from exc
        if result.truncated or result.last_seq != follower.applied_seq:
            raise QuorumError(
                f"replica replay stops at seq {result.last_seq} "
                f"(applied head {follower.applied_seq}"
                f"{', ' + result.reason if result.reason else ''})"
            )
        leader = restore_leader(result.state, self.directory)
        return MutationStatement(
            session_id=session_id,
            seq=follower.applied_seq,
            epoch=leader.group_epoch,
            member_digest=member_set_digest(leader.members),
            key_fingerprint=leader.group_key_fingerprint or "",
        )

    def attest(self, session_id: str) -> Attestation:
        """Sign the current statement; :class:`QuorumError` on refusal."""
        try:
            statement = self.current_statement(session_id)
            prior = self._signed_by_seq.get(statement.seq)
            if prior is not None and prior != statement:
                raise QuorumError(
                    f"refusing to double-sign seq {statement.seq}"
                )
            prior_fp = self._fp_by_epoch.get(statement.epoch)
            if (
                prior_fp is not None
                and prior_fp != statement.key_fingerprint
            ):
                raise QuorumError(
                    f"refusing to bind epoch {statement.epoch} "
                    "to a second group key"
                )
        except QuorumError as exc:
            self.refused += 1
            if self._telemetry:
                self._telemetry.emit(AttestationRefused(
                    self.replica_id, session_id, str(exc)
                ))
            raise
        self._signed_by_seq[statement.seq] = statement
        self._fp_by_epoch[statement.epoch] = statement.key_fingerprint
        self.attested += 1
        if self._telemetry:
            self._telemetry.emit(AttestationIssued(
                self.replica_id, session_id,
                statement.seq, statement.epoch,
            ))
        return Attestation.sign(self.replica_id, statement, self.key)


class QuorumLeaderSet:
    """``n = 3f + 1`` co-hosted manager replicas behind one session id.

    Members talk to ``session_id`` exactly as they would to a single
    §3.2 leader; internally that identity is re-hostable state carried
    by whichever replica is primary.  The set owns the quorum root
    secret, derives per-replica attestation keys, wires the journal
    shipping stream to every witness, and certifies each mutation as
    it is pumped out.
    """

    def __init__(
        self,
        directory: UserDirectory,
        config: QuorumConfig | None = None,
        *,
        session_id: str = "quorum",
        leader_config: LeaderConfig | None = None,
        rng: RandomSource | None = None,
        clock: Clock | None = None,
        telemetry: EventBus | None = None,
        disk: SimDisk | None = None,
        journal_path: str = "quorum/journal.log",
        view_change_budget: RetryBudget | None = None,
    ) -> None:
        self.config = config if config is not None else QuorumConfig()
        self.directory = directory
        self.session_id = session_id
        self._rng = rng if rng is not None else SystemRandom()
        self._raw_telemetry = telemetry
        self._telemetry = resolve_bus(telemetry)
        self._clock = clock

        self.replica_ids = [f"rep-{i}" for i in range(self.config.n)]
        self.root = KeyMaterial(self._rng.key_material(KEY_LEN))
        self.keys = {
            rid: derive_attestation_key(self.root, rid)
            for rid in self.replica_ids
        }
        self.storage_key = KeyMaterial(self._rng.key_material(KEY_LEN))
        self.primary_id = self.replica_ids[0]
        self.evicted: set[str] = set()
        self.view_changes = 0
        #: Optional brake on *accusation-driven* view changes.  Every
        #: eviction costs an O(members) rekey, so an insider feeding
        #: the operator fabricated suspicion can turn the eviction path
        #: itself into a flood.  Deposits accrue from certified
        #: mutations (legitimate work earns eviction allowance);
        #: evidence-backed view changes bypass the budget entirely — a
        #: verified equivocation proof is irrefutable and the convicted
        #: replica must never be left in place.
        self._view_change_budget = view_change_budget

        self.disk = disk if disk is not None else SimDisk()
        self.leader = QuorumGroupLeader(
            session_id, directory, config=leader_config,
            rng=_fork(self._rng, "primary"), clock=clock,
            telemetry=telemetry,
        )
        self.journal = Journal(
            self.disk, journal_path, self.storage_key,
            compact_threshold=QUORUM_COMPACT_THRESHOLD,
            node=session_id, telemetry=telemetry,
        )
        self.witnesses: dict[str, WitnessReplica] = {
            rid: WitnessReplica(
                rid, self.storage_key, self.keys[rid], directory,
                telemetry=telemetry,
            )
            for rid in self.replica_ids[1:]
        }
        self.journal.attach(self.leader)
        self.shipper = JournalShipper(
            self.journal, node=session_id, telemetry=telemetry
        )
        for witness in self.witnesses.values():
            self.shipper.add_follower(witness.follower, leader=self.leader)
        self._cert_cache: tuple[int, bytes] | None = None
        self.leader.bind_certifier(self._certify)

    # -- member-side wiring -------------------------------------------------

    def verifier(self) -> QuorumVerifier:
        """A fresh verifier provisioned with the current key set."""
        verifier = QuorumVerifier(
            self.keys, self.config.threshold, self.primary_id
        )
        for rid in self.evicted:
            verifier.evict(rid)
        return verifier

    def member(
        self,
        credentials: Credentials,
        rng: RandomSource | None = None,
        telemetry: EventBus | None = None,
    ) -> QuorumMemberProtocol:
        """A certificate-verifying member bound to this replica set."""
        return QuorumMemberProtocol(
            credentials, self.session_id, self.verifier(),
            rng, telemetry=telemetry,
        )

    # -- certification ------------------------------------------------------

    def primary_statement(self) -> MutationStatement:
        """The statement the primary's *live* state supports."""
        return MutationStatement(
            session_id=self.session_id,
            seq=self.journal.seq,
            epoch=self.leader.group_epoch,
            member_digest=member_set_digest(self.leader.members),
            key_fingerprint=self.leader.group_key_fingerprint or "",
        )

    def _certify(self) -> bytes | None:
        seq = self.journal.seq
        if self._cert_cache is not None and self._cert_cache[0] == seq:
            return self._cert_cache[1]
        if self._view_change_budget is not None:
            # Fresh certified work deposits view-change allowance.
            self._view_change_budget.record_request()
        prof = self.leader._profiler
        tok = prof.begin("certify") if prof else None
        try:
            return self._assemble_certificate(seq)
        finally:
            if prof:
                prof.end(tok)

    def _assemble_certificate(self, seq: int) -> bytes | None:
        statement = self.primary_statement()
        attestations: list[Attestation] = []
        if self.primary_id not in self.evicted:
            attestations.append(Attestation.sign(
                self.primary_id, statement, self.keys[self.primary_id]
            ))
            if self._telemetry:
                self._telemetry.emit(AttestationIssued(
                    self.primary_id, self.session_id, seq, statement.epoch
                ))
        for rid, witness in self.witnesses.items():
            if rid in self.evicted:
                continue
            try:
                attestation = witness.attest(self.session_id)
            except QuorumError:
                continue  # the witness already emitted AttestationRefused
            if attestation.statement != statement:
                # The witness's replay disagrees with the live primary —
                # with an honest primary this cannot happen (shipping is
                # synchronous); its attestation would not certify our
                # statement anyway.
                if self._telemetry:
                    self._telemetry.emit(AttestationRefused(
                        rid, self.session_id,
                        "attestation diverges from primary statement",
                    ))
                continue
            attestations.append(attestation)
        if len({a.replica_id for a in attestations}) < self.config.threshold:
            return None
        certificate = QuorumCertificate(tuple(attestations))
        if self._telemetry:
            self._telemetry.emit(CertificateIssued(
                self.primary_id, self.session_id, seq,
                statement.epoch, len(certificate.signers),
                self.leader._cause,
            ))
        encoded = certificate.encode()
        self._cert_cache = (seq, encoded)
        return encoded

    # -- auditing -----------------------------------------------------------

    def audit(self, member_epochs: dict[str, int]) -> dict[str, int]:
        """Members whose installed epoch trails the certified epoch.

        The key-withholding symptom: a primary that certifies a rekey
        but never delivers it (or delivers it selectively) leaves the
        victims' acked epochs behind the journal's.  Feed this the
        epochs members report (``protocol.group_epoch``); a persistent
        non-empty result across retransmission rounds is grounds for a
        view change against the primary.
        """
        certified = self.leader.group_epoch
        return {
            uid: epoch
            for uid, epoch in member_epochs.items()
            if epoch < certified
        }

    # -- view change --------------------------------------------------------

    def view_change(
        self,
        accused: str,
        reason: str,
        evidence: EquivocationEvidence | None = None,
    ) -> list[Envelope]:
        """Evict ``accused``; promote and re-key when it was primary.

        With ``evidence`` given it is re-verified first — fabricated
        evidence must never trigger an eviction.  Returns the rekey
        envelopes to deliver to members (empty when the group is
        empty).  Verifiers held by members learn the eviction and the
        new primary out of band (:meth:`QuorumVerifier.evict` /
        :meth:`~QuorumVerifier.set_primary`) — in deployment terms,
        the evidence blob is broadcast and each member re-verifies it.
        """
        if accused not in self.replica_ids:
            raise StateError(f"unknown replica {accused!r}")
        if accused in self.evicted:
            raise StateError(f"replica {accused!r} already evicted")
        if evidence is not None:
            evidence.verify(
                self.keys, self.config.threshold, self.primary_id
            )
            if evidence.accused != accused:
                raise QuorumError(
                    f"evidence convicts {evidence.accused!r}, "
                    f"not {accused!r}"
                )
        elif self._view_change_budget is not None:
            # No cryptographic proof: this eviction spends budget.
            if not self._view_change_budget.can_retry():
                if self._telemetry:
                    self._telemetry.emit(RetryBudgetExhausted(
                        self.session_id, "view-change", self.view_changes
                    ))
                raise QuorumError(
                    "view-change budget exhausted: refusing an "
                    f"evidence-less eviction of {accused!r} — supply "
                    "equivocation evidence or wait for certified work "
                    "to replenish the budget"
                )
            self._view_change_budget.record_retry()
        if self._telemetry:
            self._telemetry.emit(ViewChangeStarted(
                self.session_id, accused, reason
            ))
        self.evicted.add(accused)
        self.view_changes += 1
        self._cert_cache = None
        if self._telemetry:
            self._telemetry.emit(ReplicaEvicted(self.session_id, accused))

        # Both sides of any fork must die: the new epoch is strictly
        # above everything either conflicting certificate ever named.
        floor_epoch = self.leader.group_epoch
        if evidence is not None:
            floor_epoch = max(
                floor_epoch,
                evidence.first.statement.epoch,
                evidence.second.statement.epoch,
            )

        if accused == self.primary_id:
            self._promote()
        else:
            witness = self.witnesses.pop(accused)
            if witness.follower in self.shipper.followers:
                self.shipper.followers.remove(witness.follower)

        out: list[Envelope] = []
        self.leader._group_epoch = max(
            self.leader._group_epoch, floor_epoch
        )
        if self.leader.members:
            out = self.leader.rekey_now()
        if self._telemetry:
            self._telemetry.emit(ViewChangeCompleted(
                self.session_id, self.primary_id, self.leader.group_epoch
            ))
        return out

    def _promote(self) -> None:
        """Warm-promote the healthiest promotable witness to primary.

        Candidates are tried from the highest applied journal seq down;
        a replica that cannot replay cleanly to its own head (a
        corrupting shipper got to it) is skipped — promoting it would
        silently roll members back to its valid prefix, exactly the
        single-leader failure mode the quorum exists to close.
        """
        candidates = sorted(
            (
                (witness.follower.applied_seq, rid)
                for rid, witness in self.witnesses.items()
                if rid not in self.evicted
            ),
            reverse=True,
        )
        chosen: tuple[str, dict] | None = None
        for _seq, rid in candidates:
            follower = self.witnesses[rid].follower
            try:
                result = follower.replay()
            except Exception:  # noqa: BLE001 — damaged replica, next
                continue
            if result.truncated or result.last_seq != follower.applied_seq:
                continue
            chosen = (rid, result.state)
            break
        if chosen is None:
            raise QuorumError(
                "no promotable witness (every surviving replica is "
                "damaged or empty)"
            )
        new_primary, state = chosen
        self.witnesses.pop(new_primary)
        restored = restore_leader(
            state, self.directory,
            config=self.leader.config, rng=self.leader._rng,
            clock=self.leader._clock, telemetry=self._raw_telemetry,
        )
        promoted = QuorumGroupLeader(
            self.session_id, self.directory,
            config=self.leader.config, rng=self.leader._rng,
            clock=self.leader._clock, telemetry=self._raw_telemetry,
        )
        # restore_leader builds the base class; transplant its protocol
        # state (sessions, outboxes, ciphers, epoch) wholesale — the
        # subclass only adds the certifier hook, re-bound below.
        promoted.__dict__.update(restored.__dict__)
        promoted._certifier = None
        self.leader = promoted
        self.primary_id = new_primary
        # Rebuild shipping from scratch.  The Byzantine old primary may
        # have detached the stream, starved witnesses, or fed them
        # forked/corrupt records — so every surviving witness gets a
        # *fresh* replica, primed with a base snapshot of the promoted
        # state at the continuing seq.
        self._rebuild_shipping()

    def _rebuild_shipping(self, *, journal: Journal | None = None) -> None:
        """Re-derive the whole shipping fan-out from the current leader.

        Shared by promotion (same journal, new primary) and live
        migration (same primary identity, new journal on the target
        shard's disk).  The base snapshot is written at the *continuing*
        sequence number — captured before any journal swap — so replica
        replays and a future replay of the whole lifetime see one
        gap-free record stream.  Every surviving witness gets a fresh
        primed replica; its attestation key, double-signing memory, and
        counters are untouched.
        """
        start_seq = self.journal.seq
        self.shipper.detach()
        if journal is not None:
            self.journal = journal
        self.journal.attach(self.leader, start_seq=start_seq)
        self.shipper = JournalShipper(
            self.journal, node=self.session_id,
            telemetry=self._raw_telemetry,
        )
        for rid, witness in self.witnesses.items():
            if rid in self.evicted:
                continue
            witness.follower = JournalFollower(rid, self.storage_key)
            self.shipper.add_follower(witness.follower, leader=self.leader)
        self._cert_cache = None
        self.leader.bind_certifier(self._certify)


__all__ = [
    "MUTATION_PAYLOADS",
    "QUORUM_COMPACT_THRESHOLD",
    "QuorumConfig",
    "QuorumGroupLeader",
    "QuorumLeaderSet",
    "WitnessReplica",
]
