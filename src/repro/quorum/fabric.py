"""Hosting quorum replica sets on the shard fabric.

Two integrations, both deliberately thin:

* **Hosting** — :func:`host_quorum_group` builds a
  :class:`~repro.quorum.replicas.QuorumLeaderSet` whose primary journals
  straight onto the shard's disk (at the shard's per-group journal
  path) and puts that primary behind the shard's ``GROUP_WRAP`` demux
  via :meth:`~repro.fabric.shard.ShardHost.host_prepared`.  Witness
  replicas are co-hosted state of the set, fed by the same shipping
  stream as ever; the shard only ever sees the primary.
  :func:`quorum_fabric_member` gives the member side: a
  :class:`~repro.fabric.member.FabricMember` whose inner protocol is
  the certificate-verifying
  :class:`~repro.quorum.member.QuorumMemberProtocol`.

* **Migration** — :func:`migrate_quorum_group` moves a hosted set
  between shards **warm**, unlike the cold single-leader move in
  :mod:`repro.fabric.migration`.  Cold migration scrubs the key and all
  sessions because a lone leader's state crossing hosts is exactly the
  §2.2 trust problem; a quorum set's sealed journal *already* crosses
  hosts continuously (that is what witness shipping is), so relocating
  the primary widens nothing.  The move ships the synced journal,
  refuses on any replay shortfall, re-hosts the replayed state with
  sessions intact, and continues the journal seq gap-free on the
  target's disk.

**Migration preserves certificates.**  The statement members verify —
``(session id, journal seq, epoch, member digest, key fingerprint)`` —
names no shard, and the replica attestation keys travel with the set,
so every certificate accepted before the move still verifies after it
and each member's equivocation memory (its
:class:`~repro.quorum.member.QuorumVerifier`) carries across without
reset.  A forked pre-move certificate therefore still convicts its
signer post-move.  The move ends with one *certified* rekey: the first
thing members see from the new shard is a mutation carrying a fresh
``f + 1`` certificate over the post-move journal head, retiring the
pre-move key without tearing down a single session.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import RandomSource
from repro.enclaves.common import Credentials, UserDirectory
from repro.enclaves.itgm.persistence import restore_leader
from repro.exceptions import RecoveryError, StateError
from repro.fabric.directory import GroupDirectory
from repro.fabric.member import FabricMember
from repro.fabric.shard import ShardHost
from repro.quorum.member import QuorumMemberProtocol
from repro.quorum.replicas import (
    QuorumConfig,
    QuorumGroupLeader,
    QuorumLeaderSet,
)
from repro.storage.journal import Journal
from repro.storage.shipping import JournalFollower, JournalShipper
from repro.telemetry.events import (
    EventBus,
    GroupMigrated,
    MigrationAborted,
    MigrationStarted,
)
from repro.util.clock import Clock
from repro.wire.message import Envelope


def host_quorum_group(
    shard: ShardHost,
    users: UserDirectory,
    group_id: str,
    *,
    config: QuorumConfig | None = None,
    rng: RandomSource | None = None,
    clock: Clock | None = None,
    telemetry: EventBus | None = None,
) -> QuorumLeaderSet:
    """Build a replica set for ``group_id`` and serve it from ``shard``.

    The set's session id *is* the group id — members route wrapped
    frames by it, the shard demuxes by it, and every attestation binds
    it.  The primary's journal lives on the shard's disk under the same
    per-group path a natively hosted group would use.
    """
    qs = QuorumLeaderSet(
        users,
        config,
        session_id=group_id,
        rng=rng,
        clock=clock,
        telemetry=telemetry,
        disk=shard.disk,
        journal_path=shard.journal_path(group_id),
    )
    shard.host_prepared(group_id, qs.leader, qs.journal)
    return qs


def quorum_fabric_member(
    credentials: Credentials,
    group_id: str,
    fabric: GroupDirectory,
    qs: QuorumLeaderSet,
    *,
    rng: RandomSource | None = None,
    rekey_grace: bool = True,
    telemetry: EventBus | None = None,
) -> FabricMember:
    """A directory-following member that demands quorum certificates.

    The fabric layer (routing, redirects, rejoin discipline) is the
    unchanged :class:`FabricMember`; only the inner protocol differs.
    Each protocol epoch gets a *fresh* verifier provisioned from the
    set's current key/eviction state — a rejoin after a view change
    therefore starts already distrusting the evicted replica.
    """

    def factory(creds, gid, fork_rng, grace, bus):
        return QuorumMemberProtocol(
            creds, gid, qs.verifier(), fork_rng,
            rekey_grace=grace, telemetry=bus,
        )

    return FabricMember(
        credentials, group_id, fabric,
        rng=rng, rekey_grace=rekey_grace, telemetry=telemetry,
        protocol_factory=factory,
    )


def rebind_after_view_change(shard: ShardHost, qs: QuorumLeaderSet) -> None:
    """Point the shard's demux at the set's post-view-change core.

    :meth:`QuorumLeaderSet.view_change` may have promoted a witness —
    a new leader object behind the same session id.  The shard entry
    must follow (:meth:`~repro.fabric.shard.ShardHost.rebind_group`)
    or inbound frames would keep reaching the evicted primary.
    """
    shard.rebind_group(qs.session_id, qs.leader, qs.journal)


@dataclass(frozen=True)
class QuorumMigrationReport:
    """What one :func:`migrate_quorum_group` call did."""

    group_id: str
    source: str
    target: str
    #: Journal records shipped to the target (base snapshot included).
    shipped_records: int
    #: Journal head at the moment of the move; the target journal's
    #: base snapshot is written at this same seq, keeping the combined
    #: record stream gap-free.
    record_seq: int
    #: Group epoch before the move and after the closing certified
    #: rekey (``after > before`` whenever the group had members).
    epoch_before: int
    epoch_after: int
    #: Member sessions carried warm across the move (no re-auth).
    sessions_carried: int
    #: New directory version after the flip.
    directory_version: int


def migrate_quorum_group(
    fabric: GroupDirectory,
    source: ShardHost,
    target: ShardHost,
    group_id: str,
    qs: QuorumLeaderSet,
    *,
    telemetry: EventBus | None = None,
) -> tuple[QuorumMigrationReport, list[Envelope]]:
    """Move a hosted replica set from ``source`` to ``target``, warm.

    Quiesce → sync → ship → replay-check → re-host (sessions intact,
    journal continuing on the target's disk) → flip → certified rekey.
    Returns the report plus the rekey envelopes to deliver to members.
    Deliver them after members refresh their route (the directory push
    that follows the version bump): the sessions are warm, so members
    that know the new route just keep talking.  A member that misses
    the push hits the source's ``GROUP_REDIRECT`` instead and falls
    back to the standard (cold, but loud and convergent) rejoin.
    Raises :class:`StateError` on bad topology and
    :class:`RecoveryError` if the shipped journal does not replay to
    its head; on any failure before the flip the source resumes serving
    and nothing has moved.
    """
    if not source.hosts(group_id):
        raise StateError(
            f"group {group_id!r} is not hosted on {source.shard_id!r}"
        )
    if target.hosts(group_id):
        raise StateError(
            f"group {group_id!r} is already hosted on {target.shard_id!r}"
        )
    record = fabric.record(group_id)
    if record.shard_id != source.shard_id:
        raise StateError(
            f"directory places {group_id!r} on {record.shard_id!r}, "
            f"not {source.shard_id!r}"
        )
    if qs.session_id != group_id:
        raise StateError(
            f"replica set serves {qs.session_id!r}, not {group_id!r}"
        )

    epoch_before = qs.leader.group_epoch

    # 1. Quiesce: members get redirects, the state stops mutating.
    source.quiesce(group_id)
    if telemetry:
        telemetry.emit(MigrationStarted(
            group_id, source.shard_id, target.shard_id
        ))
    try:
        # 2. Checkpoint: the synced journal is the authoritative state.
        qs.journal.sync()

        # 3. Ship: prime a migration follower exactly as a witness is
        #    primed — one base snapshot of the quiesced head.
        shipper = JournalShipper(qs.journal, telemetry=telemetry)
        follower = JournalFollower(target.shard_id, qs.storage_key)
        try:
            shipper.add_follower(follower, leader=qs.leader)
        finally:
            shipper.detach()

        result = follower.replay()
        if result.truncated or result.last_seq != qs.journal.seq:
            raise RecoveryError(
                f"shipped replica for {group_id!r} replays to seq "
                f"{result.last_seq}, journal head is {qs.journal.seq}; "
                "refusing to migrate on a lossy checkpoint"
            )

        # 4. Re-host warm: the shipped bytes are what gets served.  The
        #    replayed state keeps sessions, outboxes, and the (soon to
        #    be rotated) group key; the __dict__ transplant mirrors
        #    promotion — restore_leader builds the base class, the
        #    subclass only adds the certifier hook, re-bound by
        #    _rebuild_shipping below.
        restored = restore_leader(
            result.state, qs.directory,
            config=qs.leader.config, rng=qs.leader._rng,
            clock=qs.leader._clock, telemetry=qs._raw_telemetry,
        )
        rehosted = QuorumGroupLeader(
            group_id, qs.directory,
            config=qs.leader.config, rng=qs.leader._rng,
            clock=qs.leader._clock, telemetry=qs._raw_telemetry,
        )
        rehosted.__dict__.update(restored.__dict__)
        rehosted._certifier = None
        sessions_carried = len(rehosted.members)

        new_journal = Journal(
            target.disk,
            target.journal_path(group_id),
            qs.storage_key,
            node=f"{target.shard_id}/{group_id}",
            telemetry=qs._raw_telemetry,
        )
        qs.leader = rehosted
        # Continuing seq captured from the old journal; every witness
        # gets a fresh replica primed off the target-side stream.
        qs._rebuild_shipping(journal=new_journal)
    except BaseException as exc:
        source.resume(group_id)
        if telemetry:
            telemetry.emit(MigrationAborted(
                group_id, source.shard_id, str(exc)
            ))
        raise

    # 5. Flip the directory, retire the source copy, serve from target.
    flipped = fabric.move(group_id, target.shard_id)
    source.evict_group(group_id, target.shard_id)
    target.host_prepared(group_id, qs.leader, qs.journal)
    if telemetry:
        telemetry.emit(GroupMigrated(
            group_id, source.shard_id, target.shard_id, result.last_seq
        ))

    # 6. Key hygiene without session teardown: one *certified* rekey
    #    from the new home retires the pre-move key.  Members verify
    #    the certificate with the verifiers they already hold.
    out: list[Envelope] = []
    if qs.leader.members:
        out = qs.leader.rekey_now()

    report = QuorumMigrationReport(
        group_id=group_id,
        source=source.shard_id,
        target=target.shard_id,
        shipped_records=follower.records,
        record_seq=result.last_seq,
        epoch_before=epoch_before,
        epoch_after=qs.leader.group_epoch,
        sessions_carried=sessions_carried,
        directory_version=flipped.version,
    )
    return report, out


__all__ = [
    "QuorumMigrationReport",
    "host_quorum_group",
    "migrate_quorum_group",
    "quorum_fabric_member",
    "rebind_after_view_change",
]
