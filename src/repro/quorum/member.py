"""Certificate-verifying member: the trust boundary of the quorum.

The base :class:`~repro.enclaves.itgm.member.MemberProtocol` applies
whatever its (single, fully trusted) leader sends.  The quorum member
closes that gap with three rules, enforced *inside* the sealed admin
channel after the ordinary §3.2 checks pass:

1. **No uncertified mutations.**  A bare ``NewGroupKeyPayload``,
   ``MemberJoinedPayload``, ``MemberLeftPayload`` or
   ``MembershipPayload`` is refused — acknowledged on the nonce chain
   (the channel must stay live) but never applied to the group view.
2. **Certificates must verify and must cover the mutation.**  The
   certificate's statement has to carry ``f + 1`` valid attestations
   from distinct, non-evicted replicas *and* bind exactly this
   mutation: the right session, the projected post-mutation member
   set, and — for key distribution — the payload's own epoch and key
   fingerprint.  A primary cannot take a certificate issued for one
   mutation and splice it onto another.
3. **Conflicting certificates convict.**  The member remembers every
   certificate it accepted, keyed by journal seq and by epoch; a later
   certificate that conflicts (same seq, different statement — a
   forked stream — or same epoch, different key) is refused, and the
   pair is packaged into a signed
   :class:`~repro.quorum.attestation.EquivocationEvidence` blob plus
   an ``EquivocationDetected`` telemetry event.

Refusals surface as ordinary :class:`~repro.enclaves.common.Rejected`
events whose reasons carry the ``certificate``/``uncertified`` markers,
so the telemetry classifier files them as integrity rejections and the
attack-trace CLI lists the offending frames.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.crypto.keys import KeyMaterial
from repro.enclaves.common import Credentials, Event
from repro.enclaves.itgm.admin import (
    AdminPayload,
    CertifiedPayload,
    MemberJoinedPayload,
    MemberLeftPayload,
    MembershipPayload,
    NewGroupKeyPayload,
)
from repro.enclaves.itgm.member import MemberProtocol
from repro.exceptions import QuorumError
from repro.quorum.attestation import (
    EquivocationEvidence,
    MutationStatement,
    QuorumCertificate,
    build_evidence,
    member_set_digest,
)
from repro.telemetry.events import (
    CertificateVerified,
    EquivocationDetected,
    EventBus,
)
from repro.wire.labels import Label


class QuorumVerifier:
    """One observer's view of the quorum: keys, evictions, and every
    certificate it has accepted so far.

    Stateful on purpose — equivocation is only detectable by an
    observer that *remembers*: a single certificate is always
    self-consistent; the crime is two of them binding one journal seq
    (or one epoch) to different worlds.  Each member owns its own
    verifier; the replica set's auditor cross-checks across members.
    """

    def __init__(
        self,
        keys: Mapping[str, KeyMaterial],
        threshold: int,
        primary_id: str,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.keys = dict(keys)
        self.threshold = threshold
        #: Replica identity of the current primary — the party accused
        #: when conflicting certificates share no signer.
        self.primary_id = primary_id
        self.evicted: set[str] = set()
        self._by_seq: dict[int, QuorumCertificate] = {}
        self._by_epoch: dict[int, QuorumCertificate] = {}

    # -- out-of-band configuration updates ---------------------------------

    def evict(self, replica_id: str) -> None:
        """Stop accepting attestations from ``replica_id`` (the verifier
        learned of a conviction — e.g. from a distributed evidence
        blob)."""
        self.evicted.add(replica_id)

    def set_primary(self, replica_id: str) -> None:
        """Record a completed view change's new primary.

        Starts a fresh observation window: the view change re-keys at
        a strictly higher epoch than anything the old tenure certified,
        so statements from before the change can never be replayed
        against the new primary — and a Byzantine old primary may have
        planted forged-seq certificates that would otherwise poison
        conflict detection against the honest successor forever.
        """
        self.primary_id = replica_id
        self._by_seq.clear()
        self._by_epoch.clear()

    # -- the verification pipeline -----------------------------------------

    def check(self, certificate: bytes) -> QuorumCertificate:
        """Decode and verify one certificate; raises :class:`QuorumError`."""
        cert = QuorumCertificate.from_bytes(certificate)
        cert.verify(self.keys, self.threshold, frozenset(self.evicted))
        return cert

    def observe(self, cert: QuorumCertificate) -> EquivocationEvidence | None:
        """Remember a *verified* certificate; returns evidence when it
        conflicts with one seen earlier (the new certificate is then
        NOT recorded — the first-accepted world stays authoritative)."""
        statement = cert.statement
        for prior in (
            self._by_seq.get(statement.seq),
            self._by_epoch.get(statement.epoch),
        ):
            if prior is not None and prior.statement.conflicts_with(statement):
                return build_evidence(prior, cert, self.primary_id)
        self._by_seq.setdefault(statement.seq, cert)
        self._by_epoch.setdefault(statement.epoch, cert)
        return None


class QuorumMemberProtocol(MemberProtocol):
    """A member that refuses mutations lacking a valid quorum certificate."""

    def __init__(
        self,
        credentials: Credentials,
        leader_id: str,
        verifier: QuorumVerifier,
        rng=None,
        rekey_grace: bool = True,
        telemetry: EventBus | None = None,
    ) -> None:
        super().__init__(
            credentials, leader_id, rng,
            rekey_grace=rekey_grace, telemetry=telemetry,
        )
        self.verifier = verifier
        #: Evidence blobs this member produced (also emitted as
        #: ``EquivocationDetected`` telemetry with the encoded blob).
        self.evidence: list[EquivocationEvidence] = []
        #: Certificates this member verified and applied, in order —
        #: what it gossips to peers so cross-member conflicts (a primary
        #: showing different worlds to different members) surface too.
        self.accepted_certificates: list[QuorumCertificate] = []

    # -- the three rules ---------------------------------------------------

    def _apply_admin(self, payload: AdminPayload) -> list[Event]:
        if isinstance(payload, CertifiedPayload):
            return self._apply_certified(payload)
        if isinstance(payload, (
            NewGroupKeyPayload, MemberJoinedPayload,
            MemberLeftPayload, MembershipPayload,
        )):
            # Rule 1.  The ack still flows (the nonce chain must not
            # stall on attacker input) but the group view is untouched.
            return [self._reject(
                f"uncertified {type(payload).__name__} refused",
                Label.ADMIN_MSG,
            )]
        return MemberProtocol._apply_admin(self, payload)

    def _apply_certified(self, payload: CertifiedPayload) -> list[Event]:
        try:
            cert = self.verifier.check(payload.certificate)
        except QuorumError as exc:
            return [self._reject(
                f"certificate rejected: {exc}", Label.ADMIN_MSG,
            )]
        statement = cert.statement
        mismatch = self._binding_mismatch(statement, payload.inner)
        if mismatch is not None:
            return [self._reject(
                f"certificate does not cover this mutation ({mismatch})",
                Label.ADMIN_MSG,
            )]
        evidence = self.verifier.observe(cert)
        if evidence is not None:
            self.evidence.append(evidence)
            if self._telemetry:
                self._telemetry.emit(EquivocationDetected(
                    self.user_id, self.leader_id, evidence.accused,
                    statement.epoch, evidence.encode().hex(),
                    self._cause,
                ))
            return [self._reject(
                "certificate equivocation (conflicting attestation set)",
                Label.ADMIN_MSG,
            )]
        self.accepted_certificates.append(cert)
        if self._telemetry:
            self._telemetry.emit(CertificateVerified(
                self.user_id, self.leader_id,
                statement.epoch, len(cert.signers),
                self._cause,
            ))
        # Inner payloads cannot nest (the codec rejects that), so this
        # dispatches straight to the base implementation's cases.
        return MemberProtocol._apply_admin(self, payload.inner)

    def observe_gossip(
        self, cert: QuorumCertificate
    ) -> EquivocationEvidence | None:
        """Observe a peer-gossiped certificate (rule 3, out of band).

        Same conflict memory and evidence path as the in-band channel.
        Gossip carries no wire frame, so the telemetry event's
        ``caused_by`` stays empty — a causal trace instead reaches the
        offending mutation through the conflicting
        ``CertificateVerified`` at the same (session, epoch).
        """
        evidence = self.verifier.observe(cert)
        if evidence is not None:
            self.evidence.append(evidence)
            if self._telemetry:
                self._telemetry.emit(EquivocationDetected(
                    self.user_id, self.leader_id, evidence.accused,
                    cert.statement.epoch, evidence.encode().hex(), "",
                ))
        return evidence

    def _binding_mismatch(
        self, statement: MutationStatement, inner: AdminPayload
    ) -> str | None:
        """Rule 2: does the statement actually describe this mutation?

        Returns a reason string on mismatch, None when bound.  The
        member checks the statement's digest against its *projected*
        post-mutation member set — what its own view becomes if it
        applies the payload — so a replayed certificate from a
        different membership state never binds.
        """
        if statement.session_id != self.leader_id:
            return f"statement for session {statement.session_id!r}"
        if isinstance(inner, NewGroupKeyPayload):
            if statement.epoch != inner.epoch:
                return (
                    f"statement epoch {statement.epoch} != payload "
                    f"epoch {inner.epoch}"
                )
            if statement.key_fingerprint != inner.key.fingerprint():
                return "statement covers a different group key"
            # The key always arrives after the membership payloads of
            # its mutation, so the current view *is* the post-mutation
            # set here.
            projected = set(self.membership)
        elif isinstance(inner, MemberJoinedPayload):
            projected = self.membership | {inner.user_id}
        elif isinstance(inner, MemberLeftPayload):
            projected = self.membership - {inner.user_id}
        elif isinstance(inner, MembershipPayload):
            projected = set(inner.members)
        else:
            projected = set(self.membership)
        if statement.member_digest != member_set_digest(projected):
            return "statement covers a different member set"
        return None


__all__ = ["QuorumMemberProtocol", "QuorumVerifier"]
