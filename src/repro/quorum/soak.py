"""Comparative Byzantine soak: quorum stack vs. single leader.

One soak run is a fixed, fully deterministic script — build a stack,
run an honest baseline round, strike it with one Byzantine fault
(:mod:`repro.quorum.byzantine`), let the stack's own defences respond
(the quorum stack only: certificate gossip, epoch audit, view change),
then settle with retransmission rounds and judge the end state against
the §5.4-shaped invariants:

1. **Epoch monotonicity** — no member's installed group-key epoch ever
   goes backwards (or re-installs a different key at a held epoch).
2. **Key agreement** — at the end of the run, any two members holding
   the same epoch hold the same key.  (Certificates make forks
   *detectable and attributable*, not impossible — a fork may exist
   transiently between delivery and gossip — so agreement is an
   end-state property, matching §5.4's "at any time the protocol is
   quiescent".)
3. **Convergence to authority** — every member ends connected, on the
   authority's current epoch and key, with empty outboxes.

The matrix claim, checked by the chaos tests and the CI ``quorum``
job: for every fault and seed, the quorum stack reports **zero**
violations (and, for every fault it has a detector for, an explicit
detection), while the single-leader stack reports at least one.

Determinism: all randomness flows from the run seed; telemetry, when
attached, should use a :class:`~repro.util.clock.TickClock` so the
exported JSONL is byte-identical across runs of the same seed (the
chaos suite asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.enclaves.harness import wire
from repro.enclaves.itgm.member import MemberState
from repro.quorum.byzantine import (
    FAULT_NAMES,
    FAULTS,
    QuorumScenario,
    SingleScenario,
    build_quorum_scenario,
    build_single_scenario,
)
from repro.telemetry.events import EventBus

#: Both stacks, in report order.
STACKS = ("quorum", "single")

#: Members' identities used by every soak run.
_MEMBER_IDS = ("user-0", "user-1", "user-2")

#: Retransmission/settling rounds after the response phase.
_HEAL_ROUNDS = 4


@dataclass
class QuorumSoakReport:
    """Outcome of one (stack, fault, seed) soak run."""

    stack: str
    fault: str
    seed: int
    detected: bool
    detail: str
    view_changes: int
    violations: list[str] = field(default_factory=list)
    converged: bool = False
    final_epoch: int = -1
    n_members: int = 0

    @property
    def safe(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "stack": self.stack,
            "fault": self.fault,
            "seed": self.seed,
            "detected": self.detected,
            "detail": self.detail,
            "view_changes": self.view_changes,
            "violations": list(self.violations),
            "converged": self.converged,
            "final_epoch": self.final_epoch,
            "n_members": self.n_members,
        }


def run_quorum_soak(
    fault: str,
    stack: str = "quorum",
    seed: int = 7,
    telemetry: EventBus | None = None,
) -> QuorumSoakReport:
    """One scripted soak run; see the module docstring for the phases."""
    if fault not in FAULTS:
        raise ValueError(
            f"unknown fault {fault!r} (one of {FAULT_NAMES})"
        )
    if stack not in STACKS:
        raise ValueError(f"unknown stack {stack!r} (one of {STACKS})")
    fault_obj = FAULTS[fault](seed=seed + 5)

    if stack == "quorum":
        scenario: QuorumScenario | SingleScenario = build_quorum_scenario(
            _MEMBER_IDS, seed, telemetry=telemetry
        )
    else:
        scenario = build_single_scenario(
            _MEMBER_IDS, seed, telemetry=telemetry
        )
    net = scenario.net
    members = scenario.members

    def authority():
        # Re-resolved each time: view changes (quorum) and promotions
        # (single) replace the live leader object mid-run.
        if stack == "quorum":
            return scenario.qs.leader
        return scenario.managers.primary

    histories: dict[str, list[tuple[int, str | None]]] = {
        uid: [] for uid in members
    }

    def sample() -> None:
        for uid, member in members.items():
            if member.group_epoch < 0:
                continue
            point = (member.group_epoch, member.group_key_fingerprint)
            if not histories[uid] or histories[uid][-1] != point:
                histories[uid].append(point)

    sample()

    # Phase 1 — honest baseline: a rekey and an app round, proving the
    # stack is healthy before the strike.
    net.post_all(authority().rekey_now())
    net.run()
    sample()
    net.post(members[_MEMBER_IDS[0]].seal_app(b"baseline traffic"))
    net.run()

    # Phase 2 — the strike.
    if stack == "quorum":
        strike = fault_obj.strike_quorum(scenario)
    else:
        strike = fault_obj.strike_single(scenario)
    sample()

    # Phase 3 — detection and response.  Only the quorum stack has
    # machinery here; the single stack's "response" is whatever the
    # fault already did to it.
    detected = False
    detail_bits: list[str] = []
    if stack == "quorum":
        detected, detail_bits = _quorum_respond(scenario, fault, strike)
        sample()

    # Phase 4 — settling: retransmission rounds flush stalled channels.
    for _ in range(_HEAL_ROUNDS):
        net.post_all(authority().tick())
        net.run()
        sample()

    # Phase 5 — judge.
    violations = _judge(histories, members, authority())
    auth = authority()
    return QuorumSoakReport(
        stack=stack,
        fault=fault,
        seed=seed,
        detected=detected,
        detail="; ".join(detail_bits) if detail_bits else "no detector",
        view_changes=(
            scenario.qs.view_changes if stack == "quorum" else 0
        ),
        violations=violations,
        converged=not any("not converged" in v for v in violations),
        final_epoch=auth.group_epoch,
        n_members=len(members),
    )


def _quorum_respond(
    scenario: QuorumScenario, fault: str, strike: dict
) -> tuple[bool, list[str]]:
    """The quorum stack's defences, run in their deployment order.

    1. *Certificate gossip*: members exchange recently accepted
       certificates; any member's verifier that observes a conflict
       produces self-verifying evidence.
    2. *Epoch audit*: members' acked epochs are compared against the
       certified epoch — the withholding/silence symptom.
    3. *Response*: evidence (or a persistent audit finding, or a
       damaged-replica refusal during a drill) drives a view change;
       members learn the eviction and the new primary out of band and
       start a fresh observation window.
    """
    qs = scenario.qs
    net = scenario.net
    members = scenario.members
    detail: list[str] = []

    # 1 — gossip.
    evidence = None
    detector = None
    pool = [
        (uid, cert)
        for uid, member in sorted(members.items())
        for cert in member.accepted_certificates[-3:]
    ]
    for uid, member in sorted(members.items()):
        for origin_uid, cert in pool:
            if origin_uid == uid:
                continue
            found = member.observe_gossip(cert)
            if found is not None:
                evidence, detector = found, uid
                break
        if evidence is not None:
            break

    # 2 — audit.
    lagging = qs.audit(
        {uid: member.group_epoch for uid, member in members.items()}
    )

    # 3 — respond.
    accused = None
    out = []
    if evidence is not None:
        accused = evidence.accused
        detail.append(
            f"{detector} gossip produced equivocation evidence "
            f"against {accused}"
        )
        out = qs.view_change(accused, "equivocation evidence", evidence)
    elif lagging:
        accused = qs.primary_id
        detail.append(
            f"audit: {sorted(lagging)} behind certified epoch "
            f"{qs.leader.group_epoch}"
        )
        out = qs.view_change(
            accused, f"audit: members {sorted(lagging)} starved"
        )
    elif fault == "corruption":
        refusing = sorted(
            rid for rid, witness in qs.witnesses.items() if witness.refused
        )
        if refusing:
            accused = qs.primary_id
            detail.append(
                f"witnesses {refusing} refused to attest a damaged "
                "replica; running a failover drill"
            )
            out = qs.view_change(
                accused, "failover drill with damaged replica present"
            )
    if accused is None:
        return False, detail

    # The accused primary is gone: its standing interference with the
    # wire (selective silence) goes with it.
    net.set_interceptor(None)
    wire(net, scenario.leader_addr, qs.leader)
    for member in members.values():
        member.verifier.evict(accused)
        member.verifier.set_primary(qs.primary_id)
    detail.append(
        f"view change -> primary {qs.primary_id}, "
        f"epoch {qs.leader.group_epoch}"
    )
    net.post_all(out)
    net.run()
    return True, detail


def _judge(
    histories: dict[str, list[tuple[int, str | None]]],
    members: dict,
    authority,
) -> list[str]:
    """Apply the three invariants; returns human-readable violations."""
    violations: list[str] = []

    for uid in sorted(histories):
        epochs = [epoch for epoch, _ in histories[uid]]
        if any(b <= a for a, b in zip(epochs, epochs[1:])):
            violations.append(
                f"{uid}: group-key epoch not strictly increasing "
                f"({epochs})"
            )

    uids = sorted(members)
    for i, first in enumerate(uids):
        for second in uids[i + 1:]:
            a, b = members[first], members[second]
            if (
                a.group_epoch >= 0
                and a.group_epoch == b.group_epoch
                and a.group_key_fingerprint != b.group_key_fingerprint
            ):
                violations.append(
                    f"key disagreement at epoch {a.group_epoch}: "
                    f"{first}={a.group_key_fingerprint} "
                    f"{second}={b.group_key_fingerprint}"
                )

    auth_epoch = authority.group_epoch
    auth_fp = authority.group_key_fingerprint
    for uid in uids:
        member = members[uid]
        problems = []
        if member.state is not MemberState.CONNECTED:
            problems.append(f"state {member.state.name}")
        if member.group_epoch != auth_epoch:
            problems.append(
                f"epoch {member.group_epoch} != authority {auth_epoch}"
            )
        elif member.group_key_fingerprint != auth_fp:
            problems.append("holds a different key than the authority")
        if authority.outbox_depth(uid):
            problems.append(
                f"{authority.outbox_depth(uid)} undelivered payloads"
            )
        if problems:
            violations.append(f"{uid}: not converged ({', '.join(problems)})")

    return violations


def run_byzantine_matrix(
    seed: int = 7,
    faults: tuple[str, ...] | None = None,
    telemetry: EventBus | None = None,
) -> list[QuorumSoakReport]:
    """Every fault against both stacks — the full comparison grid."""
    reports = []
    for fault in (faults if faults is not None else FAULT_NAMES):
        for stack in STACKS:
            reports.append(run_quorum_soak(
                fault, stack=stack, seed=seed, telemetry=telemetry
            ))
    return reports


def soak_as_expected(report: QuorumSoakReport) -> bool:
    """The matrix claim, for one cell: the quorum stack must be safe
    *and* have explicitly detected the fault; the single-leader stack
    must have violated at least one invariant (that contrast is the
    point of the comparison)."""
    expected_safe = report.stack == "quorum"
    return report.safe == expected_safe and (
        not expected_safe or report.fault == "none" or report.detected
    )


def format_byzantine_matrix(reports: list[QuorumSoakReport]) -> str:
    """Render the grid the way the CLI and CI logs show it."""
    header = (
        f"{'fault':<14} {'stack':<8} {'detected':<9} "
        f"{'view-chg':<9} {'violations':<11} verdict"
    )
    lines = [header, "-" * len(header)]
    for report in reports:
        verdict = (
            "as expected" if soak_as_expected(report) else "UNEXPECTED"
        )
        lines.append(
            f"{report.fault:<14} {report.stack:<8} "
            f"{str(report.detected):<9} {report.view_changes:<9} "
            f"{len(report.violations):<11} {verdict}"
        )
    return "\n".join(lines)


__all__ = [
    "STACKS",
    "QuorumSoakReport",
    "format_byzantine_matrix",
    "run_byzantine_matrix",
    "run_quorum_soak",
    "soak_as_expected",
]
