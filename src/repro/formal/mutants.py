"""Deliberately broken model variants — negative controls.

A verifier that never fails is indistinguishable from one that checks
nothing.  Each mutant here re-introduces one protocol flaw at the
symbolic level; the explorer must *find* the corresponding violation.
The test suite runs every mutant and asserts the right property fails —
this is the reproduction's analogue of the paper's remark that PVS "was
essential to fix flaws in our hand proofs".

Mutants:

* :class:`NoNonceChainModel` — AdminMsg acceptance ignores the chained
  nonce (the legacy ``new_key`` flaw): duplicates/replays are accepted,
  so the §5.4 prefix property must fail.
* :class:`LeakLongTermKeyModel` — the leader embeds P_a in AuthKeyDist:
  regularity and both secrecy properties must fail.
* :class:`ReusedSessionKeyModel` — the leader hands out the same session
  key every session: after the first session closes (Oops), the spy
  knows the "fresh" key of the next session, so session-key secrecy
  must fail.
* :class:`UnconstrainedKeyDistModel` — the user accepts AuthKeyDist
  without checking its own nonce N1: agreement/diagram obligations
  break under a stale key-dist.
"""

from __future__ import annotations

from typing import Iterator

from repro.formal.events import MsgLabel
from repro.formal.fields import Concat, Crypt, NonceF, SessionK
from repro.formal.model import (
    EnclavesModel,
    GlobalState,
    LNotConnected,
    LWaitingForKeyAck,
    Transition,
    UConnected,
    UWaitingForKey,
)


class NoNonceChainModel(EnclavesModel):
    """AdminMsg acceptance without the replay-protecting nonce check."""

    def _user_transitions(self, state: GlobalState) -> Iterator[Transition]:
        usr = state.usr
        if isinstance(usr, UConnected):
            # FLAW: accept any AdminMsg under our key, for ANY previous
            # nonce — the equivalent of the legacy new_key (no
            # freshness).  Re-accepting the same field duplicates it.
            for f in state.trace_parts:
                if (
                    isinstance(f, Crypt)
                    and f.key == usr.key
                    and isinstance(f.body, Concat)
                    and len(f.body.parts) == 5
                    and f.body.parts[0] == self.L
                    and f.body.parts[1] == self.A
                ):
                    x = f.body.parts[4]
                    n_next = NonceF(state.next_id)
                    content = self.key_ack(
                        self.A, usr.key, f.body.parts[3], n_next
                    )
                    yield self._send(
                        state, "A", f"A blindly accepts AdminMsg({x})",
                        MsgLabel.ACK, self.config.user, self.config.leader,
                        content,
                        usr=UConnected(n_next, usr.key),
                        next_id=state.next_id + 1,
                        rcv=state.rcv + (x,),
                    )
            # Keep join/close behaviour from the honest model.
            for t in super()._user_transitions(state):
                if "AdminMsg" not in t.description:
                    yield t
        else:
            yield from super()._user_transitions(state)


class LeakLongTermKeyModel(EnclavesModel):
    """The leader ships P_a inside AuthKeyDist (regularity violation)."""

    def auth_key_dist(self, user, key, n1, n2, k):
        # FLAW: P_a rides along in the encrypted body... and also in the
        # clear via a concatenation, which is what regularity forbids.
        return Concat((Crypt(key, Concat((self.L, user, n1, n2, k))), self.Pa))


class ReusedSessionKeyModel(EnclavesModel):
    """The leader reuses one session key forever."""

    REUSED = SessionK(10_000)

    def _leader_transitions(self, state: GlobalState) -> Iterator[Transition]:
        lead = state.lead
        if isinstance(lead, LNotConnected):
            for n1 in self.find_inits(state, self.A, self.Pa):
                n2 = NonceF(state.next_id)
                k = self.REUSED  # FLAW: not fresh
                content = self.auth_key_dist(self.A, self.Pa, n1, n2, k)
                yield self._send(
                    state, "L", f"L answers AuthInitReq({n1}) with REUSED key",
                    MsgLabel.AUTH_KEY_DIST, self.config.leader,
                    self.config.user, content,
                    lead=LWaitingForKeyAck(n2, k, origin=n1),
                    next_id=state.next_id + 1,
                )
        else:
            yield from super()._leader_transitions(state)


class UnconstrainedKeyDistModel(EnclavesModel):
    """The user accepts any AuthKeyDist, ignoring its own nonce N1."""

    def _user_transitions(self, state: GlobalState) -> Iterator[Transition]:
        usr = state.usr
        if isinstance(usr, UWaitingForKey):
            # FLAW: match any {L, A, N, N', K}_{P_a}, not just ours.
            for f in state.trace_parts:
                if (
                    isinstance(f, Crypt)
                    and f.key == self.Pa
                    and isinstance(f.body, Concat)
                    and len(f.body.parts) == 5
                    and f.body.parts[0] == self.L
                    and f.body.parts[1] == self.A
                    and isinstance(f.body.parts[3], NonceF)
                    and isinstance(f.body.parts[4], SessionK)
                ):
                    n2, k = f.body.parts[3], f.body.parts[4]
                    n3 = NonceF(state.next_id)
                    content = self.key_ack(self.A, k, n2, n3)
                    yield self._send(
                        state, "A", "A accepts ANY AuthKeyDist",
                        MsgLabel.AUTH_ACK_KEY, self.config.user,
                        self.config.leader, content,
                        usr=UConnected(n3, k),
                        next_id=state.next_id + 1,
                    )
        else:
            yield from super()._user_transitions(state)
