"""The §5 theorems as executable invariants.

Each check takes a :class:`~repro.formal.model.GlobalState` and returns
``None`` if the property holds there, or a human-readable violation
string.  The explorer evaluates every check on every reached state; a
non-None result becomes a :class:`~repro.exceptions.PropertyViolation`
with the counterexample path attached.

Paper §5 properties covered:

* ``check_regularity``       — §5.1: P_a never occurs in the trace.
* ``check_longterm_secrecy`` — §5.1: only A and L know P_a.
* ``check_session_secrecy``  — §5.2 Proposition 3: while K_a is in use,
  only A and L know it.
* ``check_coideal_invariant``— §5.2 invariant (5): while K_a is in use,
  the trace stays within 𝓒({K_a, P_a}).
* ``check_prefix``           — §5.4: rcv_A is a prefix of snd_A (order +
  no duplication of admin messages).
* ``check_authentication``   — §5.4: L's acceptance list is a prefix of
  A's request list (proper user authentication).
* ``check_agreement``        — §5.4: when both are Connected they agree
  on the session key and A's latest nonce.
* ``check_user_key_in_use``  — §5.4: whenever A holds K_a, InUse(K_a).
* ``check_no_duplicates``    — no admin payload is accepted twice
  (implied by the prefix property given distinct Data payloads; checked
  directly for defense in depth).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.formal.ideals import trace_in_coideal
from repro.formal.model import (
    EnclavesModel,
    GlobalState,
    LConnected,
    LWaitingForAck,
    LWaitingForKeyAck,
    UConnected,
)

Check = Callable[[EnclavesModel, GlobalState], "str | None"]


def check_regularity(model: EnclavesModel, state: GlobalState) -> str | None:
    """P_a ∉ Parts(trace) — the Regularity Lemma's conclusion (§5.1)."""
    if model.Pa in state.trace_parts:
        return "regularity violated: P_a occurs in the trace"
    return None


def check_longterm_secrecy(model: EnclavesModel, state: GlobalState) -> str | None:
    """P_a ∉ Know(Spy, q) (§5.1)."""
    if state.spy.knows(model.Pa):
        return "long-term key secrecy violated: spy knows P_a"
    return None


def check_session_secrecy(model: EnclavesModel, state: GlobalState) -> str | None:
    """While K_a is in use for A, the spy does not know it (§5.2 Prop. 3).

    Keys of the compromised member C are *expected* to be spy-known, so
    only A-session keys are constrained — exactly the paper's statement,
    which protects a non-compromised A.
    """
    lead = state.lead
    if isinstance(lead, (LWaitingForKeyAck, LConnected, LWaitingForAck)):
        if state.spy.knows(lead.key):
            return f"session key secrecy violated: spy knows {lead.key!r} in use"
    return None


def check_coideal_invariant(model: EnclavesModel, state: GlobalState) -> str | None:
    """InUse(K_a) ⇒ trace ⊆ 𝓒({K_a, P_a}) — invariant (5) of §5.2.

    The check ranges over the message *contents* of the trace (the
    paper's underlined trace(q)), not over all Parts — an encrypted body
    containing K_a is allowed precisely when its enclosing ciphertext is
    keyed by a secret, which is what the ideal's definition encodes.
    """
    lead = state.lead
    if isinstance(lead, (LWaitingForKeyAck, LConnected, LWaitingForAck)):
        secrets = frozenset({lead.key, model.Pa})
        if not trace_in_coideal(state.contents, secrets):
            return (
                f"coideal invariant violated for secrets {{{lead.key!r}, P_a}}"
            )
    return None


def check_prefix(model: EnclavesModel, state: GlobalState) -> str | None:
    """rcv_A is a prefix of snd_A (§5.4).

    This single property packages the paper's Proper Distribution
    requirement: every accepted admin message was sent by L, in the same
    order, without duplicates.
    """
    if len(state.rcv) > len(state.snd):
        return f"rcv longer than snd: {state.rcv} vs {state.snd}"
    if state.snd[: len(state.rcv)] != state.rcv:
        return f"rcv is not a prefix of snd: {state.rcv} vs {state.snd}"
    return None


def check_authentication(model: EnclavesModel, state: GlobalState) -> str | None:
    """L's acceptance list is a prefix of A's request list (§5.4):
    the nth AuthAckKey accepted by L was preceded by the nth
    AuthInitReq from A."""
    if len(state.accept_log) > len(state.request_log):
        return "more acceptances than join requests"
    if state.request_log[: len(state.accept_log)] != state.accept_log:
        return (
            f"acceptances {state.accept_log} not a prefix of "
            f"requests {state.request_log}"
        )
    return None


def check_agreement(model: EnclavesModel, state: GlobalState) -> str | None:
    """Both Connected ⇒ same nonce and same key (§5.4)."""
    if isinstance(state.usr, UConnected) and isinstance(state.lead, LConnected):
        if state.usr.nonce != state.lead.nonce or state.usr.key != state.lead.key:
            return (
                f"agreement violated: user ({state.usr.nonce!r}, "
                f"{state.usr.key!r}) vs leader ({state.lead.nonce!r}, "
                f"{state.lead.key!r})"
            )
    return None


def check_user_key_in_use(model: EnclavesModel, state: GlobalState) -> str | None:
    """A holds K_a ⇒ InUse(K_a, q) (§5.4): the leader also holds it."""
    if isinstance(state.usr, UConnected):
        if not EnclavesModel.in_use(state, state.usr.key):
            return (
                f"user holds {state.usr.key!r} but the leader does not "
                "have it in use"
            )
    return None


def check_inuse_in_trace(model: EnclavesModel, state: GlobalState) -> str | None:
    """Lemma 1 of §5.2: InUse(K_a, q) ⇒ K_a ∈ Parts(trace).

    "Once K_a is in use, it is no longer fresh and thus any key that
    nontrusted agents might generate in the future will be distinct."
    """
    for key in model.session_keys_in_use(state):
        if key not in state.trace_parts:
            return f"Lemma 1 violated: {key!r} in use but not in Parts(trace)"
    return None


def check_no_duplicates(model: EnclavesModel, state: GlobalState) -> str | None:
    """No admin payload accepted twice within a session."""
    if len(set(state.rcv)) != len(state.rcv):
        return f"duplicate admin payload accepted: {state.rcv}"
    return None


#: The default invariant suite, in the order the paper establishes them.
ALL_CHECKS: dict[str, Check] = {
    "regularity": check_regularity,
    "longterm_secrecy": check_longterm_secrecy,
    "session_secrecy": check_session_secrecy,
    "coideal_invariant": check_coideal_invariant,
    "prefix": check_prefix,
    "authentication": check_authentication,
    "agreement": check_agreement,
    "user_key_in_use": check_user_key_in_use,
    "inuse_in_trace": check_inuse_in_trace,
    "no_duplicates": check_no_duplicates,
}
