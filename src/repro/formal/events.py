"""Events and traces (paper §4).

A trace is a sequence of events; each event is either a message
``Msg(label, sender, recipient, content)`` or an ``Oops(X)`` — "field X
(typically a session key) is communicated to all agents".  Only the
*contents* matter for knowledge and for the predicates of §5 (the label
and addressing are unauthenticated claims); ``contents_of`` extracts the
paper's ``trace(q)`` underline-set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.formal.fields import Field


class MsgLabel(enum.Enum):
    """Message labels of the improved protocol (§3.2)."""

    AUTH_INIT_REQ = "AuthInitReq"
    AUTH_KEY_DIST = "AuthKeyDist"
    AUTH_ACK_KEY = "AuthAckKey"
    ADMIN_MSG = "AdminMsg"
    ACK = "Ack"
    REQ_CLOSE = "ReqClose"
    SPY = "Spy"  # a forged/injected message from a nontrusted agent


@dataclass(frozen=True, slots=True)
class Msg:
    """A message event: label, apparent sender, intended recipient, content."""

    label: MsgLabel
    sender: str
    recipient: str
    content: Field

    def __repr__(self) -> str:
        return (
            f"{self.label.value}({self.sender}->{self.recipient}: "
            f"{self.content!r})"
        )


@dataclass(frozen=True, slots=True)
class Oops:
    """An oops event: ``content`` becomes public (paper §4, after [11])."""

    content: Field

    def __repr__(self) -> str:
        return f"Oops({self.content!r})"


Event = Msg | Oops


def contents_of(trace: tuple[Event, ...]) -> tuple[Field, ...]:
    """The contents occurring in a trace (the paper's underlined trace)."""
    return tuple(
        e.content for e in trace
    )
