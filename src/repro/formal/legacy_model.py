"""Symbolic model of the LEGACY §2.2 protocols — flaw discovery.

The attack library (`repro.attacks`) demonstrates the §2.3 weaknesses
with *scripted* concrete attacks.  This model lets the explorer
**discover** them: the legacy message shapes and FSMs are encoded
symbolically, the same §5 invariants are checked, and bounded
exploration finds the violations the paper describes — replayable
rekeying and forgeable membership notices — as counterexample traces,
with no attack scripted anywhere.

Modelled slice (enough to expose the flaws; the pre-auth exchange is
elided because its flaw — the forged plaintext denial — is a liveness
attack, invisible to safety checking):

* join (3 messages, with the group key inside message 2)::

      A -> L : {A, L, N1}_{P_a}
      L -> A : {L, A, N1, N2, K_a, K_g}_{P_a}
      A -> L : {N2}_{K_a}

* rekey (NO freshness — the §2.3 flaw)::

      L -> A : {K_g'}_{K_a}          (A applies it, records it in rcv)

* leave: plaintext; L discards K_a and Oops's BOTH K_a and the group
  keys A held (a leaver keeps its old group keys — "a past member of
  the group who has kept the old key K'_g", §2.3).

Checked properties (legacy variants in :data:`LEGACY_CHECKS`):

* ``group_key_freshness`` — A's current group key was distributed by
  the *most recent* rekey (no reversion).  The explorer violates this
  via a replayed old ``new_key`` message: the §2.3 attack, found
  automatically.
* ``group_key_secrecy`` — A's current group key is unknown to the spy.
  Violated through the same replay once the old key has been Oops'd.
* ``rekey_no_duplication`` — no rekey message applied twice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.formal.fields import (
    Agent,
    Concat,
    Crypt,
    Field,
    LongTerm,
    NonceF,
    SessionK,
)
from repro.formal.knowledge import KnowledgeState, parts


@dataclass(frozen=True, slots=True)
class LUserIdle:
    """Legacy user: not in the group."""


@dataclass(frozen=True, slots=True)
class LUserWaiting:
    """Legacy user: sent auth message 1 with ``nonce``."""

    nonce: NonceF


@dataclass(frozen=True, slots=True)
class LUserMember:
    """Legacy user: in the group with a session key and a group key."""

    key: SessionK
    group_key: SessionK  # group keys reuse the symbolic key sort


LegacyUserState = LUserIdle | LUserWaiting | LUserMember


@dataclass(frozen=True, slots=True)
class LLeadIdle:
    """Legacy leader: A not connected."""


@dataclass(frozen=True, slots=True)
class LLeadWaiting:
    """Legacy leader: sent auth message 2, awaiting {N2}_{K_a}."""

    nonce: NonceF
    key: SessionK


@dataclass(frozen=True, slots=True)
class LLeadMember:
    """Legacy leader: A is a member under session key ``key``."""

    key: SessionK


LegacyLeaderState = LLeadIdle | LLeadWaiting | LLeadMember


@dataclass(frozen=True)
class LegacyConfig:
    """Exploration bounds for the legacy model."""

    max_sessions: int = 1
    max_rekeys: int = 2
    #: Bound on how many new_key messages A may apply.  The flaw is
    #: that A *can* re-apply old ones; without a bound the state space
    #: is infinite (each application is a distinct state).
    max_applies: int = 4
    spy_budget: int = 1
    user: str = "A"
    leader: str = "L"


@dataclass(frozen=True)
class LegacyState:
    """Global state of the legacy model."""

    usr: LegacyUserState
    lead: LegacyLeaderState
    contents: frozenset[Field]
    trace_parts: frozenset[Field]
    spy: KnowledgeState
    #: group keys by distribution order (leader's view); the *last* one
    #: is current.
    distributed: tuple[SessionK, ...]
    #: rekey messages A applied, in order (with duplicates if any).
    applied: tuple[SessionK, ...]
    oopsed: frozenset[SessionK]
    next_id: int
    sessions: int = 0
    rekeys: int = 0
    spy_count: int = 0

    def fingerprint(self) -> tuple:
        return (
            self.usr, self.lead, self.contents, self.spy.accessible,
            self.distributed, self.applied, self.sessions, self.rekeys,
            self.spy_count,
        )


@dataclass(frozen=True)
class LegacyTransition:
    actor: str
    description: str
    target: LegacyState


class LegacyEnclavesModel:
    """Transition generator for the legacy protocol slice."""

    def __init__(self, config: LegacyConfig | None = None) -> None:
        self.config = config if config is not None else LegacyConfig()
        self.A = Agent(self.config.user)
        self.L = Agent(self.config.leader)
        self.Pa = LongTerm(self.config.user)

    def initial_state(self) -> LegacyState:
        return LegacyState(
            usr=LUserIdle(),
            lead=LLeadIdle(),
            contents=frozenset(),
            trace_parts=frozenset(),
            spy=KnowledgeState.from_fields([self.A, self.L]),
            distributed=(),
            applied=(),
            oopsed=frozenset(),
            next_id=0,
        )

    # -- helpers -----------------------------------------------------------

    def _emit(self, state: LegacyState, actor: str, description: str,
              content: Field, **changes) -> LegacyTransition:
        target = replace(
            state,
            contents=state.contents | {content},
            trace_parts=state.trace_parts | parts([content]),
            spy=state.spy.add(content),
            **changes,
        )
        return LegacyTransition(actor, description, target)

    def _silent(self, state: LegacyState, actor: str, description: str,
                **changes) -> LegacyTransition:
        return LegacyTransition(actor, description,
                                replace(state, **changes))

    # -- transitions -----------------------------------------------------------

    def successors(self, state: LegacyState) -> list[LegacyTransition]:
        out: list[LegacyTransition] = []
        out.extend(self._user(state))
        out.extend(self._leader(state))
        return out

    def _user(self, state: LegacyState) -> Iterator[LegacyTransition]:
        cfg = self.config
        usr = state.usr
        if isinstance(usr, LUserIdle) and state.sessions < cfg.max_sessions:
            n1 = NonceF(state.next_id)
            content = Crypt(self.Pa, Concat((self.A, self.L, n1)))
            yield self._emit(
                state, "A", f"A sends legacy auth1({n1})", content,
                usr=LUserWaiting(n1),
                next_id=state.next_id + 1,
                sessions=state.sessions + 1,
            )
        elif isinstance(usr, LUserWaiting):
            # Accept {L, A, N1, N2, K_a, K_g}_{P_a}.
            for f in state.trace_parts:
                if (
                    isinstance(f, Crypt) and f.key == self.Pa
                    and isinstance(f.body, Concat)
                    and len(f.body.parts) == 6
                ):
                    l_, a_, n1, n2, ka, kg = f.body.parts
                    if (
                        l_ == self.L and a_ == self.A and n1 == usr.nonce
                        and isinstance(ka, SessionK)
                        and isinstance(kg, SessionK)
                    ):
                        content = Crypt(ka, n2)
                        yield self._emit(
                            state, "A", "A completes legacy auth", content,
                            usr=LUserMember(ka, kg),
                            applied=state.applied + (kg,),
                        )
        elif isinstance(usr, LUserMember):
            # FLAW (§2.3): accept ANY {K_g'}_{K_a} — no freshness check.
            # (Bounded by max_applies or the state space is infinite:
            # the same message can be applied forever.)
            if len(state.applied) < cfg.max_applies:
                for f in state.trace_parts:
                    if (
                        isinstance(f, Crypt) and f.key == usr.key
                        and isinstance(f.body, SessionK)
                    ):
                        yield self._silent(
                            state, "A",
                            f"A applies new_key({f.body}) [no freshness]",
                            usr=LUserMember(usr.key, f.body),
                            applied=state.applied + (f.body,),
                        )
            # Leave: plaintext request; modelled as the user departing
            # and its keys becoming public (the leaver keeps them).
            leak = Concat((usr.key, usr.group_key))
            target = replace(
                state,
                usr=LUserIdle(),
                contents=state.contents | {leak},
                trace_parts=state.trace_parts | parts([leak]),
                spy=state.spy.add(leak),
                oopsed=state.oopsed | {usr.key, usr.group_key},
                applied=(),
            )
            yield LegacyTransition(
                "A", f"A leaves; Oops({usr.key}, {usr.group_key})", target
            )

    def _leader(self, state: LegacyState) -> Iterator[LegacyTransition]:
        cfg = self.config
        lead = state.lead
        if isinstance(lead, LLeadIdle):
            for f in state.trace_parts:
                if (
                    isinstance(f, Crypt) and f.key == self.Pa
                    and isinstance(f.body, Concat)
                    and len(f.body.parts) == 3
                ):
                    a_, l_, n1 = f.body.parts
                    if a_ == self.A and l_ == self.L and isinstance(n1, NonceF):
                        n2 = NonceF(state.next_id)
                        ka = SessionK(state.next_id + 1)
                        kg = (
                            state.distributed[-1]
                            if state.distributed
                            else SessionK(state.next_id + 2)
                        )
                        distributed = (
                            state.distributed if state.distributed
                            else state.distributed + (kg,)
                        )
                        content = Crypt(
                            self.Pa,
                            Concat((self.L, self.A, n1, n2, ka, kg)),
                        )
                        yield self._emit(
                            state, "L", f"L answers legacy auth1 with {ka}",
                            content,
                            lead=LLeadWaiting(n2, ka),
                            distributed=distributed,
                            next_id=state.next_id + 3,
                        )
        elif isinstance(lead, LLeadWaiting):
            if Crypt(lead.key, lead.nonce) in state.trace_parts:
                yield self._silent(
                    state, "L", "L accepts legacy auth3; A is a member",
                    lead=LLeadMember(lead.key),
                )
        elif isinstance(lead, LLeadMember):
            if state.rekeys < cfg.max_rekeys:
                kg = SessionK(state.next_id)
                content = Crypt(lead.key, kg)
                yield self._emit(
                    state, "L", f"L rekeys to {kg} [legacy new_key]",
                    content,
                    lead=LLeadMember(lead.key),
                    distributed=state.distributed + (kg,),
                    next_id=state.next_id + 1,
                    rekeys=state.rekeys + 1,
                )
            if isinstance(state.usr, LUserIdle):
                # Leader notices the (plaintext) leave.
                yield self._silent(
                    state, "L", "L closes A's legacy session",
                    lead=LLeadIdle(),
                )


# -- legacy-specific checks -----------------------------------------------------


def check_group_key_freshness(model: LegacyEnclavesModel,
                              state: LegacyState) -> str | None:
    """A member must never *revert* to an older group key after having
    applied a newer one — that is precisely the §2.3 replay attack's
    observable effect."""
    if isinstance(state.usr, LUserMember) and state.distributed:
        held = state.usr.group_key
        if held in state.applied:
            held_pos = state.distributed.index(held) \
                if held in state.distributed else -1
            newer = state.distributed[held_pos + 1:] if held_pos >= 0 else ()
            if any(k in state.applied for k in newer):
                return (
                    f"group key reverted: member holds {held!r} after "
                    f"having applied a newer key"
                )
    return None


def check_group_key_secrecy(model: LegacyEnclavesModel,
                            state: LegacyState) -> str | None:
    """The member's current group key must be unknown to nontrusted
    agents (past members included)."""
    if isinstance(state.usr, LUserMember):
        if state.spy.knows(state.usr.group_key):
            return (
                f"group key {state.usr.group_key!r} held by the member is "
                "known to the spy (e.g. a past member)"
            )
    return None


def check_rekey_no_duplication(model: LegacyEnclavesModel,
                               state: LegacyState) -> str | None:
    """No key-distribution message applied more than once (the §3.1
    no-duplication requirement, legacy rendering): a key appearing
    twice in the applied list means a duplicate or replay landed."""
    for i in range(1, len(state.applied)):
        if state.applied[i] in state.applied[:i]:
            return f"rekey re-applied: {state.applied[i]!r}"
    return None


LEGACY_CHECKS = {
    "group_key_freshness": check_group_key_freshness,
    "group_key_secrecy": check_group_key_secrecy,
    "rekey_no_duplication": check_rekey_no_duplication,
}
