"""Exhaustive small-world model of the quorum certificate layer.

The PVS-style counterpart for :mod:`repro.quorum`: where the §4-5 model
checks the member-facing protocol, this module checks the *replica*
layer's three safety claims by brute force over every enumerable small
world, using the production :mod:`repro.quorum.attestation` primitives
(real keys, real MACs) rather than an abstraction of them.

A **world** is one complete adversarial scenario for ``n = 3f + 1``
replicas and two conflicting statements ``X`` (the true state, the one
an honest primary's journal stream shows) and ``Y`` (a fork):

* any subset of at most ``f`` replicas is Byzantine;
* an honest non-primary replica signs exactly the statement the
  primary's shipped stream showed it — ``X`` under an honest primary;
  either one (the primary's choice, enumerated) under a Byzantine
  primary — and never both;
* a Byzantine replica signs any subset of ``{X, Y}``;
* the adversary then assembles *every* possible certificate from the
  signatures that exist.

Checked in every world, for every assemblable certificate and every
conflicting certificate pair:

1. **Forgery resistance** — every certificate that verifies at the
   ``f + 1`` threshold contains an honest signer; under an honest
   primary no certificate for ``Y`` verifies at all.  (Sub-threshold
   assemblies are also checked to be rejected.)
2. **Detectability** — any two verifying certificates over conflicting
   statements form an :class:`~repro.quorum.attestation.\
EquivocationEvidence` blob that itself verifies: one honest observer
   holding both certificates can always convict.
3. **Accusation soundness** — the accused replica (the evidence
   builder's choice *and* every accusation :meth:`EquivocationEvidence.\
verify` would accept) is always actually Byzantine.  An honest replica
   can never be convicted, and fabricated evidence (non-conflicting or
   under-signed certificates, or an accusation violating the rule)
   never verifies.

The negative control ``threshold_override=1`` shows the model has
teeth: with certificates of one signature, a lone Byzantine replica
forges freely and the forgery-resistance check reports violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product

from repro.crypto.keys import KeyMaterial
from repro.exceptions import QuorumError
from repro.quorum.attestation import (
    Attestation,
    EquivocationEvidence,
    MutationStatement,
    QuorumCertificate,
    build_evidence,
    derive_attestation_key,
)

#: The primary's replica id in every world.
PRIMARY = "p"

#: The two statement names; ``X`` is the true state.
STATEMENT_NAMES = ("X", "Y")


def _replicas(f: int) -> tuple[str, ...]:
    return (PRIMARY,) + tuple(f"w{i}" for i in range(1, 3 * f + 1))


def _statements(session_id: str = "grp") -> dict[str, MutationStatement]:
    """Two statements conflicting on both axes the layer watches: one
    journal seq bound to two contents, one epoch to two keys."""
    return {
        "X": MutationStatement(session_id, 5, 3, "d" * 16, "aaaaaaaa"),
        "Y": MutationStatement(session_id, 5, 3, "d" * 16, "bbbbbbbb"),
    }


@dataclass(frozen=True)
class QuorumWorld:
    """One adversarial scenario: who is Byzantine, who signed what."""

    byzantine: frozenset[str]
    #: honest replica -> the statement name the primary showed it
    observed: dict[str, str]
    #: replica -> statement names it signed
    signed: dict[str, frozenset[str]]


@dataclass
class QuorumModelReport:
    """Outcome of one exhaustive run."""

    f: int
    threshold: int
    worlds: int = 0
    certificates_checked: int = 0
    pairs_checked: int = 0
    accusations_checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def enumerate_worlds(f: int = 1) -> list[QuorumWorld]:
    """Every world for ``n = 3f + 1`` replicas and ``<= f`` traitors."""
    replicas = _replicas(f)
    sign_choices = [
        frozenset(), frozenset({"X"}), frozenset({"Y"}),
        frozenset({"X", "Y"}),
    ]
    byzantine_sets = [
        frozenset(combo)
        for size in range(f + 1)
        for combo in combinations(replicas, size)
    ]
    worlds: list[QuorumWorld] = []
    for byzantine in byzantine_sets:
        honest = [r for r in replicas if r not in byzantine]
        if PRIMARY in byzantine:
            # A forking primary shows each honest replica either world.
            shown_options = product(STATEMENT_NAMES, repeat=len(honest))
        else:
            # An honest primary has one stream: everyone sees the truth.
            shown_options = [("X",) * len(honest)]
        for shown in shown_options:
            observed = dict(zip(honest, shown))
            traitors = sorted(byzantine)
            for choices in product(sign_choices, repeat=len(traitors)):
                signed = {
                    r: frozenset({observed[r]}) for r in honest
                }
                signed.update(zip(traitors, choices))
                worlds.append(QuorumWorld(
                    byzantine=byzantine, observed=observed, signed=signed,
                ))
    return worlds


def check_quorum_model(
    f: int = 1,
    threshold_override: int | None = None,
) -> QuorumModelReport:
    """Run every check in every world; see the module docstring."""
    replicas = _replicas(f)
    threshold = threshold_override if threshold_override else f + 1
    report = QuorumModelReport(f=f, threshold=threshold)
    root = KeyMaterial(bytes(range(32)))
    keys = {r: derive_attestation_key(root, r) for r in replicas}
    statements = _statements()

    for world in enumerate_worlds(f):
        report.worlds += 1
        attestations = {
            (r, name): Attestation.sign(r, statements[name], keys[r])
            for r in replicas
            for name in world.signed[r]
        }
        valid: dict[str, list[QuorumCertificate]] = {"X": [], "Y": []}
        for name in STATEMENT_NAMES:
            signers = sorted(
                r for r in replicas if name in world.signed[r]
            )
            for size in range(1, len(signers) + 1):
                for combo in combinations(signers, size):
                    cert = QuorumCertificate(tuple(
                        attestations[(r, name)] for r in combo
                    ))
                    report.certificates_checked += 1
                    try:
                        cert.verify(keys, threshold)
                    except QuorumError:
                        if size >= threshold:
                            report.violations.append(
                                f"{world}: well-formed certificate "
                                f"{combo} for {name} failed to verify"
                            )
                        continue
                    if size < threshold:
                        report.violations.append(
                            f"{world}: sub-threshold certificate "
                            f"{combo} for {name} verified"
                        )
                        continue
                    valid[name].append(cert)
                    # 1 — forgery resistance.
                    if not any(
                        r not in world.byzantine for r in combo
                    ):
                        report.violations.append(
                            f"{world}: certificate for {name} with only "
                            f"Byzantine signers {combo} verified"
                        )
                    if (
                        name == "Y"
                        and PRIMARY not in world.byzantine
                    ):
                        report.violations.append(
                            f"{world}: honest primary, yet a fork "
                            f"certificate {combo} verified"
                        )

        # 2 + 3 — every conflicting pair convicts, and only traitors.
        for cert_x in valid["X"]:
            for cert_y in valid["Y"]:
                report.pairs_checked += 1
                evidence = build_evidence(cert_x, cert_y, PRIMARY)
                try:
                    evidence.verify(keys, threshold, PRIMARY)
                except QuorumError as exc:
                    report.violations.append(
                        f"{world}: genuine fork evidence failed to "
                        f"verify ({exc})"
                    )
                    continue
                if evidence.accused not in world.byzantine:
                    report.violations.append(
                        f"{world}: evidence convicted honest replica "
                        f"{evidence.accused!r} "
                        f"(certs {sorted(cert_x.signers)} / "
                        f"{sorted(cert_y.signers)})"
                    )
                # Every accusation verify() accepts must name a traitor.
                for candidate in replicas:
                    report.accusations_checked += 1
                    claim = EquivocationEvidence(
                        accused=candidate, first=cert_x, second=cert_y
                    )
                    try:
                        claim.verify(keys, threshold, PRIMARY)
                    except QuorumError:
                        continue
                    if candidate not in world.byzantine:
                        report.violations.append(
                            f"{world}: accusation of honest "
                            f"{candidate!r} verified"
                        )
    return report


def format_report(report: QuorumModelReport) -> str:
    lines = [
        f"quorum model: f={report.f} threshold={report.threshold}",
        f"  worlds explored:        {report.worlds}",
        f"  certificates checked:   {report.certificates_checked}",
        f"  conflicting pairs:      {report.pairs_checked}",
        f"  accusations checked:    {report.accusations_checked}",
        f"  violations:             {len(report.violations)}",
    ]
    lines.extend(f"    {v}" for v in report.violations[:10])
    return "\n".join(lines)


__all__ = [
    "PRIMARY",
    "QuorumModelReport",
    "QuorumWorld",
    "check_quorum_model",
    "enumerate_worlds",
    "format_report",
]
