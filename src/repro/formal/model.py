"""The global state-transition model of paper §4.

The model is the asynchronous composition of

* an honest user **A** (the state machine of Figure 2),
* an honest leader **L** (one Figure-3 machine per user),
* a pool of nontrusted agents — the **Spy** — whose behaviour is any
  message in ``Gen(Spy, q) = Synth(Know(Spy, q) ∪ FreshFields(q))``,
* optionally a **compromised member C**: a registered user whose
  long-term key ``P_c`` is in the spy's initial knowledge, so the spy
  can run complete legitimate sessions as C through the honest leader
  (this is the paper's "nontrustworthy group member").

Message contents follow §5.3's formal shapes (identities folded inside
the encryption)::

    AuthInitReq : {A, L, N1}_{P_a}
    AuthKeyDist : {L, A, N1, N2, K}_{P_a}
    AuthAckKey  : {A, L, N2, N3}_{K}
    AdminMsg    : {L, A, N_prev, N_new, X}_{K}
    Ack         : {A, L, N_prev, N_new}_{K}
    ReqClose    : {A, L}_{K}

Reception is Paulson-style: an agent can fire a receive transition when
a field matching the expected pattern occurs in ``Parts(trace)``.  Fresh
nonces/keys/data come from a monotone allocator in the state, which
makes every fresh value globally unique (the paper's FreshFields).

State identity deliberately omits the event list: two interleavings that
produce the same local states, the same ``Parts(trace)``, the same spy
knowledge, and the same logs are the same state for exploration purposes
(the guards and the §5 predicates depend only on those).  The explorer
keeps representative paths separately for counterexample reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.formal.events import Event, Msg, MsgLabel, Oops
from repro.formal.fields import (
    Agent,
    Concat,
    Crypt,
    Data,
    Field,
    LongTerm,
    NonceF,
    SessionK,
)
from repro.formal.knowledge import KnowledgeState

# -- local states (Figures 2 and 3) -------------------------------------------


@dataclass(frozen=True, slots=True)
class UNotConnected:
    """User: out of the group, no authentication in progress."""


@dataclass(frozen=True, slots=True)
class UWaitingForKey:
    """User: sent AuthInitReq with ``nonce``, awaiting AuthKeyDist."""

    nonce: NonceF


@dataclass(frozen=True, slots=True)
class UConnected:
    """User: in the group; ``nonce`` is the last nonce we generated."""

    nonce: NonceF
    key: SessionK


UserState = UNotConnected | UWaitingForKey | UConnected


@dataclass(frozen=True, slots=True)
class LNotConnected:
    """Leader: this user is not connected."""


@dataclass(frozen=True, slots=True)
class LWaitingForKeyAck:
    """Leader: sent AuthKeyDist (fresh ``key``), awaiting ack of ``nonce``.

    ``origin`` is the request nonce N1 this session answers; it ties an
    eventual acceptance back to the AuthInitReq that triggered it, which
    is what the §5.4 proper-authentication property talks about.
    """

    nonce: NonceF
    key: SessionK
    origin: NonceF


@dataclass(frozen=True, slots=True)
class LConnected:
    """Leader: user is a member; ``nonce`` is the user's latest nonce."""

    nonce: NonceF
    key: SessionK


@dataclass(frozen=True, slots=True)
class LWaitingForAck:
    """Leader: sent AdminMsg with ``nonce``, awaiting the Ack."""

    nonce: NonceF
    key: SessionK


LeaderState = LNotConnected | LWaitingForKeyAck | LConnected | LWaitingForAck


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class ModelConfig:
    """Exploration bounds and model options."""

    #: How many times A may start the join protocol.
    max_sessions: int = 1
    #: How many AdminMsgs L may send to A (across all sessions).
    max_admin: int = 2
    #: How many forged messages the spy may inject.
    spy_budget: int = 1
    #: Model a compromised member C (P_c known to the spy).
    compromised_member: bool = False
    #: How many sessions the spy may run as C.
    max_c_sessions: int = 1
    #: How many AdminMsgs L may send to C.
    max_c_admin: int = 1

    user: str = "A"
    leader: str = "L"
    compromised: str = "C"


# -- global state -------------------------------------------------------------


@dataclass(frozen=True)
class GlobalState:
    """One global state q of the system."""

    usr: UserState
    lead: LeaderState
    lead_c: LeaderState
    #: The trace contents (the paper's underlined trace(q)), as a set.
    contents: frozenset[Field]
    #: Parts(trace contents), maintained incrementally.
    trace_parts: frozenset[Field]
    #: Analz(I(Spy) ∪ trace contents), maintained incrementally.
    spy: KnowledgeState
    #: snd_A / rcv_A — admin payloads sent by L to A / accepted by A (§5.4).
    snd: tuple[Field, ...]
    rcv: tuple[Field, ...]
    #: request/accept logs for proper authentication (§5.4): N1 nonces.
    request_log: tuple[NonceF, ...]
    accept_log: tuple[NonceF, ...]
    #: Oops'd (published) session keys, for documentation/assertions.
    oopsed: frozenset[SessionK]
    #: fresh-value allocator (monotone).
    next_id: int
    # budget counters
    sessions: int = 0
    admin_count: int = 0
    spy_count: int = 0
    c_sessions: int = 0
    c_admin: int = 0

    def fingerprint(self) -> tuple:
        """Identity for visited-state merging (see module docstring)."""
        return (
            self.usr, self.lead, self.lead_c, self.contents,
            self.spy.accessible, self.snd, self.rcv,
            self.request_log, self.accept_log,
            self.sessions, self.admin_count, self.spy_count,
            self.c_sessions, self.c_admin,
        )


@dataclass(frozen=True)
class Transition:
    """One edge of the global transition relation."""

    actor: str
    description: str
    event: Optional[Event]
    target: GlobalState


# -- the model -----------------------------------------------------------------


class EnclavesModel:
    """Transition generator for the improved Enclaves protocol."""

    def __init__(self, config: ModelConfig | None = None) -> None:
        self.config = config if config is not None else ModelConfig()
        c = self.config
        self.A = Agent(c.user)
        self.L = Agent(c.leader)
        self.C = Agent(c.compromised)
        self.Pa = LongTerm(c.user)
        self.Pc = LongTerm(c.compromised)

    # -- initial state ---------------------------------------------------------

    def initial_state(self) -> GlobalState:
        """q0: everyone disconnected; the spy knows identities (public)
        and, if configured, the compromised member's long-term key."""
        spy_initial: list[Field] = [self.A, self.L, self.C]
        if self.config.compromised_member:
            spy_initial.append(self.Pc)
        return GlobalState(
            usr=UNotConnected(),
            lead=LNotConnected(),
            lead_c=LNotConnected(),
            contents=frozenset(),
            trace_parts=frozenset(),
            spy=KnowledgeState.from_fields(spy_initial),
            snd=(),
            rcv=(),
            request_log=(),
            accept_log=(),
            oopsed=frozenset(),
            next_id=0,
        )

    # -- message constructors (shapes of §5.3) ------------------------------------

    def auth_init_req(self, user: Agent, key: LongTerm, n1: NonceF) -> Crypt:
        return Crypt(key, Concat((user, self.L, n1)))

    def auth_key_dist(
        self, user: Agent, key: LongTerm, n1: NonceF, n2: NonceF, k: SessionK
    ) -> Crypt:
        return Crypt(key, Concat((self.L, user, n1, n2, k)))

    def key_ack(self, user: Agent, k: SessionK, n: NonceF, n2: NonceF) -> Crypt:
        return Crypt(k, Concat((user, self.L, n, n2)))

    def admin_msg(
        self, user: Agent, k: SessionK, n_prev: NonceF, n_new: NonceF, x: Field
    ) -> Crypt:
        return Crypt(k, Concat((self.L, user, n_prev, n_new, x)))

    def req_close(self, user: Agent, k: SessionK) -> Crypt:
        return Crypt(k, Concat((user, self.L)))

    # -- pattern finders over Parts(trace) -----------------------------------------

    def find_key_dists(
        self, state: GlobalState, user: Agent, key: LongTerm, n1: NonceF
    ) -> Iterator[tuple[NonceF, SessionK]]:
        """All (N2, K) with {L, user, n1, N2, K}_{key} ∈ Parts(trace)."""
        for f in state.trace_parts:
            if (
                isinstance(f, Crypt)
                and f.key == key
                and isinstance(f.body, Concat)
                and len(f.body.parts) == 5
            ):
                l_, u_, n1_, n2, k = f.body.parts
                if (
                    l_ == self.L and u_ == user and n1_ == n1
                    and isinstance(n2, NonceF) and isinstance(k, SessionK)
                ):
                    yield n2, k

    def find_key_acks(
        self, state: GlobalState, user: Agent, k: SessionK, n: NonceF
    ) -> Iterator[NonceF]:
        """All N' with {user, L, n, N'}_{k} ∈ Parts(trace)."""
        for f in state.trace_parts:
            if (
                isinstance(f, Crypt)
                and f.key == k
                and isinstance(f.body, Concat)
                and len(f.body.parts) == 4
            ):
                u_, l_, n_, n2 = f.body.parts
                if u_ == user and l_ == self.L and n_ == n and isinstance(n2, NonceF):
                    yield n2

    def find_admins(
        self, state: GlobalState, user: Agent, k: SessionK, n_prev: NonceF
    ) -> Iterator[tuple[NonceF, Field]]:
        """All (N', X) with {L, user, n_prev, N', X}_{k} ∈ Parts(trace)."""
        for f in state.trace_parts:
            if (
                isinstance(f, Crypt)
                and f.key == k
                and isinstance(f.body, Concat)
                and len(f.body.parts) == 5
            ):
                l_, u_, np_, nn, x = f.body.parts
                if (
                    l_ == self.L and u_ == user and np_ == n_prev
                    and isinstance(nn, NonceF)
                ):
                    yield nn, x

    def find_inits(
        self, state: GlobalState, user: Agent, key: LongTerm
    ) -> Iterator[NonceF]:
        """All N with {user, L, N}_{key} ∈ Parts(trace)."""
        for f in state.trace_parts:
            if (
                isinstance(f, Crypt)
                and f.key == key
                and isinstance(f.body, Concat)
                and len(f.body.parts) == 3
            ):
                u_, l_, n = f.body.parts
                if u_ == user and l_ == self.L and isinstance(n, NonceF):
                    yield n

    def close_present(self, state: GlobalState, user: Agent, k: SessionK) -> bool:
        """{user, L}_{k} ∈ Parts(trace)?"""
        return Crypt(k, Concat((user, self.L))) in state.trace_parts

    # -- state evolution helpers ----------------------------------------------

    @staticmethod
    def _extend(state: GlobalState, content: Field, **changes) -> dict:
        """Shared state updates for any event with ``content``: grow
        Parts(trace) and the spy's knowledge (all agents observe all
        events, §4.2)."""
        from repro.formal.knowledge import parts

        new_parts = state.trace_parts | parts([content])
        return dict(
            contents=state.contents | {content},
            trace_parts=new_parts,
            spy=state.spy.add(content),
            **changes,
        )

    def _send(
        self,
        state: GlobalState,
        actor: str,
        description: str,
        label: MsgLabel,
        sender: str,
        recipient: str,
        content: Field,
        **changes,
    ) -> Transition:
        updates = self._extend(state, content, **changes)
        target = replace(state, **updates)
        return Transition(
            actor=actor,
            description=description,
            event=Msg(label, sender, recipient, content),
            target=target,
        )

    def _silent(
        self, state: GlobalState, actor: str, description: str, **changes
    ) -> Transition:
        """A local transition with no message (e.g., accepting an ack)."""
        return Transition(
            actor=actor,
            description=description,
            event=None,
            target=replace(state, **changes),
        )

    # -- successor generation ------------------------------------------------------

    def successors(self, state: GlobalState) -> list[Transition]:
        """All enabled transitions of the asynchronous composition."""
        out: list[Transition] = []
        out.extend(self._user_transitions(state))
        out.extend(self._leader_transitions(state))
        if self.config.compromised_member:
            out.extend(self._leader_c_transitions(state))
        out.extend(self._spy_transitions(state))
        return out

    # .. honest user A (Figure 2) ..................................................

    def _user_transitions(self, state: GlobalState) -> Iterator[Transition]:
        cfg = self.config
        usr = state.usr

        if isinstance(usr, UNotConnected) and state.sessions < cfg.max_sessions:
            n1 = NonceF(state.next_id)
            content = self.auth_init_req(self.A, self.Pa, n1)
            yield self._send(
                state, "A", f"A sends AuthInitReq({n1})",
                MsgLabel.AUTH_INIT_REQ, cfg.user, cfg.leader, content,
                usr=UWaitingForKey(n1),
                next_id=state.next_id + 1,
                sessions=state.sessions + 1,
                request_log=state.request_log + (n1,),
            )

        elif isinstance(usr, UWaitingForKey):
            for n2, k in self.find_key_dists(state, self.A, self.Pa, usr.nonce):
                n3 = NonceF(state.next_id)
                content = self.key_ack(self.A, k, n2, n3)
                yield self._send(
                    state, "A", f"A accepts AuthKeyDist, acks with {n3}",
                    MsgLabel.AUTH_ACK_KEY, cfg.user, cfg.leader, content,
                    usr=UConnected(n3, k),
                    next_id=state.next_id + 1,
                )

        elif isinstance(usr, UConnected):
            for n_new, x in self.find_admins(state, self.A, usr.key, usr.nonce):
                n_next = NonceF(state.next_id)
                content = self.key_ack(self.A, usr.key, n_new, n_next)
                yield self._send(
                    state, "A", f"A accepts AdminMsg({x}), acks with {n_next}",
                    MsgLabel.ACK, cfg.user, cfg.leader, content,
                    usr=UConnected(n_next, usr.key),
                    next_id=state.next_id + 1,
                    rcv=state.rcv + (x,),
                )
            content = self.req_close(self.A, usr.key)
            yield self._send(
                state, "A", "A sends ReqClose and leaves",
                MsgLabel.REQ_CLOSE, cfg.user, cfg.leader, content,
                usr=UNotConnected(),
                rcv=(),  # rcv_A emptied when A leaves (§5.4)
            )

    # .. honest leader L, session for A (Figure 3) ....................................

    def _leader_transitions(self, state: GlobalState) -> Iterator[Transition]:
        cfg = self.config
        lead = state.lead

        if isinstance(lead, LNotConnected):
            for n1 in self.find_inits(state, self.A, self.Pa):
                n2 = NonceF(state.next_id)
                k = SessionK(state.next_id + 1)
                content = self.auth_key_dist(self.A, self.Pa, n1, n2, k)
                yield self._send(
                    state, "L", f"L answers AuthInitReq({n1}) with key {k}",
                    MsgLabel.AUTH_KEY_DIST, cfg.leader, cfg.user, content,
                    lead=LWaitingForKeyAck(n2, k, origin=n1),
                    next_id=state.next_id + 2,
                )

        elif isinstance(lead, LWaitingForKeyAck):
            # Note: ReqClose is NOT accepted here.  A can only produce
            # {A, L}_{K_a} after accepting the key, i.e., after sending
            # its AuthAckKey — so the pending key ack is always consumed
            # first.  (Accepting the close here would let a close
            # overtake the ack and falsify §5.4's acceptance-prefix
            # property; Figure 3 attaches Oops transitions to the
            # Connected and WaitingForAck states only.)
            for n3 in self.find_key_acks(state, self.A, lead.key, lead.nonce):
                yield self._silent(
                    state, "L", f"L accepts AuthAckKey; A is a member ({n3})",
                    lead=LConnected(n3, lead.key),
                    accept_log=state.accept_log + (lead.origin,),
                )

        elif isinstance(lead, LConnected):
            if state.admin_count < cfg.max_admin:
                n_new = NonceF(state.next_id)
                x = Data(state.next_id + 1)
                content = self.admin_msg(self.A, lead.key, lead.nonce, n_new, x)
                yield self._send(
                    state, "L", f"L sends AdminMsg({x})",
                    MsgLabel.ADMIN_MSG, cfg.leader, cfg.user, content,
                    lead=LWaitingForAck(n_new, lead.key),
                    next_id=state.next_id + 2,
                    admin_count=state.admin_count + 1,
                    snd=state.snd + (x,),
                )
            yield from self._leader_close(state, lead.key)

        elif isinstance(lead, LWaitingForAck):
            for n_next in self.find_key_acks(state, self.A, lead.key, lead.nonce):
                yield self._silent(
                    state, "L", f"L accepts Ack({n_next})",
                    lead=LConnected(n_next, lead.key),
                )
            yield from self._leader_close(state, lead.key)

    def _leader_close(
        self, state: GlobalState, k: SessionK
    ) -> Iterator[Transition]:
        """L processes ReqClose: session ends, K_a is Oops'd (published)."""
        if not self.close_present(state, self.A, k):
            return
        updates = self._extend(
            state, k,
            lead=LNotConnected(),
            snd=(),  # snd_A emptied when L receives ReqClose (§5.4)
            oopsed=state.oopsed | {k},
        )
        target = replace(state, **updates)
        yield Transition(
            actor="L",
            description=f"L closes A's session; Oops({k})",
            event=Oops(k),
            target=target,
        )

    # .. honest leader L, session for the compromised member C ........................

    def _leader_c_transitions(self, state: GlobalState) -> Iterator[Transition]:
        """Leader-side machine for C.  The *user* side of C is the spy.

        These transitions matter because they are the only way fields of
        the form {..}_{P_c} / {..}_{K_c} authored by L enter the trace —
        the diagram obligations must survive them.
        """
        cfg = self.config
        lead = state.lead_c

        if isinstance(lead, LNotConnected) and state.c_sessions < cfg.max_c_sessions:
            for n1 in self.find_inits(state, self.C, self.Pc):
                n2 = NonceF(state.next_id)
                k = SessionK(state.next_id + 1)
                content = self.auth_key_dist(self.C, self.Pc, n1, n2, k)
                yield self._send(
                    state, "L", f"L answers C's AuthInitReq({n1}) with {k}",
                    MsgLabel.AUTH_KEY_DIST, cfg.leader, cfg.compromised, content,
                    lead_c=LWaitingForKeyAck(n2, k, origin=n1),
                    next_id=state.next_id + 2,
                    c_sessions=state.c_sessions + 1,
                )

        elif isinstance(lead, LWaitingForKeyAck):
            for n3 in self.find_key_acks(state, self.C, lead.key, lead.nonce):
                yield self._silent(
                    state, "L", "L accepts C's AuthAckKey; C is a member",
                    lead_c=LConnected(n3, lead.key),
                )

        elif isinstance(lead, LConnected):
            if state.c_admin < cfg.max_c_admin:
                n_new = NonceF(state.next_id)
                x = Data(state.next_id + 1)
                content = self.admin_msg(self.C, lead.key, lead.nonce, n_new, x)
                yield self._send(
                    state, "L", f"L sends AdminMsg({x}) to C",
                    MsgLabel.ADMIN_MSG, cfg.leader, cfg.compromised, content,
                    lead_c=LWaitingForAck(n_new, lead.key),
                    next_id=state.next_id + 2,
                    c_admin=state.c_admin + 1,
                )
            yield from self._leader_c_close(state, lead.key)

        elif isinstance(lead, LWaitingForAck):
            for n_next in self.find_key_acks(state, self.C, lead.key, lead.nonce):
                yield self._silent(
                    state, "L", "L accepts C's Ack",
                    lead_c=LConnected(n_next, lead.key),
                )
            yield from self._leader_c_close(state, lead.key)

    def _leader_c_close(
        self, state: GlobalState, k: SessionK
    ) -> Iterator[Transition]:
        if not self.close_present(state, self.C, k):
            return
        updates = self._extend(
            state, k,
            lead_c=LNotConnected(),
            oopsed=state.oopsed | {k},
        )
        yield Transition(
            actor="L",
            description=f"L closes C's session; Oops({k})",
            event=Oops(k),
            target=replace(state, **updates),
        )

    # .. the spy ...................................................................

    def _spy_transitions(self, state: GlobalState) -> Iterator[Transition]:
        """Forgeries: messages whose content is in Gen(Spy, q).

        Replays add nothing (a replayed content is already in
        Parts(trace), and every guard and predicate reads Parts(trace)),
        so only *novel* fields are generated: protocol-shaped fields
        encrypted under keys the spy actually knows (leaked long-term
        keys, Oops'd session keys, C's keys), with nonce slots filled
        from spy-known nonces plus one fresh nonce, and one fresh data
        constant for admin shapes.  This is the standard "lazy intruder"
        restriction: arbitrary other junk can never fire a guard nor
        falsify a §5 predicate, because both only inspect
        protocol-shaped patterns.
        """
        if state.spy_count >= self.config.spy_budget:
            return

        known = state.spy.accessible
        known_keys = [f for f in known if isinstance(f, (SessionK, LongTerm))]
        if not known_keys:
            return
        known_nonces = [f for f in known if isinstance(f, NonceF)]
        fresh_nonce = NonceF(state.next_id)
        fresh_data = Data(state.next_id + 1)
        nonce_pool = known_nonces + [fresh_nonce]

        users = [self.A, self.C] if self.config.compromised_member else [self.A]
        candidates: set[Field] = set()
        for key in known_keys:
            for u in users:
                # Forged AuthInitReq / ReqClose shapes.
                candidates.add(Crypt(key, Concat((u, self.L, fresh_nonce))))
                candidates.add(Crypt(key, Concat((u, self.L))))
                for n in nonce_pool:
                    # Forged key-ack/Ack and AdminMsg/AuthKeyDist shapes.
                    candidates.add(
                        Crypt(key, Concat((u, self.L, n, fresh_nonce)))
                    )
                    candidates.add(
                        Crypt(key, Concat((self.L, u, n, fresh_nonce, fresh_data)))
                    )
                    for k2 in known_keys:
                        if isinstance(k2, SessionK):
                            candidates.add(
                                Crypt(key, Concat((self.L, u, n, fresh_nonce, k2)))
                            )

        for content in sorted(candidates, key=repr):
            if content in state.trace_parts:
                continue  # replay: no effect on Parts(trace)
            yield self._send(
                state, "Spy", f"Spy forges {content!r}",
                MsgLabel.SPY, "Spy", self.config.leader, content,
                spy_count=state.spy_count + 1,
                next_id=state.next_id + 2,
            )

    # -- InUse (paper §5.2) -------------------------------------------------------

    @staticmethod
    def in_use(state: GlobalState, k: SessionK) -> bool:
        """InUse(K, q): L's A-session holds K as a component."""
        lead = state.lead
        return (
            isinstance(lead, (LWaitingForKeyAck, LConnected, LWaitingForAck))
            and lead.key == k
        )

    def session_keys_in_use(self, state: GlobalState) -> list[SessionK]:
        keys = []
        for lead in (state.lead, state.lead_c):
            if isinstance(lead, (LWaitingForKeyAck, LConnected, LWaitingForAck)):
                keys.append(lead.key)
        return keys
