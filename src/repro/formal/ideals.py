"""Ideals and coideals (Millen-Rueß [10], used in paper §5.2).

For a set of (atomic) secrets S, the ideal 𝓘(S) is the smallest set of
fields such that

* S ⊆ 𝓘(S),
* if X ∈ 𝓘(S) or Y ∈ 𝓘(S) then [X, Y] ∈ 𝓘(S),
* if X ∈ 𝓘(S) and K ∉ S then {X}_K ∈ 𝓘(S).

𝓘(S) is exactly the set of fields *from which some secret in S could be
extracted by an attacker who knows every key except those in S*.  The
coideal 𝓒(S) is its complement; the §5.2 secrecy proof shows the trace
stays inside 𝓒({K_a, P_a}) while K_a is in use.

The ideal is infinite, so membership is decided recursively
(:func:`in_ideal`).  The supporting lemmas the paper leans on —
``Analz(𝓒(S)) = 𝓒(S)``, ``Synth(𝓒(S)) = 𝓒(S)``, and the Ideal-Parts
lemma — are exercised as *properties* in the test suite (hypothesis
checks them on random fields), which is the executable counterpart of
citing [10].
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.formal.fields import Concat, Crypt, Field


def in_ideal(field: Field, secrets: frozenset[Field]) -> bool:
    """Decide ``field ∈ 𝓘(secrets)``.

    ``secrets`` must contain only atomic fields (keys/nonces): that is
    the setting of the Millen-Rueß development and of the paper.
    """
    if field in secrets:
        return True
    if isinstance(field, Concat):
        return any(in_ideal(p, secrets) for p in field.parts)
    if isinstance(field, Crypt):
        return field.key not in secrets and in_ideal(field.body, secrets)
    return False


def coideal_contains(field: Field, secrets: frozenset[Field]) -> bool:
    """Decide ``field ∈ 𝓒(secrets)`` (the complement of the ideal)."""
    return not in_ideal(field, secrets)


def trace_in_coideal(
    contents: Iterable[Field], secrets: frozenset[Field]
) -> bool:
    """Check ``trace ⊆ 𝓒(S)`` — the §5.2 inductive invariant (5)."""
    return all(coideal_contains(f, secrets) for f in contents)


def ideal_parts_lemma_applies(
    fields: frozenset[Field], secrets: frozenset[Field]
) -> bool:
    """The Ideal-Parts lemma's premise: ``Parts(E) ∩ S = ∅``.

    When it holds, E ⊆ 𝓒(S).  Exposed so tests can check the lemma
    itself (premise ⇒ conclusion) on arbitrary field sets.
    """
    from repro.formal.knowledge import parts

    return not (parts(fields) & secrets)
