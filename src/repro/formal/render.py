"""Render the paper's figures from the implementation.

The reproduction's FSMs and verification diagram are data, so the
figures can be *generated*, not just imitated:

* :func:`render_figure2` / :func:`render_figure3` — the user and leader
  state machines as Graphviz DOT (and an ASCII adjacency listing),
  derived from the transition generators of the formal model, so the
  rendered edges are exactly the executable ones.
* :func:`render_figure4` — the reconstructed verification diagram with
  its successor edges.

``python -m repro render`` writes all three; the benchmarks assert the
renderings stay in sync with the model (edge sets match transitions the
explorer actually takes).
"""

from __future__ import annotations

from repro.formal.diagram import DIAGRAM
from repro.formal.explorer import Explorer
from repro.formal.model import (
    EnclavesModel,
    GlobalState,
    ModelConfig,
    Transition,
)

#: Figure 2 edges: (source, label, target) of the user FSM.
FIGURE2_EDGES = [
    ("NotConnected", "send AuthInitReq (fresh N1)", "WaitingForKey"),
    ("WaitingForKey", "recv AuthKeyDist / send AuthAckKey (fresh N3)",
     "Connected"),
    ("Connected", "recv AdminMsg / send Ack (fresh N')", "Connected"),
    ("Connected", "send ReqClose", "NotConnected"),
]

#: Figure 3 edges: (source, label, target) of the leader per-user FSM.
FIGURE3_EDGES = [
    ("NotConnected", "recv AuthInitReq / send AuthKeyDist (fresh N2, K_a)",
     "WaitingForKeyAck"),
    ("WaitingForKeyAck", "recv AuthAckKey", "Connected"),
    ("Connected", "send AdminMsg (fresh N_l)", "WaitingForAck"),
    ("WaitingForAck", "recv Ack", "Connected"),
    ("Connected", "recv ReqClose / Oops(K_a)", "NotConnected"),
    ("WaitingForAck", "recv ReqClose / Oops(K_a)", "NotConnected"),
]


def _dot(name: str, edges: list[tuple[str, str, str]],
         initial: str) -> str:
    lines = [f"digraph {name} {{", "  rankdir=LR;",
             '  node [shape=box, fontname="Helvetica"];',
             f'  __start [shape=point]; __start -> "{initial}";']
    for source, label, target in edges:
        lines.append(f'  "{source}" -> "{target}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def _ascii(title: str, edges: list[tuple[str, str, str]]) -> str:
    width = max(len(s) for s, _, _ in edges)
    lines = [title, "-" * len(title)]
    for source, label, target in edges:
        lines.append(f"{source:<{width}} --[{label}]--> {target}")
    return "\n".join(lines)


def render_figure2(fmt: str = "dot") -> str:
    """Figure 2, the user FSM, as 'dot' or 'ascii'."""
    if fmt == "dot":
        return _dot("figure2_user_fsm", FIGURE2_EDGES, "NotConnected")
    return _ascii("Figure 2 — user state machine", FIGURE2_EDGES)


def render_figure3(fmt: str = "dot") -> str:
    """Figure 3, the leader per-user FSM, as 'dot' or 'ascii'."""
    if fmt == "dot":
        return _dot("figure3_leader_fsm", FIGURE3_EDGES, "NotConnected")
    return _ascii("Figure 3 — leader per-user state machine", FIGURE3_EDGES)


def render_figure4(fmt: str = "dot") -> str:
    """Figure 4, the verification diagram, from the live DIAGRAM data."""
    if fmt == "dot":
        lines = ["digraph figure4_verification_diagram {",
                 "  rankdir=TB;",
                 '  node [shape=box, fontname="Helvetica"];',
                 '  __start [shape=point]; __start -> "Q1";']
        for box in DIAGRAM.values():
            lines.append(
                f'  "{box.name}" [label="{box.name}\\n{box.description}"];'
            )
        for box in DIAGRAM.values():
            for succ in box.successors:
                lines.append(f'  "{box.name}" -> "{succ}";')
        lines.append("}")
        return "\n".join(lines)
    lines = ["Figure 4 — verification diagram (reconstructed)",
             "-" * 48]
    for box in DIAGRAM.values():
        succ = ", ".join(box.successors) or "(terminal)"
        lines.append(f"{box.name:<4} {box.description:<46} -> {succ}")
    return "\n".join(lines)


def observed_user_edges(config: ModelConfig | None = None) -> set[tuple[str, str]]:
    """(source-state, target-state) pairs the explorer actually takes
    for the user A — used to check the rendered figure matches the
    executable model."""
    return _observed_edges(config, actor="A", component="usr")


def observed_leader_edges(config: ModelConfig | None = None) -> set[tuple[str, str]]:
    """Same for the leader's A-session."""
    return _observed_edges(config, actor="L", component="lead")


def _observed_edges(config, actor: str, component: str) -> set[tuple[str, str]]:
    model = EnclavesModel(config or ModelConfig(max_sessions=2, max_admin=1,
                                                spy_budget=0))
    edges: set[tuple[str, str]] = set()

    def hook(m: EnclavesModel, source: GlobalState, t: Transition):
        if t.actor == actor:
            before = type(getattr(source, component)).__name__
            after = type(getattr(t.target, component)).__name__
            if before != after or "accepts AdminMsg" in t.description \
                    or "sends AdminMsg" in t.description \
                    or "accepts Ack" in t.description:
                edges.add((before, after))
        return None

    Explorer(model, checks={}, edge_hooks=[hook]).run()
    return edges
