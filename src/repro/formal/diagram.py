"""The Figure 4 verification diagram, reconstructed and machine-checked.

The paper prints only three of the abstraction predicates (Q1, Q2, Q12)
plus Q3/Q4 in the proof text; the complete list lives in the SRI tech
report [4].  Following §5.3 — "the construction is based on examining
the successive transitions A or L can execute, starting from a state
that satisfies Q1" — we reconstruct the full diagram.  Our systematic
construction yields **14 boxes**; Q1-Q4 and Q12 coincide with the
paper's, the rest cover the post-close and re-join interleavings
(user already gone while the leader still holds the session, user
re-requesting before the leader processed the close).

Each box is a predicate over the global state relating ``usr_A``,
``lead_A`` and ``Parts(trace)``.  The diagram checker verifies, on every
explored transition, the §5.3 proof obligation::

    Q_i(q)  ∧  q -M-> q'   ⇒   Q_i1(q') ∨ ... ∨ Q_ik(q')

where i1..ik are i's successors (every box is implicitly its own
successor), plus coverage: every reachable state satisfies at least one
box, and the initial state satisfies Q1.

Conventions in the predicates below (all quantifications range over
``Parts(trace)``):

* ``keydists(n)``  — the set of (N, K) with {L, A, n, N, K}_{P_a} present
* ``keyacks(k,n)`` — the set of N' with {A, L, n, N'}_{k} present
  (this shape covers both AuthAckKey and Ack, exactly as in §5.3)
* ``admins(k,n)``  — the set of (N', X) with {L, A, n, N', X}_{k} present
* ``close(k)``     — {A, L}_{k} present
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.formal.model import (
    EnclavesModel,
    GlobalState,
    LConnected,
    LNotConnected,
    LWaitingForAck,
    LWaitingForKeyAck,
    Transition,
    UConnected,
    UNotConnected,
    UWaitingForKey,
)

Predicate = Callable[[EnclavesModel, GlobalState], bool]


@dataclass(frozen=True)
class Box:
    """One node of the verification diagram."""

    name: str
    description: str
    predicate: Predicate
    successors: tuple[str, ...]  # self-loop implicit


# -- predicate helpers -----------------------------------------------------------


def _keydists(m: EnclavesModel, q: GlobalState, n) -> list:
    return list(m.find_key_dists(q, m.A, m.Pa, n))


def _keyacks(m: EnclavesModel, q: GlobalState, k, n) -> list:
    return list(m.find_key_acks(q, m.A, k, n))


def _admins(m: EnclavesModel, q: GlobalState, k, n) -> list:
    return list(m.find_admins(q, m.A, k, n))


def _close(m: EnclavesModel, q: GlobalState, k) -> bool:
    return m.close_present(q, m.A, k)


def _acks_consistent(m: EnclavesModel, q: GlobalState, k, n_l) -> bool:
    """At most one ack for n_l, and no admin chained on it yet.

    Used by the post-close boxes: if A acked the outstanding leader
    nonce before leaving, the leader may still consume that ack; the
    box must then guarantee the successor's ``admins(k, N*) = ∅``.
    """
    acks = _keyacks(m, q, k, n_l)
    if len(acks) > 1:
        return False
    return all(not _admins(m, q, k, n) for n in acks)


# -- the boxes -------------------------------------------------------------------


def q1(m: EnclavesModel, q: GlobalState) -> bool:
    return isinstance(q.usr, UNotConnected) and isinstance(q.lead, LNotConnected)


def q2(m: EnclavesModel, q: GlobalState) -> bool:
    return (
        isinstance(q.usr, UWaitingForKey)
        and isinstance(q.lead, LNotConnected)
        and not _keydists(m, q, q.usr.nonce)
    )


def q3(m: EnclavesModel, q: GlobalState) -> bool:
    if not (
        isinstance(q.usr, UWaitingForKey)
        and isinstance(q.lead, LWaitingForKeyAck)
    ):
        return False
    n_a, n_l, k = q.usr.nonce, q.lead.nonce, q.lead.key
    return (
        all(n == n_l and k2 == k for n, k2 in _keydists(m, q, n_a))
        and not _keyacks(m, q, k, n_l)
        and not _close(m, q, k)
    )


def q4(m: EnclavesModel, q: GlobalState) -> bool:
    if not (
        isinstance(q.usr, UConnected)
        and isinstance(q.lead, LWaitingForKeyAck)
        and q.usr.key == q.lead.key
    ):
        return False
    n_a, n_l, k = q.usr.nonce, q.lead.nonce, q.lead.key
    return (
        all(n == n_a for n in _keyacks(m, q, k, n_l))
        and not _admins(m, q, k, n_a)
        and not _close(m, q, k)
    )


def q5(m: EnclavesModel, q: GlobalState) -> bool:
    if not (
        isinstance(q.usr, UConnected)
        and isinstance(q.lead, LConnected)
        and q.usr.key == q.lead.key
        and q.usr.nonce == q.lead.nonce
    ):
        return False
    k, n_a = q.usr.key, q.usr.nonce
    return not _admins(m, q, k, n_a) and not _close(m, q, k)


def q6(m: EnclavesModel, q: GlobalState) -> bool:
    if not (
        isinstance(q.usr, UConnected)
        and isinstance(q.lead, LWaitingForAck)
        and q.usr.key == q.lead.key
    ):
        return False
    n_a, n_l, k = q.usr.nonce, q.lead.nonce, q.usr.key
    return (
        all(n == n_l for n, _x in _admins(m, q, k, n_a))
        and any(n == n_l for n, _x in _admins(m, q, k, n_a))
        and not _keyacks(m, q, k, n_l)
        and not _close(m, q, k)
    )


def q7(m: EnclavesModel, q: GlobalState) -> bool:
    if not (
        isinstance(q.usr, UConnected)
        and isinstance(q.lead, LWaitingForAck)
        and q.usr.key == q.lead.key
    ):
        return False
    n_a, n_l, k = q.usr.nonce, q.lead.nonce, q.usr.key
    acks = _keyacks(m, q, k, n_l)
    return (
        bool(acks)
        and all(n == n_a for n in acks)
        and not _admins(m, q, k, n_a)
        and not _close(m, q, k)
    )


def q8(m: EnclavesModel, q: GlobalState) -> bool:
    if not (isinstance(q.usr, UNotConnected) and isinstance(q.lead, LConnected)):
        return False
    k, n_a = q.lead.key, q.lead.nonce
    return _close(m, q, k) and not _admins(m, q, k, n_a)


def q9(m: EnclavesModel, q: GlobalState) -> bool:
    if not (isinstance(q.usr, UNotConnected) and isinstance(q.lead, LWaitingForAck)):
        return False
    k, n_l = q.lead.key, q.lead.nonce
    return _close(m, q, k) and _acks_consistent(m, q, k, n_l)


def q10(m: EnclavesModel, q: GlobalState) -> bool:
    if not (isinstance(q.usr, UWaitingForKey) and isinstance(q.lead, LConnected)):
        return False
    k, n_a2 = q.lead.key, q.usr.nonce
    return (
        _close(m, q, k)
        and not _keydists(m, q, n_a2)
        and not _admins(m, q, k, q.lead.nonce)
    )


def q11(m: EnclavesModel, q: GlobalState) -> bool:
    if not (isinstance(q.usr, UWaitingForKey) and isinstance(q.lead, LWaitingForAck)):
        return False
    k, n_l = q.lead.key, q.lead.nonce
    return (
        _close(m, q, k)
        and not _keydists(m, q, q.usr.nonce)
        and _acks_consistent(m, q, k, n_l)
    )


def q12(m: EnclavesModel, q: GlobalState) -> bool:
    if not (isinstance(q.usr, UNotConnected) and isinstance(q.lead, LWaitingForKeyAck)):
        return False
    k, n_l = q.lead.key, q.lead.nonce
    return not _keyacks(m, q, k, n_l) and not _close(m, q, k)


def q13(m: EnclavesModel, q: GlobalState) -> bool:
    if not (isinstance(q.usr, UNotConnected) and isinstance(q.lead, LWaitingForKeyAck)):
        return False
    k, n_l = q.lead.key, q.lead.nonce
    return _close(m, q, k) and _acks_consistent(m, q, k, n_l)


def q14(m: EnclavesModel, q: GlobalState) -> bool:
    if not (
        isinstance(q.usr, UWaitingForKey)
        and isinstance(q.lead, LWaitingForKeyAck)
    ):
        return False
    k, n_l = q.lead.key, q.lead.nonce
    return (
        _close(m, q, k)
        and not _keydists(m, q, q.usr.nonce)
        and _acks_consistent(m, q, k, n_l)
    )


#: The reconstructed diagram.  Successor lists omit the implicit self-loop.
DIAGRAM: dict[str, Box] = {
    box.name: box
    for box in [
        Box("Q1", "both NotConnected (initial)", q1, ("Q2", "Q12")),
        Box("Q2", "A requested; L idle", q2, ("Q3",)),
        Box("Q3", "A waiting; L answered (the handshake race)", q3, ("Q4",)),
        Box("Q4", "A connected; L awaiting key ack", q4, ("Q5", "Q13")),
        Box("Q5", "both connected, in agreement", q5, ("Q6", "Q8")),
        Box("Q6", "AdminMsg outstanding; A not yet caught up", q6, ("Q7", "Q9")),
        Box("Q7", "A acked; L not yet caught up", q7, ("Q5", "Q9")),
        Box("Q8", "A left; L connected, close pending", q8, ("Q9", "Q10", "Q1")),
        Box("Q9", "A left; L awaiting ack, close pending", q9,
            ("Q8", "Q11", "Q1")),
        Box("Q10", "A re-requesting; L connected, close pending", q10,
            ("Q11", "Q2")),
        Box("Q11", "A re-requesting; L awaiting ack, close pending", q11,
            ("Q10", "Q2")),
        Box("Q12", "L answered a stale request; A idle", q12, ("Q3",)),
        # From Q13/Q14 the leader first consumes the pending key ack
        # (ReqClose is not honored in WaitingForKeyAck — see the model),
        # so the close is processed via Q8/Q10.
        Box("Q13", "A left; L awaiting key ack, close pending", q13,
            ("Q8", "Q14")),
        Box("Q14", "A re-requesting; L awaiting key ack, close pending", q14,
            ("Q10",)),
    ]
}


def boxes_satisfied(model: EnclavesModel, state: GlobalState) -> list[str]:
    """All diagram boxes whose predicate holds in ``state``."""
    return [name for name, box in DIAGRAM.items()
            if box.predicate(model, state)]


def check_coverage(model: EnclavesModel, state: GlobalState) -> str | None:
    """Invariant-style check: every state satisfies at least one box."""
    if not boxes_satisfied(model, state):
        return (
            f"diagram coverage hole: usr={state.usr!r} lead={state.lead!r} "
            "satisfies no box"
        )
    return None


def check_obligation(
    model: EnclavesModel, source: GlobalState, transition: Transition
) -> str | None:
    """Edge hook: the §5.3 proof obligation on one explored transition."""
    source_boxes = boxes_satisfied(model, source)
    if not source_boxes:
        return None  # coverage check reports the hole
    target_boxes = set(boxes_satisfied(model, transition.target))
    for name in source_boxes:
        allowed = set(DIAGRAM[name].successors) | {name}
        if not (allowed & target_boxes):
            return (
                f"obligation failed: {name} --[{transition.description}]--> "
                f"{sorted(target_boxes) or 'no box'}; allowed {sorted(allowed)}"
            )
    return None


def initial_obligation(model: EnclavesModel, state: GlobalState) -> str | None:
    """q0 must satisfy Q1."""
    if not q1(model, state):
        return "initial state does not satisfy Q1"
    return None


def observed_box_edges(model: EnclavesModel) -> dict[tuple[str, str], int]:
    """Count the box-to-box moves an exploration actually takes.

    Used to validate the reconstruction in both directions: every taken
    move must be a declared edge (the obligation), and — minimality —
    every declared edge should be *witnessed* by some exploration, or it
    is dead weight in the diagram.
    """
    from collections import Counter

    from repro.formal.explorer import Explorer

    edges: Counter = Counter()

    def record(m: EnclavesModel, source: GlobalState, transition):
        for from_box in boxes_satisfied(m, source):
            for to_box in boxes_satisfied(m, transition.target):
                if to_box != from_box:
                    edges[(from_box, to_box)] += 1
        return None

    Explorer(m := model, checks={}, edge_hooks=[record]).run()
    return dict(edges)
