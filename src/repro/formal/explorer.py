"""Bounded-exhaustive exploration of the protocol model.

Breadth-first search over every interleaving allowed by the
:class:`~repro.formal.model.ModelConfig` budgets, with:

* state merging on :meth:`GlobalState.fingerprint` (two interleavings
  that agree on local states, Parts(trace), spy knowledge, and logs are
  one state),
* invariant checking on every reached state,
* per-edge hooks (used by the diagram checker to verify proof
  obligations on each explored transition),
* counterexample paths: the first violation is reported with the full
  event sequence that reaches it.

This is the model-checking counterpart of the paper's PVS induction:
PVS proves invariance for all traces; the explorer verifies the same
predicates on every state reachable within the budgets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import PropertyViolation
from repro.formal.model import EnclavesModel, GlobalState, Transition
from repro.formal.properties import ALL_CHECKS, Check

#: Edge hooks get (model, source, transition) and return None or a message.
EdgeHook = Callable[[EnclavesModel, GlobalState, Transition], "str | None"]


@dataclass
class Violation:
    """A failed check with its counterexample."""

    check: str
    message: str
    state: GlobalState
    path: list[str]

    def __str__(self) -> str:
        steps = "\n  ".join(self.path) if self.path else "(initial state)"
        return f"[{self.check}] {self.message}\n  path:\n  {steps}"


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    states_explored: int
    transitions_explored: int
    violations: list[Violation] = field(default_factory=list)
    #: states per actor kind, for reporting
    depth_reached: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_on_violation(self) -> None:
        if self.violations:
            v = self.violations[0]
            raise PropertyViolation(str(v), state=v.state, trace=v.path)


class Explorer:
    """Breadth-first bounded-exhaustive explorer."""

    def __init__(
        self,
        model: EnclavesModel,
        checks: dict[str, Check] | None = None,
        edge_hooks: list[EdgeHook] | None = None,
        max_states: int = 500_000,
        stop_on_first: bool = True,
    ) -> None:
        self.model = model
        self.checks = checks if checks is not None else dict(ALL_CHECKS)
        self.edge_hooks = list(edge_hooks or [])
        self.max_states = max_states
        self.stop_on_first = stop_on_first

    def run(self, initial: Optional[GlobalState] = None) -> ExplorationResult:
        """Explore all reachable states within the configured budgets."""
        start = initial if initial is not None else self.model.initial_state()
        result = ExplorationResult(states_explored=0, transitions_explored=0)

        # parents: fingerprint -> (parent fingerprint, edge description)
        parents: dict[tuple, tuple[tuple | None, str | None]] = {}
        start_fp = start.fingerprint()
        parents[start_fp] = (None, None)
        visited: set[tuple] = {start_fp}
        queue: deque[tuple[GlobalState, int]] = deque([(start, 0)])

        self._check_state(start, start_fp, parents, result)
        if result.violations and self.stop_on_first:
            return result

        while queue:
            state, depth = queue.popleft()
            result.depth_reached = max(result.depth_reached, depth)
            state_fp = state.fingerprint()
            for transition in self.model.successors(state):
                result.transitions_explored += 1
                for hook in self.edge_hooks:
                    message = hook(self.model, state, transition)
                    if message is not None:
                        result.violations.append(
                            Violation(
                                check="edge",
                                message=message,
                                state=transition.target,
                                path=self._path(parents, state_fp)
                                + [transition.description],
                            )
                        )
                        if self.stop_on_first:
                            return result
                fp = transition.target.fingerprint()
                if fp in visited:
                    continue
                visited.add(fp)
                parents[fp] = (state_fp, transition.description)
                result.states_explored += 1
                if result.states_explored > self.max_states:
                    raise PropertyViolation(
                        f"state budget exceeded ({self.max_states}); "
                        "tighten the ModelConfig bounds"
                    )
                self._check_state(transition.target, fp, parents, result)
                if result.violations and self.stop_on_first:
                    return result
                queue.append((transition.target, depth + 1))
        return result

    # -- internals ---------------------------------------------------------------

    def _check_state(
        self,
        state: GlobalState,
        fp: tuple,
        parents: dict,
        result: ExplorationResult,
    ) -> None:
        for name, check in self.checks.items():
            message = check(self.model, state)
            if message is not None:
                result.violations.append(
                    Violation(
                        check=name,
                        message=message,
                        state=state,
                        path=self._path(parents, fp),
                    )
                )

    @staticmethod
    def _path(parents: dict, fp: tuple) -> list[str]:
        """Reconstruct the event path to a state fingerprint."""
        steps: list[str] = []
        cursor = fp
        while cursor is not None:
            parent, description = parents[cursor]
            if description is not None:
                steps.append(description)
            cursor = parent
        steps.reverse()
        return steps
