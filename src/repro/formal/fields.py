"""The message-field algebra 𝓕 of paper §4.

    "Message contents are elements of the set of fields 𝓕 defined as
     follows: agent identities, keys, and nonces are primitive fields.
     Given two fields X and Y, their concatenation [X, Y] is a field.
     Given a field X and a key K, the encryption of X with K, denoted
     {X}_K, is a field."

All terms are immutable and hashable, so they can live in the frozensets
the knowledge operators work over.  Two kinds of keys exist, mirroring
the paper: long-term keys ``P_a`` (:class:`LongTerm`) and session keys
``K_a`` (:class:`SessionK`); both are symmetric.  :class:`Data` is an
uninterpreted public payload constant (the ``X`` of AdminMsg) used to
check ordering properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


class Field:
    """Base class for all symbolic fields."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Agent(Field):
    """An agent identity (public)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class NonceF(Field):
    """A nonce, identified by allocation index (unique per trace)."""

    ident: int

    def __repr__(self) -> str:
        return f"N{self.ident}"


@dataclass(frozen=True, slots=True)
class SessionK(Field):
    """A session key K, identified by allocation index."""

    ident: int

    def __repr__(self) -> str:
        return f"K{self.ident}"


@dataclass(frozen=True, slots=True)
class LongTerm(Field):
    """The long-term key P_a of an agent (password-derived)."""

    agent: str

    def __repr__(self) -> str:
        return f"P({self.agent})"


@dataclass(frozen=True, slots=True)
class Data(Field):
    """An uninterpreted, public payload constant (AdminMsg's X field)."""

    ident: int

    def __repr__(self) -> str:
        return f"X{self.ident}"


@dataclass(frozen=True, slots=True)
class Concat(Field):
    """Concatenation [X1, ..., Xn] (n-ary for readability; the paper's
    binary [X, Y] nests equivalently)."""

    parts: tuple[Field, ...]

    def __repr__(self) -> str:
        return "[" + ", ".join(map(repr, self.parts)) + "]"


@dataclass(frozen=True, slots=True)
class Crypt(Field):
    """Encryption {X}_K with a symmetric key."""

    key: Field
    body: Field

    def __post_init__(self) -> None:
        if not is_key(self.key):
            raise TypeError(f"Crypt key must be a key field, got {self.key!r}")

    def __repr__(self) -> str:
        return f"{{{self.body!r}}}_{self.key!r}"


KeyField = Union[SessionK, LongTerm]


def is_key(field: Field) -> bool:
    """True for the two key sorts (all keys are symmetric, §4)."""
    return isinstance(field, (SessionK, LongTerm))


def is_atomic(field: Field) -> bool:
    """True for primitive fields (agents, nonces, keys, data)."""
    return isinstance(field, (Agent, NonceF, SessionK, LongTerm, Data))


def concat(*fields: Field) -> Concat:
    """Build [X1, ..., Xn]."""
    return Concat(tuple(fields))


def crypt(key: Field, *body: Field) -> Crypt:
    """Build {[X1, ..., Xn]}_K (single field is not wrapped)."""
    if len(body) == 1:
        return Crypt(key, body[0])
    return Crypt(key, Concat(tuple(body)))


def subfields(field: Field):
    """Iterate over a field and all its subterms (including crypt keys).

    Note: this is the *syntactic* subterm relation, used internally.
    The paper's ``Parts`` (which does NOT descend into encryption keys)
    lives in :mod:`repro.formal.knowledge`.
    """
    stack = [field]
    while stack:
        f = stack.pop()
        yield f
        if isinstance(f, Concat):
            stack.extend(f.parts)
        elif isinstance(f, Crypt):
            stack.append(f.body)
            stack.append(f.key)
