"""Randomized deep exploration (complement to the BFS explorer).

BFS is exhaustive but shallow: the budgets keep it to a few protocol
sessions.  :class:`RandomWalker` trades exhaustiveness for depth: many
seeded random walks, each hundreds of transitions long (dozens of
sessions, admin exchanges, forgeries), with every invariant checked at
every step.  Used by the slow tests and the FIG-4 benchmark sweep to
push the same §5 predicates far beyond the exhaustive frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRandom
from repro.formal.explorer import Violation
from repro.formal.model import EnclavesModel, GlobalState
from repro.formal.properties import ALL_CHECKS, Check


@dataclass
class WalkResult:
    """Outcome of a batch of random walks."""

    walks: int
    steps_taken: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


class RandomWalker:
    """Seeded random walks over the protocol model."""

    def __init__(
        self,
        model: EnclavesModel,
        checks: dict[str, Check] | None = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.checks = checks if checks is not None else dict(ALL_CHECKS)
        self._rng = DeterministicRandom(seed)

    def walk(self, max_steps: int) -> tuple[int, list[Violation], list[str]]:
        """One walk from the initial state; returns (steps, violations,
        path)."""
        state = self.model.initial_state()
        path: list[str] = []
        violations = self._check(state, path)
        if violations:
            return 0, violations, path
        for step in range(max_steps):
            transitions = self.model.successors(state)
            if not transitions:
                return step, [], path
            pick = int.from_bytes(self._rng.random_bytes(4), "big")
            transition = transitions[pick % len(transitions)]
            path.append(transition.description)
            state = transition.target
            violations = self._check(state, path)
            if violations:
                return step + 1, violations, path
        return max_steps, [], path

    def run(self, walks: int, max_steps: int = 200) -> WalkResult:
        """Run a batch of walks; stop at the first violation."""
        result = WalkResult(walks=0, steps_taken=0)
        for _ in range(walks):
            steps, violations, _path = self.walk(max_steps)
            result.walks += 1
            result.steps_taken += steps
            if violations:
                result.violations.extend(violations)
                break
        return result

    def _check(self, state: GlobalState, path: list[str]) -> list[Violation]:
        found = []
        for name, check in self.checks.items():
            message = check(self.model, state)
            if message is not None:
                found.append(
                    Violation(check=name, message=message, state=state,
                              path=list(path))
                )
        return found
