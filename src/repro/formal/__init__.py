"""Executable formal model of the improved Enclaves protocol (paper §4-5).

This package re-implements, as executable Python, the PVS development the
paper describes:

* :mod:`~repro.formal.fields` — the message-field algebra 𝓕 (agents,
  nonces, keys, concatenation, encryption) of §4.
* :mod:`~repro.formal.knowledge` — Paulson/Millen-Rueß operators:
  ``Parts``, ``Analz``, ``Synth`` (§4.2), with an incremental
  knowledge-state for exploration.
* :mod:`~repro.formal.ideals` — ideals 𝓘(S), coideals 𝓒(S), and the
  Ideal-Parts lemma used in the §5.2 secrecy proof.
* :mod:`~repro.formal.events` — messages, Oops events, and traces.
* :mod:`~repro.formal.model` — the honest user/leader transition systems
  (Figures 2 and 3), the intruder (Gen), and the asynchronous global
  system of §4.2.
* :mod:`~repro.formal.explorer` — bounded-exhaustive state-space
  exploration with invariant checking and counterexample paths.
* :mod:`~repro.formal.properties` — the §5 theorems as executable
  invariants (regularity, long-term-key secrecy, session-key secrecy,
  message-ordering prefix, agreement, proper authentication).
* :mod:`~repro.formal.diagram` — a reconstruction of the Figure 4
  verification diagram and its proof obligations.
* :mod:`~repro.formal.verify` — one-call verification report.

Where PVS proves the properties for *all* traces by induction, this
package checks the same definitions on a bounded-exhaustive prefix of
the trace space (every interleaving up to configurable session/admin/
forgery budgets) — the classic model-checking counterpart of the paper's
theorem-proving approach.
"""

from repro.formal.events import Msg, Oops
from repro.formal.fields import (
    Agent,
    Concat,
    Crypt,
    Data,
    Field,
    LongTerm,
    NonceF,
    SessionK,
    concat,
)
from repro.formal.knowledge import analz, can_synth, parts
from repro.formal.ideals import coideal_contains, in_ideal
from repro.formal.model import EnclavesModel, ModelConfig
from repro.formal.verify import VerificationReport, verify_protocol

__all__ = [
    "Field",
    "Agent",
    "NonceF",
    "SessionK",
    "LongTerm",
    "Data",
    "Concat",
    "Crypt",
    "concat",
    "parts",
    "analz",
    "can_synth",
    "in_ideal",
    "coideal_contains",
    "Msg",
    "Oops",
    "EnclavesModel",
    "ModelConfig",
    "verify_protocol",
    "VerificationReport",
]
