"""Dolev-Yao knowledge operators: Parts, Analz, Synth (paper §4.2).

    "Parts(S) is the set of fields and subfields that occur in S.
     Analz(S) is the set of fields that can be extracted from elements
     of S without breaking the cryptosystem.  Synth(S) is the set of
     fields that can be constructed from elements of S by concatenation
     and encryption."

``parts`` and ``analz`` return finite closures as frozensets.  ``Synth``
is infinite, so :func:`can_synth` is a membership decision procedure.
:class:`KnowledgeState` maintains an analz-closure *incrementally* — the
explorer adds one observed field at a time, which is far cheaper than
recomputing the fixpoint per state.

Definitions follow Paulson [11] / Millen-Rueß [10]:

* ``Parts`` descends through concatenations and into encryption
  *bodies*, but never yields an encryption's *key* (a ciphertext does
  not expose which key made it).
* ``Analz`` descends through concatenations, and into an encryption's
  body only when the key is already in the closure.
* ``Synth`` builds concatenations from synthesizable parts and
  encryptions whose key is *known* (in the set, not merely
  synthesizable — keys are atomic).  Agent identities and data constants
  are public, hence always synthesizable.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.formal.fields import (
    Agent,
    Concat,
    Crypt,
    Data,
    Field,
    is_key,
)


def parts(fields: Iterable[Field]) -> frozenset[Field]:
    """The Parts closure: every field and subfield occurring in S."""
    result: set[Field] = set()
    stack = list(fields)
    while stack:
        f = stack.pop()
        if f in result:
            continue
        result.add(f)
        if isinstance(f, Concat):
            stack.extend(f.parts)
        elif isinstance(f, Crypt):
            stack.append(f.body)  # the key is NOT a part
    return frozenset(result)


def analz(fields: Iterable[Field]) -> frozenset[Field]:
    """The Analz closure: what can be extracted without breaking crypto."""
    state = KnowledgeState.empty()
    for f in fields:
        state = state.add(f)
    return state.accessible


def can_synth(target: Field, known: frozenset[Field]) -> bool:
    """Decide ``target ∈ Synth(known)``.

    ``known`` should be analz-closed (e.g., ``KnowledgeState.accessible``)
    for the intended Dolev-Yao meaning ``Synth(Analz(...))``.
    """
    if target in known:
        return True
    if isinstance(target, (Agent, Data)):
        return True  # public constants
    if isinstance(target, Concat):
        return all(can_synth(p, known) for p in target.parts)
    if isinstance(target, Crypt):
        # The key must itself be known; keys are atomic so "in known"
        # and "synthesizable" coincide for them.
        return target.key in known and can_synth(target.body, known)
    # Nonces and keys not in the knowledge set cannot be conjured.
    return False


class KnowledgeState:
    """An incrementally maintained Analz closure.

    ``accessible`` is the analz-closed set of fields derivable so far.
    ``locked`` maps each key K to ciphertexts {X}_K seen whose key is
    not (yet) accessible; when K later becomes accessible, those bodies
    unlock.  Instances are immutable; :meth:`add` returns a new state
    (sharing is fine because the underlying sets are never mutated after
    construction).
    """

    __slots__ = ("accessible", "locked", "_hash")

    def __init__(
        self,
        accessible: frozenset[Field],
        locked: "frozenset[tuple[Field, Field]]",
    ) -> None:
        self.accessible = accessible
        #: frozenset of (key, body) pairs not yet openable.
        self.locked = locked
        self._hash: int | None = None

    @classmethod
    def empty(cls) -> "KnowledgeState":
        return cls(frozenset(), frozenset())

    @classmethod
    def from_fields(cls, fields: Iterable[Field]) -> "KnowledgeState":
        state = cls.empty()
        for f in fields:
            state = state.add(f)
        return state

    def add(self, field: Field) -> "KnowledgeState":
        """Return the closure after observing ``field``."""
        if field in self.accessible:
            return self
        accessible = set(self.accessible)
        locked = set(self.locked)
        pending = [field]
        while pending:
            f = pending.pop()
            if f in accessible:
                continue
            accessible.add(f)
            if isinstance(f, Concat):
                pending.extend(f.parts)
            elif isinstance(f, Crypt):
                if f.key in accessible:
                    pending.append(f.body)
                else:
                    locked.add((f.key, f.body))
            if is_key(f):
                # A newly accessible key may unlock stored ciphertexts.
                for key, body in list(locked):
                    if key == f:
                        locked.discard((key, body))
                        pending.append(body)
        return KnowledgeState(frozenset(accessible), frozenset(locked))

    def knows(self, field: Field) -> bool:
        """``field ∈ Analz(observed)``."""
        return field in self.accessible

    def can_generate(self, field: Field) -> bool:
        """``field ∈ Synth(Analz(observed))`` — no fresh values."""
        return can_synth(field, self.accessible)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KnowledgeState)
            and self.accessible == other.accessible
            and self.locked == other.locked
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.accessible, self.locked))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"KnowledgeState({len(self.accessible)} accessible, "
            f"{len(self.locked)} locked)"
        )
