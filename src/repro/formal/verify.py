"""One-call verification of the improved protocol.

:func:`verify_protocol` runs the §5 pipeline end to end:

1. the invariant suite (regularity, secrecy, coideal invariant, prefix,
   authentication, agreement) on every reachable state,
2. the Figure 4 diagram obligations on every explored transition,
3. diagram coverage (every state in some box) and the Q1 initial
   obligation,

within the bounds of a :class:`~repro.formal.model.ModelConfig`, and
returns a :class:`VerificationReport` summarizing what was checked.
This powers ``examples/formal_verification.py`` and the FIG-4/THM-5.x
reproduction benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.formal import diagram as diagram_mod
from repro.formal.explorer import Explorer, Violation
from repro.formal.model import EnclavesModel, ModelConfig
from repro.formal.properties import ALL_CHECKS


@dataclass
class VerificationReport:
    """Summary of a verification run."""

    config: ModelConfig
    states_explored: int
    transitions_explored: int
    checks_run: tuple[str, ...]
    diagram_boxes: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ALL PROPERTIES HOLD" if self.ok else "VIOLATIONS FOUND"
        lines = [
            f"verification: {status}",
            f"  bounds: sessions={self.config.max_sessions} "
            f"admin={self.config.max_admin} spy={self.config.spy_budget} "
            f"compromised_member={self.config.compromised_member}",
            f"  states explored:      {self.states_explored}",
            f"  transitions explored: {self.transitions_explored}",
            f"  invariants checked:   {', '.join(self.checks_run)}",
            f"  diagram boxes:        {self.diagram_boxes} "
            "(coverage + successor obligations on every edge)",
        ]
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def verify_protocol(
    config: ModelConfig | None = None,
    include_diagram: bool = True,
    stop_on_first: bool = True,
    max_states: int = 500_000,
) -> VerificationReport:
    """Explore the model and check every §5 property.

    Returns the report; callers decide whether to raise (see
    :meth:`~repro.formal.explorer.ExplorationResult.raise_on_violation`).
    """
    config = config if config is not None else ModelConfig()
    model = EnclavesModel(config)

    checks = dict(ALL_CHECKS)
    edge_hooks = []
    if include_diagram:
        checks["diagram_coverage"] = diagram_mod.check_coverage
        edge_hooks.append(diagram_mod.check_obligation)

    explorer = Explorer(
        model,
        checks=checks,
        edge_hooks=edge_hooks,
        max_states=max_states,
        stop_on_first=stop_on_first,
    )
    violations: list[Violation] = []
    if include_diagram:
        initial_message = diagram_mod.initial_obligation(
            model, model.initial_state()
        )
        if initial_message is not None:
            violations.append(
                Violation(
                    check="diagram_initial",
                    message=initial_message,
                    state=model.initial_state(),
                    path=[],
                )
            )

    result = explorer.run()
    violations.extend(result.violations)
    return VerificationReport(
        config=config,
        states_explored=result.states_explored,
        transitions_explored=result.transitions_explored,
        checks_run=tuple(checks),
        diagram_boxes=len(diagram_mod.DIAGRAM),
        violations=violations,
    )
