"""Abstract transport interfaces.

A :class:`Transport` is a factory of :class:`Endpoint` objects.  An
endpoint has an address, can send an :class:`~repro.wire.message.Envelope`
toward any address, and receives envelopes addressed to it.  The protocol
stacks are written purely against this interface, so they run unchanged
over the in-memory adversarial network and over TCP.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.wire.message import Envelope


class Endpoint(ABC):
    """One attachment point on a transport."""

    @property
    @abstractmethod
    def address(self) -> str:
        """This endpoint's network address (an agent identity string)."""

    @abstractmethod
    async def send(self, envelope: Envelope) -> None:
        """Send ``envelope`` toward ``envelope.recipient``.

        Sending never fails loudly on an insecure network — a dropped
        frame is indistinguishable from a slow one — except when the
        endpoint itself has been closed.
        """

    @abstractmethod
    async def recv(self) -> Envelope:
        """Wait for and return the next envelope addressed to us."""

    @abstractmethod
    async def close(self) -> None:
        """Detach from the network; pending receives fail."""


class Transport(ABC):
    """Factory for endpoints sharing one network."""

    @abstractmethod
    async def attach(self, address: str) -> Endpoint:
        """Create an endpoint bound to ``address``."""
