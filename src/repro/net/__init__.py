"""Network substrate.

The paper assumes "a set of agents connected via an insecure asynchronous
network": every message can be observed, dropped, duplicated, reordered,
or forged.  :class:`~repro.net.memnet.MemoryNetwork` realizes exactly that
for in-process experiments, with an :class:`~repro.net.adversary.Adversary`
that has full Dolev-Yao power over frames.  A plain asyncio TCP transport
(:mod:`repro.net.tcp`) runs the same protocol stack across real sockets.
"""

from repro.net.adversary import Adversary, FrameAction, ObservedFrame, Verdict
from repro.net.faults import (
    DelayReorderPolicy,
    FaultPlan,
    GilbertElliottPolicy,
    LeaderEvent,
    LeaderEventKind,
    PartitionPolicy,
    PolicyWindow,
    compose,
)
from repro.net.lossy import LossyPolicy
from repro.net.memnet import MemoryEndpoint, MemoryNetwork
from repro.net.transport import Endpoint, Transport

__all__ = [
    "Transport",
    "Endpoint",
    "MemoryNetwork",
    "MemoryEndpoint",
    "Adversary",
    "FrameAction",
    "ObservedFrame",
    "Verdict",
    "LossyPolicy",
    "PartitionPolicy",
    "DelayReorderPolicy",
    "GilbertElliottPolicy",
    "compose",
    "FaultPlan",
    "PolicyWindow",
    "LeaderEvent",
    "LeaderEventKind",
]
