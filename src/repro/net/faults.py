"""Composable, seeded fault-injection policies.

The paper assumes an *insecure asynchronous network*: frames may be
lost, duplicated, delayed, and reordered, and the single group leader
is explicitly named (§7) as the availability weak point.  This module
extends the :class:`~repro.net.adversary.Adversary` verdict machinery
with *benign-but-hostile* fault models so that recovery code can be
exercised deterministically:

* :class:`PartitionPolicy` — address-set splits; frames crossing the
  cut vanish, frames inside one component flow freely.
* :class:`DelayReorderPolicy` — seeded random per-frame delay.  Because
  held frames overtake shorter-held ones, delay doubles as reordering.
* :class:`GilbertElliottPolicy` — the classic two-state Markov bursty
  loss model (a good state with light loss, a bad state with heavy
  loss, seeded transitions).
* :func:`compose` — chain policies; the first non-DELIVER verdict wins.
* :class:`FaultPlan` — a schedule of policy *windows* plus leader
  crash/restart events, evaluated against a time source (normally the
  virtual clock of a chaos run), so a whole scenario is one seeded,
  replayable object.

Everything here is deterministic per seed: same plan, same seed, same
wire history.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRandom
from repro.net.adversary import ObservedFrame, Policy, Verdict
from repro.telemetry.events import (
    EventBus,
    FaultWindowClosed,
    FaultWindowOpened,
)
from repro.telemetry.metrics import MetricsRegistry


class PartitionPolicy:
    """Drop frames that cross a partition between address components.

    ``components`` is a list of address sets.  A frame is delivered iff
    its origin and recipient fall in the *same* component; a frame with
    either end in a listed component and the other end elsewhere (or in
    a different component) is severed.  Addresses appearing in no
    component are unrestricted among themselves — this lets a plan
    partition only the subset of the world it cares about.
    """

    def __init__(
        self,
        components: Iterable[Iterable[str]],
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._metrics = metrics
        self.components: list[frozenset[str]] = [
            frozenset(c) for c in components
        ]
        seen: set[str] = set()
        for comp in self.components:
            overlap = seen & comp
            if overlap:
                raise ValueError(
                    f"addresses in multiple components: {sorted(overlap)}"
                )
            seen |= comp
        #: Frames dropped at the cut.
        self.severed = 0

    def _component_of(self, address: str) -> int:
        for i, comp in enumerate(self.components):
            if address in comp:
                return i
        return -1

    def __call__(self, frame: ObservedFrame) -> Verdict:
        a = self._component_of(frame.origin)
        b = self._component_of(frame.envelope.recipient)
        if a == -1 and b == -1:
            return Verdict.deliver()
        if a == b:
            return Verdict.deliver()
        self.severed += 1
        if self._metrics is not None:
            self._metrics.counter(
                "fault_frames_total", policy="partition", fate="severed"
            ).incr()
        return Verdict.drop()


class DelayReorderPolicy:
    """Seeded random per-frame delay (and therefore reordering).

    Each frame is independently delayed with probability ``delay_rate``
    by a uniform hold in ``[min_hold, max_hold]`` seconds.  Two delayed
    frames with different holds swap order; a delayed frame is also
    overtaken by every undelayed frame behind it.
    """

    def __init__(
        self,
        min_hold: float = 0.05,
        max_hold: float = 0.5,
        delay_rate: float = 1.0,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if min_hold < 0 or max_hold < min_hold:
            raise ValueError("need 0 <= min_hold <= max_hold")
        if not 0.0 <= delay_rate <= 1.0:
            raise ValueError("delay_rate must be in [0, 1]")
        self.min_hold = min_hold
        self.max_hold = max_hold
        self.delay_rate = delay_rate
        self._rng = DeterministicRandom(seed).fork("delay-reorder")
        self._metrics = metrics
        #: Frames held back.
        self.delayed = 0

    def _uniform(self) -> float:
        raw = int.from_bytes(self._rng.random_bytes(8), "big")
        return raw / float(1 << 64)

    def __call__(self, frame: ObservedFrame) -> Verdict:
        if self._uniform() >= self.delay_rate:
            return Verdict.deliver()
        hold = self.min_hold + self._uniform() * (
            self.max_hold - self.min_hold
        )
        self.delayed += 1
        if self._metrics is not None:
            self._metrics.counter(
                "fault_frames_total", policy="delay-reorder", fate="delayed"
            ).incr()
        return Verdict.delay(hold)


class GilbertElliottPolicy:
    """Two-state Markov bursty loss (Gilbert–Elliott).

    The channel is in a GOOD or BAD state; each observed frame first
    rolls a state transition, then rolls loss at that state's rate.
    Long BAD sojourns produce the correlated loss bursts that i.i.d.
    :class:`~repro.net.lossy.LossyPolicy` cannot, which is what breaks
    naive retransmission schemes tuned for independent loss.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.2,
        loss_good: float = 0.01,
        loss_bad: float = 0.7,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._metrics = metrics
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = DeterministicRandom(seed).fork("gilbert-elliott")
        self.in_bad = False
        self.dropped = 0
        #: Completed GOOD→BAD transitions (burst count).
        self.bursts = 0

    def _uniform(self) -> float:
        raw = int.from_bytes(self._rng.random_bytes(8), "big")
        return raw / float(1 << 64)

    def __call__(self, frame: ObservedFrame) -> Verdict:
        if self.in_bad:
            if self._uniform() < self.p_bad_to_good:
                self.in_bad = False
        else:
            if self._uniform() < self.p_good_to_bad:
                self.in_bad = True
                self.bursts += 1
        loss = self.loss_bad if self.in_bad else self.loss_good
        if self._uniform() < loss:
            self.dropped += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "fault_frames_total", policy="bursty", fate="dropped"
                ).incr()
            return Verdict.drop()
        return Verdict.deliver()


def compose(*policies: Policy) -> Policy:
    """Chain policies; the first non-DELIVER verdict wins.

    Later policies only see frames every earlier policy would deliver,
    so e.g. ``compose(partition, loss)`` drops at the cut first and
    rolls loss only on frames that survive it.
    """

    def policy(frame: ObservedFrame) -> Verdict:
        for p in policies:
            verdict = p(frame)
            if verdict.action is not verdict.action.DELIVER:
                return verdict
        return Verdict.deliver()

    return policy


# -- scheduled fault plans --------------------------------------------------


@dataclass(frozen=True, slots=True)
class PolicyWindow:
    """One fault policy active on ``[start, end)`` of the plan clock."""

    start: float
    end: float
    policy: Policy
    name: str


class LeaderEventKind(enum.Enum):
    """What happens to the leader at a scheduled instant."""

    CRASH_WARM = "crash-warm"          #: crash, then restore from snapshot
    RESTORE = "restore"                #: warm restore completes
    CRASH_FAILOVER = "crash-failover"  #: crash with no snapshot; promote standby


@dataclass(frozen=True, slots=True)
class LeaderEvent:
    """A leader crash/restore event on the plan clock."""

    at: float
    kind: LeaderEventKind


class FaultPlan:
    """A seeded, clock-driven schedule of faults.

    The plan owns two things: *policy windows* (network faults active
    over time intervals) and *leader events* (crash/restore instants).
    :meth:`as_policy` turns the window schedule into a single adversary
    policy evaluated against ``time_source`` — normally the virtual
    clock of the run, so the whole scenario is deterministic.  Leader
    events are not executed here; a runner (see ``repro.chaos.soak``)
    schedules them on the same clock.

    Builder methods return ``self`` so plans read as a schedule::

        plan = (FaultPlan(seed=7)
                .loss(4, 20, drop_rate=0.3, duplicate_rate=0.05)
                .partition(22, 30, [managers | half, rest])
                .crash_warm(at=10.0, restore_at=11.0)
                .crash_failover(at=34.0))
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.windows: list[PolicyWindow] = []
        self.leader_events: list[LeaderEvent] = []
        self._fork_count = 0

    def _fork_seed(self) -> int:
        # Derive one sub-seed per window so two loss windows in the same
        # plan do not replay identical roll sequences.
        self._fork_count += 1
        rng = DeterministicRandom(self.seed).fork(f"window-{self._fork_count}")
        return int.from_bytes(rng.random_bytes(8), "big")

    # -- window builders ---------------------------------------------------

    def window(
        self, start: float, end: float, policy: Policy, name: str
    ) -> "FaultPlan":
        """Add an arbitrary policy active on ``[start, end)``."""
        if end <= start:
            raise ValueError("window end must be after start")
        self.windows.append(PolicyWindow(start, end, policy, name))
        return self

    def loss(
        self,
        start: float,
        end: float,
        drop_rate: float = 0.3,
        duplicate_rate: float = 0.0,
    ) -> "FaultPlan":
        """i.i.d. loss/duplication window."""
        from repro.net.lossy import LossyPolicy

        policy = LossyPolicy(
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            seed=self._fork_seed(),
        )
        return self.window(start, end, policy, f"loss({drop_rate})")

    def bursty(
        self,
        start: float,
        end: float,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.2,
        loss_good: float = 0.01,
        loss_bad: float = 0.7,
    ) -> "FaultPlan":
        """Gilbert–Elliott bursty loss window."""
        policy = GilbertElliottPolicy(
            p_good_to_bad=p_good_to_bad,
            p_bad_to_good=p_bad_to_good,
            loss_good=loss_good,
            loss_bad=loss_bad,
            seed=self._fork_seed(),
        )
        return self.window(start, end, policy, "bursty")

    def delay(
        self,
        start: float,
        end: float,
        min_hold: float = 0.05,
        max_hold: float = 0.5,
        delay_rate: float = 1.0,
    ) -> "FaultPlan":
        """Delay/reorder window."""
        policy = DelayReorderPolicy(
            min_hold=min_hold,
            max_hold=max_hold,
            delay_rate=delay_rate,
            seed=self._fork_seed(),
        )
        return self.window(start, end, policy, "delay-reorder")

    def partition(
        self,
        start: float,
        end: float,
        components: Sequence[Iterable[str]],
    ) -> "FaultPlan":
        """Partition window; heals (window closes) at ``end``."""
        policy = PartitionPolicy(components)
        return self.window(start, end, policy, "partition")

    # -- leader event builders ---------------------------------------------

    def crash_warm(self, at: float, restore_at: float) -> "FaultPlan":
        """Crash the leader at ``at``; warm-restore it at ``restore_at``."""
        if restore_at <= at:
            raise ValueError("restore must come after the crash")
        self.leader_events.append(LeaderEvent(at, LeaderEventKind.CRASH_WARM))
        self.leader_events.append(LeaderEvent(restore_at, LeaderEventKind.RESTORE))
        return self

    def crash_failover(self, at: float) -> "FaultPlan":
        """Crash the leader at ``at`` with no snapshot; standby takes over."""
        self.leader_events.append(
            LeaderEvent(at, LeaderEventKind.CRASH_FAILOVER)
        )
        return self

    # -- evaluation --------------------------------------------------------

    def active_windows(self, now: float) -> list[PolicyWindow]:
        """Windows covering instant ``now``."""
        return [w for w in self.windows if w.start <= now < w.end]

    def as_policy(
        self,
        time_source: Callable[[], float],
        telemetry: EventBus | None = None,
    ) -> Policy:
        """Single adversary policy evaluating the window schedule.

        At each frame, every window active at ``time_source()`` gets a
        look, composed in insertion order (first non-DELIVER wins).

        With ``telemetry``, window transitions are announced as
        :class:`FaultWindowOpened` / :class:`FaultWindowClosed` events.
        The policy is only evaluated when a frame is observed, so the
        announcements are *lazy*: a window opening is reported at the
        first frame inside it, a closing at the first frame past it.
        """
        open_windows: set[int] = set()

        def policy(frame: ObservedFrame) -> Verdict:
            now = time_source()
            verdict: Verdict | None = None
            for i, w in enumerate(self.windows):
                active = w.start <= now < w.end
                if telemetry:
                    if active and i not in open_windows:
                        open_windows.add(i)
                        telemetry.emit(
                            FaultWindowOpened(w.name, w.start, w.end)
                        )
                    elif not active and i in open_windows and now >= w.end:
                        open_windows.discard(i)
                        telemetry.emit(FaultWindowClosed(w.name, w.end))
                if active and verdict is None:
                    candidate = w.policy(frame)
                    if candidate.action is not candidate.action.DELIVER:
                        verdict = candidate
            return verdict if verdict is not None else Verdict.deliver()

        return policy

    def describe(self) -> str:
        """Human-readable schedule, for reports."""
        lines = [f"FaultPlan(seed={self.seed})"]
        for w in sorted(self.windows, key=lambda w: w.start):
            lines.append(f"  [{w.start:6.1f}, {w.end:6.1f})  {w.name}")
        for e in sorted(self.leader_events, key=lambda e: e.at):
            lines.append(f"  @{e.at:6.1f}            leader {e.kind.value}")
        return "\n".join(lines)
