"""Seeded random loss/duplication for the in-memory network.

:class:`LossyPolicy` is an :class:`~repro.net.adversary.Adversary`
policy modelling an *unreliable* (rather than malicious) network:
each frame is independently dropped or duplicated with configured
probabilities, deterministically per seed.  Combined with the protocol
stack's retransmission layer it demonstrates (and tests) liveness under
loss — joins and admin delivery eventually succeed even at high drop
rates, without weakening any safety property.
"""

from __future__ import annotations

from repro.crypto.rng import DeterministicRandom
from repro.net.adversary import ObservedFrame, Verdict
from repro.telemetry.metrics import MetricsRegistry


class LossyPolicy:
    """Per-frame i.i.d. drop/duplicate policy, seeded.

    When a :class:`~repro.telemetry.metrics.MetricsRegistry` is given,
    every non-DELIVER verdict also increments
    ``fault_frames_total{policy="loss", fate=...}``.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        if not 0.0 <= duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        if drop_rate + duplicate_rate > 1.0:
            raise ValueError(
                "drop_rate + duplicate_rate must not exceed 1.0"
            )
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self._rng = DeterministicRandom(seed).fork("lossy")
        self._metrics = metrics
        self.dropped = 0
        self.duplicated = 0

    def _uniform(self) -> float:
        raw = int.from_bytes(self._rng.random_bytes(8), "big")
        return raw / float(1 << 64)

    def _count(self, fate: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "fault_frames_total", policy="loss", fate=fate
            ).incr()

    def __call__(self, frame: ObservedFrame) -> Verdict:
        roll = self._uniform()
        if roll < self.drop_rate:
            self.dropped += 1
            self._count("dropped")
            return Verdict.drop()
        if roll < self.drop_rate + self.duplicate_rate:
            self.duplicated += 1
            self._count("duplicated")
            return Verdict.duplicate()
        return Verdict.deliver()
