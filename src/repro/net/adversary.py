"""The network adversary.

In the paper's threat model, compromised participants and outsiders "can
read all the messages exchanged, replay old messages, and send arbitrary
messages they can construct."  :class:`Adversary` gives attack code
exactly that power over a :class:`~repro.net.memnet.MemoryNetwork`:

* every frame that any honest party sends is *observed* and appended to
  the adversary's log (the concrete analogue of ``trace(q)``),
* a per-frame policy decides whether the frame is delivered, dropped,
  duplicated, or replaced,
* the adversary can *inject* arbitrary envelopes at any time, with any
  claimed sender.

The adversary cannot, of course, open sealed boxes without keys — the
crypto layer enforces that, exactly as the formal model's Analz does.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.telemetry.events import (
    EventBus,
    FrameInjected,
    frame_id,
    resolve_bus,
)
from repro.wire.message import Envelope


class FrameAction(enum.Enum):
    """What the adversary does with an observed frame."""

    DELIVER = "deliver"      #: pass through unchanged
    DROP = "drop"            #: silently discard
    DUPLICATE = "duplicate"  #: deliver twice
    REPLACE = "replace"      #: deliver substitute frames instead
    DELAY = "delay"          #: deliver later (possibly reordered)


@dataclass(frozen=True, slots=True)
class ObservedFrame:
    """One frame as seen on the wire, with its true origin address."""

    origin: str
    envelope: Envelope
    sequence: int


@dataclass
class Verdict:
    """A policy's decision about one frame."""

    action: FrameAction = FrameAction.DELIVER
    substitutes: list[Envelope] = field(default_factory=list)
    #: Seconds to hold the frame before delivery (DELAY only).  Frames
    #: with different hold times overtake each other, so delay is also
    #: how a policy reorders traffic.
    hold: float = 0.0

    @classmethod
    def deliver(cls) -> "Verdict":
        return cls(FrameAction.DELIVER)

    @classmethod
    def drop(cls) -> "Verdict":
        return cls(FrameAction.DROP)

    @classmethod
    def duplicate(cls) -> "Verdict":
        return cls(FrameAction.DUPLICATE)

    @classmethod
    def replace(cls, *envelopes: Envelope) -> "Verdict":
        return cls(FrameAction.REPLACE, list(envelopes))

    @classmethod
    def delay(cls, hold: float) -> "Verdict":
        if hold < 0:
            raise ValueError("hold must be >= 0")
        return cls(FrameAction.DELAY, hold=hold)


Policy = Callable[[ObservedFrame], Verdict]


@dataclass
class SelectiveSilencePolicy:
    """A Byzantine insider's targeted silence, as a frame policy.

    Drops every frame from ``origin`` to any victim — modelling a
    compromised leader that stays perfectly responsive to most of the
    group while starving chosen members of rekeys and membership
    updates (the selective-silence fault of the Byzantine family).
    ``drop_rate`` below 1.0 makes the silence probabilistic (seeded via
    ``rng``, a :class:`~repro.crypto.rng.RandomSource`), which is
    harder to tell apart from ordinary loss.  Everything else passes
    through untouched.
    """

    origin: str
    victims: frozenset[str] | set[str]
    drop_rate: float = 1.0
    rng: object | None = None  # RandomSource; only used when rate < 1.0
    dropped: int = 0

    def __call__(self, frame: ObservedFrame) -> Verdict:
        if (
            frame.origin != self.origin
            or frame.envelope.recipient not in self.victims
        ):
            return Verdict.deliver()
        if self.drop_rate < 1.0:
            if self.rng is None:
                raise ValueError(
                    "probabilistic silence needs a seeded RandomSource"
                )
            draw = int.from_bytes(self.rng.random_bytes(8), "big")
            if draw / float(1 << 64) >= self.drop_rate:
                return Verdict.deliver()
        self.dropped += 1
        return Verdict.drop()


class Adversary:
    """Dolev-Yao controller over a :class:`MemoryNetwork`.

    Attack code either installs a :data:`Policy` callable (decides per
    frame) or drives the helpers (:meth:`drop_next`, :meth:`replay`)
    directly.  The complete wire history is kept in :attr:`log`.
    """

    def __init__(self, telemetry: EventBus | None = None) -> None:
        self.log: list[ObservedFrame] = []
        self._policy: Policy | None = None
        self._network = None  # set by MemoryNetwork.attach_adversary
        self._one_shot_drops: list[Callable[[ObservedFrame], bool]] = []
        self._telemetry = resolve_bus(telemetry)

    # -- wiring ----------------------------------------------------------

    def bind(self, network) -> None:
        """Called by the network when the adversary is attached."""
        self._network = network

    def set_policy(self, policy: Policy | None) -> None:
        """Install (or clear) the per-frame policy."""
        self._policy = policy

    # -- per-frame decision (called by the network) -----------------------

    def observe(self, frame: ObservedFrame) -> Verdict:
        """Record a frame and decide its fate."""
        self.log.append(frame)
        for i, predicate in enumerate(self._one_shot_drops):
            if predicate(frame):
                del self._one_shot_drops[i]
                return Verdict.drop()
        if self._policy is not None:
            return self._policy(frame)
        return Verdict.deliver()

    # -- attack helpers ----------------------------------------------------

    def drop_next(self, predicate: Callable[[ObservedFrame], bool]) -> None:
        """Silently drop the next frame matching ``predicate``."""
        self._one_shot_drops.append(predicate)

    async def inject(self, envelope: Envelope) -> None:
        """Send a forged envelope to its recipient, bypassing any policy."""
        if self._network is None:
            raise RuntimeError("adversary is not attached to a network")
        if self._telemetry:
            self._telemetry.emit(FrameInjected(
                envelope.sender, envelope.recipient,
                envelope.label.name, frame_id(envelope),
            ))
        await self._network.deliver_raw(envelope)

    async def replay(self, frame: ObservedFrame) -> None:
        """Re-send a previously observed frame verbatim."""
        await self.inject(frame.envelope)

    def frames_to(self, recipient: str) -> list[ObservedFrame]:
        """All logged frames addressed to ``recipient``."""
        return [f for f in self.log if f.envelope.recipient == recipient]

    def frames_with_label(self, label) -> list[ObservedFrame]:
        """All logged frames carrying ``label``."""
        return [f for f in self.log if f.envelope.label == label]
