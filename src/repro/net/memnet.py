"""In-memory asyncio network with adversary interposition.

All frames sent through a :class:`MemoryNetwork` pass through the
attached :class:`~repro.net.adversary.Adversary` (if any), which may
deliver, drop, duplicate, or replace them.  Delivery is via per-endpoint
unbounded queues, so the network is asynchronous and non-blocking, like
the paper's model.  Frames to unknown addresses vanish silently — an
insecure network gives no delivery receipts.
"""

from __future__ import annotations

import asyncio

from repro.exceptions import AddressInUse, ConnectionClosed
from repro.net.adversary import Adversary, FrameAction, ObservedFrame
from repro.net.transport import Endpoint, Transport
from repro.telemetry.events import (
    EventBus,
    FrameDelayed,
    FrameDropped,
    FrameDuplicated,
    FrameReplaced,
    frame_id,
    resolve_bus,
)
from repro.wire.message import Envelope

_CLOSED = object()


class MemoryEndpoint(Endpoint):
    """An endpoint attached to a :class:`MemoryNetwork`."""

    def __init__(self, network: "MemoryNetwork", address: str) -> None:
        self._network = network
        self._address = address
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed = False

    @property
    def address(self) -> str:
        return self._address

    async def send(self, envelope: Envelope) -> None:
        if self._closed:
            raise ConnectionClosed(f"endpoint {self._address} is closed")
        await self._network.route(self._address, envelope)

    async def recv(self) -> Envelope:
        if self._closed:
            raise ConnectionClosed(f"endpoint {self._address} is closed")
        item = await self._queue.get()
        if item is _CLOSED:
            raise ConnectionClosed(f"endpoint {self._address} is closed")
        return item

    def recv_nowait(self) -> Envelope | None:
        """Non-blocking receive; returns None if no frame is queued."""
        try:
            item = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        if item is _CLOSED:
            raise ConnectionClosed(f"endpoint {self._address} is closed")
        return item

    @property
    def pending(self) -> int:
        """Number of frames waiting to be received."""
        return self._queue.qsize()

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._network._detach(self._address)
            await self._queue.put(_CLOSED)

    def _enqueue(self, envelope: Envelope) -> None:
        if not self._closed:
            self._queue.put_nowait(envelope)


class MemoryNetwork(Transport):
    """An insecure, asynchronous, in-process network."""

    def __init__(self, telemetry: EventBus | None = None) -> None:
        self._endpoints: dict[str, MemoryEndpoint] = {}
        self._adversary: Adversary | None = None
        self._sequence = 0
        self._telemetry = resolve_bus(telemetry)
        #: Total frames routed (observed traffic counter for benchmarks).
        self.frames_routed = 0

    async def attach(self, address: str) -> MemoryEndpoint:
        """Bind a new endpoint at ``address``."""
        if address in self._endpoints:
            raise AddressInUse(f"address {address!r} already attached")
        endpoint = MemoryEndpoint(self, address)
        self._endpoints[address] = endpoint
        return endpoint

    def attach_adversary(self, adversary: Adversary) -> None:
        """Give ``adversary`` full control of the wire."""
        self._adversary = adversary
        adversary.bind(self)

    # -- routing -----------------------------------------------------------

    async def route(self, origin: str, envelope: Envelope) -> None:
        """Route a frame from an honest endpoint, via the adversary."""
        self.frames_routed += 1
        if self._adversary is None:
            self._deliver(envelope)
            return
        self._sequence += 1
        frame = ObservedFrame(
            origin=origin, envelope=envelope, sequence=self._sequence
        )
        verdict = self._adversary.observe(frame)
        if self._telemetry and verdict.action is not FrameAction.DELIVER:
            self._publish_fate(origin, envelope, verdict)
        if verdict.action is FrameAction.DELIVER:
            self._deliver(envelope)
        elif verdict.action is FrameAction.DROP:
            pass
        elif verdict.action is FrameAction.DUPLICATE:
            self._deliver(envelope)
            self._deliver(envelope)
        elif verdict.action is FrameAction.REPLACE:
            for sub in verdict.substitutes:
                self._deliver(sub)
        elif verdict.action is FrameAction.DELAY:
            # Held frames ride the event loop's timer wheel; frames with
            # shorter holds overtake longer ones, so DELAY doubles as
            # reordering.  Under a virtual-time loop this is exact and
            # deterministic.
            asyncio.get_running_loop().call_later(
                verdict.hold, self._deliver, envelope
            )

    def _publish_fate(self, origin: str, envelope: Envelope, verdict) -> None:
        """Emit the telemetry event matching a non-DELIVER verdict."""
        label = envelope.label.name
        fid = frame_id(envelope)
        recipient = envelope.recipient
        if verdict.action is FrameAction.DROP:
            event = FrameDropped(origin, recipient, label, fid)
        elif verdict.action is FrameAction.DUPLICATE:
            event = FrameDuplicated(origin, recipient, label, fid)
        elif verdict.action is FrameAction.REPLACE:
            event = FrameReplaced(
                origin, recipient, label, fid, len(verdict.substitutes)
            )
        elif verdict.action is FrameAction.DELAY:
            event = FrameDelayed(origin, recipient, label, fid, verdict.hold)
        else:  # pragma: no cover - exhaustive over non-DELIVER actions
            return
        self._telemetry.emit(event)

    async def deliver_raw(self, envelope: Envelope) -> None:
        """Adversary-injected delivery: no observation, no policy."""
        self.frames_routed += 1
        self._deliver(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        endpoint = self._endpoints.get(envelope.recipient)
        if endpoint is not None:
            endpoint._enqueue(envelope)
        # Unknown recipient: the frame vanishes, as on a real network.

    def _detach(self, address: str) -> None:
        self._endpoints.pop(address, None)

    @property
    def addresses(self) -> list[str]:
        """Currently attached addresses."""
        return sorted(self._endpoints)
