"""TCP transport.

Runs the same :class:`~repro.net.transport.Endpoint` interface over real
sockets so the examples can span processes.  Topology matches the paper's
architecture (Figure 1): the *leader* listens; each member dials the
leader and the resulting bidirectional stream is the member's
point-to-point link.  Frames are length-prefixed envelopes.

This transport is honest plumbing — the adversarial behaviours live in
:mod:`repro.net.memnet`/:mod:`repro.net.adversary`; over TCP the attacker
role can simply be played by another client sending forged envelopes,
since the leader trusts nothing about an envelope header anyway.

What the transport *does* own is its availability posture:

* The leader's mailbox can be **bounded** — pass a
  :class:`~repro.overload.mailbox.BoundedMailbox` and every accepted
  frame goes through priority classification and (optionally) per-sender
  fair-share admission, with typed ``FrameShed``/``QueueSaturated``
  telemetry instead of silent unbounded growth.  Without one, the seed
  behaviour (unbounded queue) is unchanged.
* Frame fates that used to be silent are now observable: an outbound
  frame with no live link emits
  :class:`~repro.telemetry.events.FrameUnroutable`; a peer claiming a
  return route another live link holds emits
  :class:`~repro.telemetry.events.RouteReclaimed`.
* Stream teardown is *narrow*: only expected stream errors (peer went
  away, malformed framing) end a link quietly.  Anything else emits
  :class:`~repro.telemetry.events.TransportError` and propagates —
  a bug in frame handling must never be swallowed as a disconnect.
"""

from __future__ import annotations

import asyncio
import struct

from repro.exceptions import CodecError, ConnectionClosed
from repro.net.transport import Endpoint, Transport
from repro.telemetry.events import (
    EventBus,
    FrameUnroutable,
    RouteReclaimed,
    TransportError,
    frame_id,
)
from repro.wire.message import Envelope

_MAX_FRAME = 1 << 24

#: Stream errors that legitimately end a link: the peer vanished, the
#: stream died mid-frame, or the peer sent bytes that do not frame.
_EXPECTED_STREAM_ERRORS = (
    ConnectionClosed,
    CodecError,
    ConnectionResetError,
    BrokenPipeError,
)


async def write_frame(writer: asyncio.StreamWriter, envelope: Envelope) -> None:
    """Write one length-prefixed envelope."""
    payload = envelope.to_bytes()
    writer.write(struct.pack(">I", len(payload)) + payload)
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> Envelope:
    """Read one length-prefixed envelope."""
    try:
        header = await reader.readexactly(4)
        (length,) = struct.unpack(">I", header)
        if length > _MAX_FRAME:
            raise ConnectionClosed("oversized frame")
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("stream ended") from exc
    return Envelope.from_bytes(payload)


class TcpLeaderEndpoint(Endpoint):
    """The leader's endpoint: a TCP server accepting member links.

    Incoming frames from all links are merged into one receive queue
    (the leader's mailbox).  Outgoing frames are routed to the link whose
    peer last claimed the envelope's recipient address; unroutable frames
    are dropped — loudly, when a telemetry bus is attached.

    With ``mailbox`` (a :class:`~repro.overload.mailbox.BoundedMailbox`)
    the receive queue is bounded and admission-controlled; without one
    it is the seed's unbounded queue.
    """

    def __init__(
        self,
        address: str,
        *,
        mailbox=None,
        telemetry: EventBus | None = None,
    ) -> None:
        self._address = address
        self._queue: asyncio.Queue[Envelope] = asyncio.Queue()
        self._mailbox = mailbox
        self._arrival = asyncio.Event()
        self._telemetry = telemetry
        self._links: dict[str, asyncio.StreamWriter] = {}
        self._server: asyncio.AbstractServer | None = None
        self._closed = False

    @property
    def address(self) -> str:
        return self._address

    @property
    def mailbox(self):
        return self._mailbox

    async def start(self, host: str, port: int) -> None:
        """Begin listening for member connections."""
        self._server = await asyncio.start_server(self._handle, host, port)

    @property
    def port(self) -> int:
        """The actual listening port (useful with port 0)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer_addr: str | None = None
        try:
            while True:
                envelope = await read_frame(reader)
                # Learn/refresh the claimed address for return routing.
                if envelope.sender:
                    holder = self._links.get(envelope.sender)
                    if (holder is not None and holder is not writer
                            and self._telemetry):
                        # Another live link held this return route: a
                        # reconnect, or an insider stealing a route.
                        self._telemetry.emit(RouteReclaimed(
                            self._address, envelope.sender,
                            frame_id(envelope),
                        ))
                    peer_addr = envelope.sender
                    self._links[peer_addr] = writer
                self._enqueue(envelope)
        except _EXPECTED_STREAM_ERRORS:
            pass  # the peer went away / sent garbage: just drop the link
        except Exception as exc:
            # Anything else is a bug, not a disconnect — surface it.
            if self._telemetry:
                self._telemetry.emit(TransportError(
                    self._address, peer_addr or "", repr(exc)
                ))
            raise
        finally:
            if peer_addr is not None and self._links.get(peer_addr) is writer:
                del self._links[peer_addr]
            writer.close()

    def _enqueue(self, envelope: Envelope) -> None:
        if self._mailbox is not None:
            now = asyncio.get_running_loop().time()
            if self._mailbox.offer(envelope, now):
                self._arrival.set()
            return
        self._queue.put_nowait(envelope)

    async def send(self, envelope: Envelope) -> None:
        if self._closed:
            raise ConnectionClosed("leader endpoint closed")
        writer = self._links.get(envelope.recipient)
        if writer is None:
            # Unroutable -> dropped, as on an insecure network — but
            # never silently when someone is watching.
            if self._telemetry:
                self._telemetry.emit(FrameUnroutable(
                    self._address, envelope.recipient,
                    envelope.label.name, frame_id(envelope),
                ))
            return
        try:
            await write_frame(writer, envelope)
        except (ConnectionResetError, OSError):
            self._links.pop(envelope.recipient, None)

    async def recv(self) -> Envelope:
        if self._closed:
            raise ConnectionClosed("leader endpoint closed")
        if self._mailbox is None:
            return await self._queue.get()
        while True:
            envelope = self._mailbox.take()
            if envelope is not None:
                return envelope
            self._arrival.clear()
            await self._arrival.wait()
            if self._closed:
                raise ConnectionClosed("leader endpoint closed")

    async def close(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in self._links.values():
            writer.close()
        self._links.clear()
        self._arrival.set()  # release a recv() parked on the mailbox


class TcpMemberEndpoint(Endpoint):
    """A member's endpoint: one TCP connection to the leader."""

    def __init__(self, address: str) -> None:
        self._address = address
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._closed = False

    @property
    def address(self) -> str:
        return self._address

    async def connect(self, host: str, port: int) -> None:
        """Dial the leader."""
        self._reader, self._writer = await asyncio.open_connection(host, port)

    async def send(self, envelope: Envelope) -> None:
        if self._closed or self._writer is None:
            raise ConnectionClosed("member endpoint closed")
        await write_frame(self._writer, envelope)

    async def recv(self) -> Envelope:
        if self._closed or self._reader is None:
            raise ConnectionClosed("member endpoint closed")
        return await read_frame(self._reader)

    async def close(self) -> None:
        self._closed = True
        if self._writer is not None:
            self._writer.close()


class TcpTransport(Transport):
    """Transport facade used by the examples.

    ``attach(leader_id)`` must be called first to start the server; later
    ``attach`` calls dial it.  ``mailbox``/``telemetry`` are handed to
    the leader endpoint (members are point-to-point and need neither).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        mailbox=None,
        telemetry: EventBus | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._mailbox = mailbox
        self._telemetry = telemetry
        self._leader: TcpLeaderEndpoint | None = None

    async def attach(self, address: str) -> Endpoint:
        if self._leader is None:
            leader = TcpLeaderEndpoint(
                address, mailbox=self._mailbox, telemetry=self._telemetry
            )
            await leader.start(self._host, self._port)
            self._port = leader.port
            self._leader = leader
            return leader
        member = TcpMemberEndpoint(address)
        await member.connect(self._host, self._port)
        return member
