"""TCP transport.

Runs the same :class:`~repro.net.transport.Endpoint` interface over real
sockets so the examples can span processes.  Topology matches the paper's
architecture (Figure 1): the *leader* listens; each member dials the
leader and the resulting bidirectional stream is the member's
point-to-point link.  Frames are length-prefixed envelopes.

This transport is honest plumbing — the adversarial behaviours live in
:mod:`repro.net.memnet`/:mod:`repro.net.adversary`; over TCP the attacker
role can simply be played by another client sending forged envelopes,
since the leader trusts nothing about an envelope header anyway.
"""

from __future__ import annotations

import asyncio
import struct

from repro.exceptions import ConnectionClosed
from repro.net.transport import Endpoint, Transport
from repro.wire.message import Envelope

_MAX_FRAME = 1 << 24


async def write_frame(writer: asyncio.StreamWriter, envelope: Envelope) -> None:
    """Write one length-prefixed envelope."""
    payload = envelope.to_bytes()
    writer.write(struct.pack(">I", len(payload)) + payload)
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> Envelope:
    """Read one length-prefixed envelope."""
    try:
        header = await reader.readexactly(4)
        (length,) = struct.unpack(">I", header)
        if length > _MAX_FRAME:
            raise ConnectionClosed("oversized frame")
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("stream ended") from exc
    return Envelope.from_bytes(payload)


class TcpLeaderEndpoint(Endpoint):
    """The leader's endpoint: a TCP server accepting member links.

    Incoming frames from all links are merged into one receive queue
    (the leader's mailbox).  Outgoing frames are routed to the link whose
    peer last claimed the envelope's recipient address; unroutable frames
    are dropped, as on an insecure network.
    """

    def __init__(self, address: str) -> None:
        self._address = address
        self._queue: asyncio.Queue[Envelope] = asyncio.Queue()
        self._links: dict[str, asyncio.StreamWriter] = {}
        self._server: asyncio.AbstractServer | None = None
        self._closed = False

    @property
    def address(self) -> str:
        return self._address

    async def start(self, host: str, port: int) -> None:
        """Begin listening for member connections."""
        self._server = await asyncio.start_server(self._handle, host, port)

    @property
    def port(self) -> int:
        """The actual listening port (useful with port 0)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer_addr: str | None = None
        try:
            while True:
                envelope = await read_frame(reader)
                # Learn/refresh the claimed address for return routing.
                if envelope.sender:
                    peer_addr = envelope.sender
                    self._links[peer_addr] = writer
                self._queue.put_nowait(envelope)
        except (ConnectionClosed, Exception):
            pass
        finally:
            if peer_addr is not None and self._links.get(peer_addr) is writer:
                del self._links[peer_addr]
            writer.close()

    async def send(self, envelope: Envelope) -> None:
        if self._closed:
            raise ConnectionClosed("leader endpoint closed")
        writer = self._links.get(envelope.recipient)
        if writer is None:
            return  # unroutable -> dropped
        try:
            await write_frame(writer, envelope)
        except (ConnectionResetError, OSError):
            self._links.pop(envelope.recipient, None)

    async def recv(self) -> Envelope:
        if self._closed:
            raise ConnectionClosed("leader endpoint closed")
        return await self._queue.get()

    async def close(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in self._links.values():
            writer.close()
        self._links.clear()


class TcpMemberEndpoint(Endpoint):
    """A member's endpoint: one TCP connection to the leader."""

    def __init__(self, address: str) -> None:
        self._address = address
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._closed = False

    @property
    def address(self) -> str:
        return self._address

    async def connect(self, host: str, port: int) -> None:
        """Dial the leader."""
        self._reader, self._writer = await asyncio.open_connection(host, port)

    async def send(self, envelope: Envelope) -> None:
        if self._closed or self._writer is None:
            raise ConnectionClosed("member endpoint closed")
        await write_frame(self._writer, envelope)

    async def recv(self) -> Envelope:
        if self._closed or self._reader is None:
            raise ConnectionClosed("member endpoint closed")
        return await read_frame(self._reader)

    async def close(self) -> None:
        self._closed = True
        if self._writer is not None:
            self._writer.close()


class TcpTransport(Transport):
    """Transport facade used by the examples.

    ``attach(leader_id)`` must be called first to start the server; later
    ``attach`` calls dial it.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._leader: TcpLeaderEndpoint | None = None

    async def attach(self, address: str) -> Endpoint:
        if self._leader is None:
            leader = TcpLeaderEndpoint(address)
            await leader.start(self._host, self._port)
            self._port = leader.port
            self._leader = leader
            return leader
        member = TcpMemberEndpoint(address)
        await member.connect(self._host, self._port)
        return member
