"""A §3.2 group member with the end-to-end data plane attached.

:class:`DataMember` composes an unmodified
:class:`~repro.enclaves.itgm.member.MemberProtocol` with a
:class:`~repro.dataplane.channel.DataChannel` (or the group-key-only
baseline) and the reliability layer, presenting the same sans-IO
``handle(envelope) -> (out, events)`` surface so it drops straight
into :class:`~repro.enclaves.harness.SyncNetwork`.

The one piece of glue that matters: **after every management frame**
the wrapper compares the member's group epoch with the channel's and
rebinds on mismatch — so a rekey (cadence, eviction, or leave) re-seeds
every chain before the next data frame is sealed or opened, and the
reliability layer re-seals its unacked payloads on the new chains.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.dataplane.channel import DataChannel, GroupKeyChannel
from repro.dataplane.ratchet import DEFAULT_SKIP_WINDOW
from repro.dataplane.reliable import ReliableReceiver, ReliableSender
from repro.enclaves.common import Event
from repro.enclaves.itgm.member import MemberProtocol
from repro.telemetry.events import EventBus
from repro.wire.labels import Label
from repro.wire.message import Envelope


class DataMember:
    """Member + ratcheted channel + reliable multicast, one endpoint."""

    def __init__(
        self,
        member: MemberProtocol,
        *,
        ratcheted: bool = True,
        reliable: bool = True,
        window: int = DEFAULT_SKIP_WINDOW,
        clock: Callable[[], float] | None = None,
        telemetry: EventBus | None = None,
    ) -> None:
        self.member = member
        self._clock = clock if clock is not None else (lambda: 0.0)
        if ratcheted:
            self.channel = DataChannel(
                member.user_id, window=window, telemetry=telemetry
            )
        else:
            self.channel = GroupKeyChannel(member.user_id, telemetry=telemetry)
        self.receiver = ReliableReceiver(member.user_id, self.channel)
        self.sender: ReliableSender | None = None
        if reliable:
            self.sender = ReliableSender(
                member.user_id, self.channel,
                peers=lambda: self.member.membership,
                telemetry=telemetry,
            )
        #: Plaintexts delivered to the application, in arrival order.
        self.inbox: list[tuple[str, int, bytes]] = []
        self._sync_epoch()

    # -- identity passthroughs -------------------------------------------------

    @property
    def user_id(self) -> str:
        return self.member.user_id

    @property
    def leader_id(self) -> str:
        return self.member.leader_id

    # -- sans-IO surface -------------------------------------------------------

    def handle(self, envelope: Envelope) -> tuple[list[Envelope], list[Event]]:
        """Route data frames to the data plane, everything else to the
        wrapped member (then re-sync chains with the member's epoch)."""
        if envelope.label.is_data:
            return self._handle_data(envelope), []
        out, events = self.member.handle(envelope)
        out.extend(self._sync_epoch())
        return out, events

    def _handle_data(self, envelope: Envelope) -> list[Envelope]:
        now = self._clock()
        if envelope.label is Label.DATA_MSG:
            delivery, control = self.receiver.on_data(
                envelope, self.member.leader_id
            )
            if delivery is not None:
                self.inbox.append(delivery)
            return control
        if self.sender is None:
            return []
        if envelope.label is Label.DATA_ACK:
            self.sender.on_ack(envelope, now)
            return []
        if envelope.label is Label.DATA_NACK:
            return self.sender.on_nack(envelope)
        return []

    def _sync_epoch(self) -> list[Envelope]:
        """Rebind chains when the member installed a new group key."""
        key = self.member.group_key
        if key is None or self.member.group_epoch == self.channel.epoch:
            return []
        self.channel.rebind(key, self.member.group_epoch)
        if self.sender is not None:
            return self.sender.rebind(self._clock())
        return []

    # -- application sends -----------------------------------------------------

    def send_data(self, payload: bytes) -> list[Envelope]:
        """Seal one application payload for relay to the group."""
        self._sync_epoch()
        if self.sender is not None:
            return [self.sender.send(payload, self.member.leader_id,
                                     self._clock())]
        _seq, envelope = self.channel.seal(payload, self.member.leader_id)
        return [envelope]

    def tick(self) -> list[Envelope]:
        """Drive the retransmit timer from the injected clock."""
        if self.sender is None:
            return []
        return self.sender.tick(self._clock())


__all__ = ["DataMember"]
