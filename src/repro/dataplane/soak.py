"""Mixed management + data chaos soak for the data plane.

One deterministic :class:`~repro.enclaves.harness.SyncNetwork` run
interleaves membership churn (a mid-run leave with rekey-on-leave, a
leader-initiated cadence rekey) with steady application traffic, while
a seeded fault interceptor drops, duplicates, and reorders **data**
frames (the management plane's loss behavior is the chaos layer's
subject; here it must merely keep working while data faults rage).

Asserted at the end of every run:

* **§5.4 invariants** on every live member — admin log a byte-prefix
  of the leader's send log, group-key epochs strictly increasing
  (reusing :mod:`repro.formal.properties`);
* **no duplicate delivery** — no member's application inbox contains
  the same payload twice, under duplication faults and retransmits;
* **completeness** — after the fault window closes and the retransmit
  timers drain, every live member holds every payload sent by every
  other live member (reliability actually recovered the losses);
* **zero post-leave decrypts** — the leaver's channel state and group
  key, captured at the moment of departure, open none of the data
  frames recorded after the leave committed (rekey-on-leave holds on
  the data plane), with every attempt landing as a typed rejection.

Everything — fault decisions, clocks, sequence numbers — derives from
the seed, so two runs with the same seed export byte-identical
telemetry JSONL (the CI determinism gate ``cmp``'s two exports).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRandom
from repro.dataplane.channel import DataChannel, decode_data_body
from repro.dataplane.member import DataMember
from repro.enclaves.common import RekeyPolicy, UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.member import MemberProtocol
from repro.exceptions import CodecError, IntegrityError, RatchetError, StateError
from repro.formal.properties import check_no_duplicates, check_prefix
from repro.overload.deadline import RetryBudget
from repro.telemetry.events import DataShed, EventBus, resolve_bus
from repro.wire.labels import Label
from repro.wire.message import Envelope


@dataclass
class DataSoakConfig:
    """Knobs for one seeded data-plane soak run."""

    seed: int = 0
    n_members: int = 4
    rounds: int = 40
    #: Virtual seconds per round (must exceed the retransmit floor so
    #: overdue frames actually retransmit during the drain tail).
    dt: float = 0.5
    p_loss: float = 0.08
    p_duplicate: float = 0.05
    p_reorder: float = 0.08
    #: Held (reordered) frames are released after this many rounds.
    reorder_hold: int = 2
    #: Round at which one member leaves (rekey-on-leave commits here).
    leave_round: int = 18
    #: Round of an extra leader-initiated cadence rekey.
    rekey_round: int = 28
    #: Fault-free rounds at the end so reliability can drain.
    drain_rounds: int = 8
    #: Retry allowance for the soak's senders.  The production default
    #: (0.2 retries per request) is sized for benign networks; a chaos
    #: run faulting ~20% of data frames — ACKs included — needs real
    #: headroom, or the completeness verdict just measures starvation.
    retry_ratio: float = 1.0
    retry_reserve: int = 10


@dataclass
class DataSoakReport:
    """Outcome of one soak run (``safe`` is the acceptance verdict)."""

    config: DataSoakConfig
    payloads_sent: int = 0
    frames_delivered: int = 0
    frames_shed: int = 0
    shed_by_reason: dict = field(default_factory=dict)
    skip_hits: int = 0
    skips_banked: int = 0
    retransmits: int = 0
    fully_acked: int = 0
    epochs_seen: int = 0
    post_leave_frames: int = 0
    post_leave_decrypts: int = 0
    post_leave_rejections: int = 0
    violations: list = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return not self.violations and self.post_leave_decrypts == 0

    def as_dict(self) -> dict:
        return {
            "seed": self.config.seed,
            "members": self.config.n_members,
            "rounds": self.config.rounds,
            "payloads_sent": self.payloads_sent,
            "frames_delivered": self.frames_delivered,
            "frames_shed": self.frames_shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "skip_hits": self.skip_hits,
            "skips_banked": self.skips_banked,
            "retransmits": self.retransmits,
            "fully_acked": self.fully_acked,
            "epochs_seen": self.epochs_seen,
            "post_leave_frames": self.post_leave_frames,
            "post_leave_decrypts": self.post_leave_decrypts,
            "post_leave_rejections": self.post_leave_rejections,
            "violations": list(self.violations),
            "safe": self.safe,
        }

    def format_table(self) -> str:
        d = self.as_dict()
        lines = [f"data soak · seed {d['seed']} · {d['members']} members · "
                 f"{d['rounds']} rounds"]
        lines.append("-" * max(len(lines[0]), 40))
        for key in ("payloads_sent", "frames_delivered", "frames_shed",
                    "skip_hits", "retransmits", "fully_acked", "epochs_seen",
                    "post_leave_frames", "post_leave_decrypts"):
            lines.append(f"  {key:<22} {d[key]}")
        for reason, count in d["shed_by_reason"].items():
            lines.append(f"  shed[{reason}]{'':<14} {count}")
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        lines.append(f"  verdict                {'SAFE' if self.safe else 'UNSAFE'}")
        return "\n".join(lines)


class _TraceShim:
    """Minimal ``GlobalState`` stand-in for the §5.4 list predicates."""

    def __init__(self, rcv, snd=()) -> None:
        self.rcv = tuple(rcv)
        self.snd = tuple(snd)


def _data_faults(
    rng: DeterministicRandom,
    config: DataSoakConfig,
    held: list,
    active: "list[bool]",
):
    """Seeded interceptor: loss/dup/hold applied to data frames only."""

    def interceptor(envelope: Envelope):
        if not envelope.label.is_data or not active[0]:
            return None
        roll = int.from_bytes(rng.random_bytes(8), "big") / 2.0**64
        if roll < config.p_loss:
            return []
        if roll < config.p_loss + config.p_duplicate:
            return [envelope, envelope]
        if roll < config.p_loss + config.p_duplicate + config.p_reorder:
            held.append([config.reorder_hold, envelope])
            return []
        return None

    return interceptor


@dataclass
class _SoakState:
    """What the traffic phase hands the verdict phase."""

    net: SyncNetwork
    leader: GroupLeader
    members: dict
    member_ids: list
    leaver: str
    sent_log: list
    captured_channel: DataChannel | None
    captured_key: object
    captured_epoch: int
    leave_mark: int | None


def run_data_soak(
    config: DataSoakConfig, telemetry: EventBus | None = None
) -> DataSoakReport:
    """Run one seeded mixed management+data soak; see module docstring."""
    bus = resolve_bus(telemetry)
    report = DataSoakReport(config=config)
    shed_reasons: dict[str, int] = {}

    def count_shed(record) -> None:
        if isinstance(record.event, DataShed):
            shed_reasons[record.event.reason] = (
                shed_reasons.get(record.event.reason, 0) + 1
            )

    # Counters listen only during the traffic phase: the verdict phase
    # deliberately replays frames at captured channels, and those
    # probe rejections must not pollute the run's shed accounting.
    bus.subscribe(count_shed)
    try:
        state = _run_traffic(config, report, bus)
    finally:
        bus.unsubscribe(count_shed)
    report.shed_by_reason = shed_reasons
    _verdicts(config, report, state)
    return report


def _run_traffic(
    config: DataSoakConfig, report: DataSoakReport, bus: EventBus
) -> _SoakState:
    rng = DeterministicRandom(config.seed)
    now = [0.0]
    # Thread the run's bus through every emitting component: an
    # injected bus must observe the whole stack, not just the counters
    # this module subscribes itself (channels resolve to the process
    # default otherwise, and an injected bus would silently see nothing).
    net = SyncNetwork(telemetry=bus)
    directory = UserDirectory()
    leader = GroupLeader(
        "leader", directory,
        config=LeaderConfig(
            rekey_policy=RekeyPolicy.ON_JOIN | RekeyPolicy.ON_LEAVE),
        rng=rng.fork("leader"),
        telemetry=bus,
    )
    wire(net, "leader", leader)

    member_ids = [f"user-{i}" for i in range(config.n_members)]
    members: dict[str, DataMember] = {}
    for uid in member_ids:
        creds = directory.register_password(uid, f"pw-{uid}")
        core = MemberProtocol(creds, "leader", rng.fork(uid))
        dm = DataMember(core, clock=lambda: now[0], telemetry=bus)
        dm.sender.budget = RetryBudget(
            ratio=config.retry_ratio, min_reserve=config.retry_reserve)
        members[uid] = dm
        wire(net, uid, dm)
    for uid in member_ids:
        net.post(members[uid].member.start_join())
        net.run()

    held: list = []
    faults_on = [True]
    net.set_interceptor(_data_faults(rng.fork("faults"), config, held,
                                     faults_on))

    leaver = member_ids[-1]
    sent_log: list[tuple[str, int, bytes]] = []  # (sender, round, payload)
    captured_channel: DataChannel | None = None
    captured_key = None
    captured_epoch = -1
    leave_mark = None
    epochs = {leader.group_epoch}

    total_rounds = config.rounds + config.drain_rounds
    for rnd in range(total_rounds):
        now[0] = rnd * config.dt
        in_fault_window = rnd < config.rounds
        faults_on[0] = in_fault_window

        if rnd == config.leave_round:
            captured_channel = members[leaver].channel
            captured_key = members[leaver].member.group_key
            captured_epoch = members[leaver].channel.epoch
            net.post(members[leaver].member.start_leave())
            net.run()
            leave_mark = len(net.wire_log)
        if rnd == config.rekey_round:
            net.post_all(leader.rekey_now())
            net.run()

        if in_fault_window:
            senders = [uid for uid in member_ids
                       if uid != leaver or rnd < config.leave_round]
            sender = senders[rnd % len(senders)]
            payload = f"msg|{sender}|{rnd}".encode()
            net.post_all(members[sender].send_data(payload))
            sent_log.append((sender, rnd, payload))
            report.payloads_sent += 1

        # Release held (reordered) frames whose hold expired.
        for entry in held:
            entry[0] -= 1
        due = [e for e in held if e[0] <= 0]
        held[:] = [e for e in held if e[0] > 0]
        for _, envelope in due:
            net.post(envelope)

        net.run()
        for uid in member_ids:
            if uid == leaver and rnd >= config.leave_round:
                continue  # departed: its timers must not resurrect frames
            net.post_all(members[uid].tick())
        net.run()
        epochs.add(leader.group_epoch)

    report.epochs_seen = len(epochs)
    # Channel/sender counters snapshot here, before any verdict-phase
    # probing touches the (shared) captured channel objects.
    for uid in member_ids:
        report.frames_delivered += members[uid].channel.delivered
        report.frames_shed += members[uid].channel.shed
        stats = members[uid].channel.skip_stats()
        report.skip_hits += stats["skip_hits"]
        report.skips_banked += stats["skips_banked"]
        if members[uid].sender is not None:
            report.retransmits += members[uid].sender.retransmits
            report.fully_acked += members[uid].sender.fully_acked

    return _SoakState(
        net=net, leader=leader, members=members, member_ids=member_ids,
        leaver=leaver, sent_log=sent_log,
        captured_channel=captured_channel, captured_key=captured_key,
        captured_epoch=captured_epoch, leave_mark=leave_mark,
    )


def _verdicts(
    config: DataSoakConfig, report: DataSoakReport, state: _SoakState
) -> None:
    net, leader, members = state.net, state.leader, state.members
    member_ids, leaver = state.member_ids, state.leaver
    live = [uid for uid in member_ids if uid != leaver]

    # §5.4 on every live member.
    for uid in live:
        member_log = members[uid].member.admin_log
        leader_log = leader.admin_send_log(uid)
        shim = _TraceShim(
            rcv=[p.encode() for p in member_log],
            snd=[p.encode() for p in leader_log],
        )
        if check_prefix(None, shim) is not None:
            report.violations.append(f"{uid}: admin prefix violated")
        from repro.enclaves.itgm.admin import NewGroupKeyPayload

        member_epochs = [p.epoch for p in member_log
                         if isinstance(p, NewGroupKeyPayload)]
        if check_no_duplicates(None, _TraceShim(rcv=member_epochs)) is not None:
            report.violations.append(f"{uid}: duplicate epoch accepted")
        if any(b <= a for a, b in zip(member_epochs, member_epochs[1:])):
            report.violations.append(f"{uid}: stale group key accepted")

    # No duplicate delivery; completeness across live members.
    for uid in live:
        payloads = [p for (_s, _q, p) in members[uid].inbox]
        if len(payloads) != len(set(payloads)):
            report.violations.append(f"{uid}: duplicate payload delivered")
        expected = {p for (s, _r, p) in state.sent_log
                    if s != uid and s != leaver}
        missing = expected - set(payloads)
        if missing:
            report.violations.append(
                f"{uid}: {len(missing)} payload(s) never delivered"
            )

    # Zero post-leave decrypts for the leaver's captured state.  Only
    # frames sealed at an epoch *after* the capture count: frames the
    # group sealed at the leaver's final epoch (late retransmits of
    # pre-leave traffic) are readable by construction — the leaver was
    # a legitimate member when that epoch's chains were seeded.
    if state.captured_channel is not None and state.leave_mark is not None:
        for frame in net.wire_log[state.leave_mark:]:
            if frame.label is not Label.DATA_MSG:
                continue
            try:
                _sender, epoch, _seq, _box = decode_data_body(frame.body)
            except CodecError:
                continue
            if epoch <= state.captured_epoch:
                continue
            report.post_leave_frames += 1
            if _try_open(state.captured_channel, state.captured_key, frame):
                report.post_leave_decrypts += 1
            else:
                report.post_leave_rejections += 1


def _try_open(captured_channel: DataChannel, captured_key, frame) -> bool:
    """Can the leaver's captured state read one post-leave frame?

    Two arms: the live channel state as captured (must shed as an
    epoch mismatch), and a fresh channel re-seeded from the captured
    group key at the frame's own epoch (must fail authentication —
    the chains derive from a key the leaver never received).
    """
    try:
        captured_channel.open(frame)
        return True
    except (RatchetError, IntegrityError, CodecError, StateError):
        pass
    if captured_key is not None:
        try:
            _, epoch, _, _ = decode_data_body(frame.body)
            forged = DataChannel("leaver-forged")
            forged.rebind(captured_key, epoch)
            forged.open(frame)
            return True
        except (RatchetError, IntegrityError, CodecError, StateError):
            pass
    return False


__all__ = ["DataSoakConfig", "DataSoakReport", "run_data_soak"]
