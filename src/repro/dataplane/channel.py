"""The epoch-bound ratcheted data channel (and its weak baseline).

:class:`DataChannel` is the tentpole: it owns one
:class:`~repro.dataplane.ratchet.SenderState` for the local node and
one :class:`~repro.dataplane.ratchet.ReceiverState` per remote sender,
all seeded from the **current group-key epoch**.  :meth:`DataChannel.rebind`
is called on every membership rekey — new epoch, new chains — which is
precisely what makes rekey-on-leave a *data-plane* guarantee: the group
key a leaver departs with never becomes the post-leave group key, so
the chains it could derive (and any ``SenderState``/``ReceiverState``
it captured) open nothing sealed after the leave commits.

:class:`GroupKeyChannel` is the deliberate baseline the data-plane
attacks run against: the same wire format, but every frame sealed
directly under the bare group key with no per-message ratchet and no
replay accounting — the pre-PR state of ``APP_DATA``, given a channel
API so the attack matrix can compare the two stacks frame for frame.

Wire format (``DATA_MSG`` body)::

    fields[ sender | epoch (8B BE) | seq (8B BE) | SealedBox ]

The sealed box's associated data binds label, sender, epoch, and seq,
so a frame cannot be replayed under a different chain position or a
different epoch even if the key were somehow right.  The CTR nonce is
the sequence number itself — each message key seals exactly one frame,
making deterministic nonces safe and the whole frame reproducible.
"""

from __future__ import annotations

from repro.crypto.aead import AuthenticatedCipher, SealedBox
from repro.crypto.keys import GroupKey
from repro.crypto.mac import hmac_sha256
from repro.dataplane.ratchet import (
    DEFAULT_SKIP_WINDOW,
    ReceiverState,
    SenderState,
    seed_chain,
)
from repro.exceptions import (
    CodecError,
    EpochMismatchError,
    IntegrityError,
    RatchetReplayError,
    SkipWindowExceeded,
    StateError,
)
from repro.telemetry.events import (
    DataDelivered,
    DataShed,
    EventBus,
    RatchetSkipStored,
    RatchetWindowExceeded,
    frame_id,
    resolve_bus,
)
from repro.wire.codec import decode_fields, decode_str, encode_fields, encode_str
from repro.wire.labels import Label
from repro.wire.message import Envelope

_SEQ_LEN = 8


def data_ad(sender: str, epoch: int, seq: int) -> bytes:
    """Associated data binding one data frame to its chain position."""
    return encode_fields([
        b"repro-data", encode_str(sender),
        epoch.to_bytes(8, "big"), seq.to_bytes(8, "big"),
    ])


def encode_data_body(sender: str, epoch: int, seq: int, box: bytes) -> bytes:
    return encode_fields([
        encode_str(sender), epoch.to_bytes(8, "big"),
        seq.to_bytes(8, "big"), box,
    ])


def decode_data_body(body: bytes) -> tuple[str, int, int, bytes]:
    """Parse a DATA_MSG body; raises :class:`CodecError` if malformed."""
    sender_b, epoch_b, seq_b, box = decode_fields(body, expect=4)
    if len(epoch_b) != _SEQ_LEN or len(seq_b) != _SEQ_LEN:
        raise CodecError("epoch/seq must be 8 bytes")
    return (
        decode_str(sender_b),
        int.from_bytes(epoch_b, "big"),
        int.from_bytes(seq_b, "big"),
        box,
    )


class DataChannel:
    """Per-sender ratchet chains bound to the current group epoch."""

    def __init__(
        self,
        node: str,
        *,
        window: int = DEFAULT_SKIP_WINDOW,
        telemetry: EventBus | None = None,
    ) -> None:
        self.node = node
        self.window = window
        self._telemetry = resolve_bus(telemetry)
        self._group_key: GroupKey | None = None
        self._epoch = -1
        self._sender: SenderState | None = None
        self._receivers: dict[str, ReceiverState] = {}
        #: Frames this channel delivered / shed (cheap introspection
        #: for soaks and attacks without a telemetry subscription).
        self.delivered = 0
        self.shed = 0

    @property
    def epoch(self) -> int:
        """Group-key epoch the chains are currently seeded from."""
        return self._epoch

    @property
    def group_key(self) -> GroupKey | None:
        """The bound group key (the reliability layer seals flow
        control under it; data frames never use it directly)."""
        return self._group_key

    @property
    def bound(self) -> bool:
        return self._sender is not None

    def rebind(self, group_key: GroupKey, epoch: int) -> None:
        """Re-seed every chain from a new group-key epoch.

        Called on each installed rekey.  All previous sender and
        receiver state — including banked skip keys — is discarded:
        in-flight frames from the old epoch are the reliability layer's
        problem (it re-seals them), not a hole in forward secrecy.
        """
        if epoch == self._epoch:
            return
        self._group_key = group_key
        self._epoch = epoch
        self._sender = SenderState(seed_chain(group_key, epoch, self.node))
        self._receivers = {}

    def _receiver_for(self, sender: str) -> ReceiverState:
        state = self._receivers.get(sender)
        if state is None:
            state = ReceiverState(
                seed_chain(self._group_key, self._epoch, sender),
                window=self.window,
            )
            self._receivers[sender] = state
        return state

    def seal(self, payload: bytes, recipient: str) -> tuple[int, Envelope]:
        """Seal one frame on the local chain; returns ``(seq, envelope)``.

        ``recipient`` is the relay point (the leader / shard address);
        confidentiality does not depend on it — the relay never holds a
        message key.
        """
        if self._sender is None:
            raise StateError("data channel not bound to a group epoch")
        seq, key = self._sender.next_key()
        nonce = seq.to_bytes(_SEQ_LEN, "big")
        box = AuthenticatedCipher(key).seal_with_nonce(
            nonce, payload, data_ad(self.node, self._epoch, seq)
        )
        body = encode_data_body(self.node, self._epoch, seq, box.to_bytes())
        return seq, Envelope(Label.DATA_MSG, self.node, recipient, body)

    def open(self, envelope: Envelope) -> tuple[str, int, bytes]:
        """Open one DATA_MSG frame: ``(sender, seq, plaintext)``.

        Raises the typed rejection (and emits the matching ``DataShed``
        telemetry) without touching chain state on any failure path —
        only a MAC-verified frame commits the ratchet forward.
        """
        if envelope.label is not Label.DATA_MSG:
            raise StateError(f"not a data frame: {envelope.label.name}")
        bus = self._telemetry
        fid = frame_id(envelope) if bus else ""
        try:
            sender, epoch, seq, box_b = decode_data_body(envelope.body)
        except CodecError:
            self.shed += 1
            if bus:
                bus.emit(DataShed(self.node, envelope.sender, -1, -1,
                                  "integrity", fid))
            raise
        if self._sender is None or epoch != self._epoch:
            self.shed += 1
            if bus:
                bus.emit(DataShed(self.node, sender, epoch, seq, "epoch", fid))
            raise EpochMismatchError(
                f"frame epoch {epoch}, channel epoch {self._epoch}"
            )
        receiver = self._receiver_for(sender)
        try:
            pending = receiver.lookup(seq)
        except RatchetReplayError:
            self.shed += 1
            if bus:
                bus.emit(DataShed(self.node, sender, epoch, seq, "replay", fid))
            raise
        except SkipWindowExceeded:
            self.shed += 1
            if bus:
                bus.emit(RatchetWindowExceeded(
                    self.node, sender, seq, receiver.window, fid))
                bus.emit(DataShed(self.node, sender, epoch, seq, "window", fid))
            raise
        try:
            plaintext = AuthenticatedCipher(pending.key).open(
                SealedBox.from_bytes(box_b), data_ad(sender, epoch, seq)
            )
        except (IntegrityError, CodecError):
            self.shed += 1
            if bus:
                bus.emit(DataShed(self.node, sender, epoch, seq,
                                  "integrity", fid))
            raise
        banked = receiver.commit(pending)
        self.delivered += 1
        if bus:
            if banked:
                bus.emit(RatchetSkipStored(self.node, sender, seq,
                                           receiver.stored))
            bus.emit(DataDelivered(self.node, sender, epoch, seq, fid))
        return sender, seq, plaintext

    # -- reliability hooks -----------------------------------------------------

    def receiver_state(self, sender: str) -> ReceiverState | None:
        """The receive chain for one sender (None before first frame)."""
        return self._receivers.get(sender)

    def skip_stats(self) -> dict:
        """Aggregate skip-window counters across all receive chains."""
        hits = sum(r.skip_hits for r in self._receivers.values())
        banked = sum(r.skips_banked for r in self._receivers.values())
        evicted = sum(r.skips_evicted for r in self._receivers.values())
        return {"skip_hits": hits, "skips_banked": banked,
                "skips_evicted": evicted}


class GroupKeyChannel:
    """Baseline channel: bare group-key sealing, no ratchet, no replay
    accounting.

    This is what ``APP_DATA`` already does, wearing the data-plane wire
    format so :mod:`repro.attacks.past_member_data` and
    :mod:`repro.attacks.data_replay` can demonstrate the difference on
    identical traffic.  Both of its weaknesses are intentional:

    * a member who left with the group key reads everything sealed
      under that key (no per-message forward secrecy, and with a
      manual/cadence rekey policy the key survives the leave), and
    * the same frame delivered twice is *accepted* twice.

    The CTR nonce is derived deterministically from (sender, epoch,
    seq) so baseline runs stay byte-reproducible per seed.
    """

    def __init__(self, node: str, *, telemetry: EventBus | None = None) -> None:
        self.node = node
        self._telemetry = resolve_bus(telemetry)
        self._group_key: GroupKey | None = None
        self._cipher: AuthenticatedCipher | None = None
        self._epoch = -1
        self._next_seq = 0
        self.delivered = 0
        self.shed = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def group_key(self) -> GroupKey | None:
        return self._group_key

    @property
    def bound(self) -> bool:
        return self._cipher is not None

    def rebind(self, group_key: GroupKey, epoch: int) -> None:
        if epoch == self._epoch:
            return
        self._group_key = group_key
        self._cipher = AuthenticatedCipher(group_key)
        self._epoch = epoch

    def seal(self, payload: bytes, recipient: str) -> tuple[int, Envelope]:
        if self._cipher is None:
            raise StateError("baseline channel not bound to a group epoch")
        seq = self._next_seq
        self._next_seq += 1
        nonce = hmac_sha256(
            b"repro-data-baseline-nonce",
            data_ad(self.node, self._epoch, seq),
        )[:8]
        box = self._cipher.seal_with_nonce(
            nonce, payload, data_ad(self.node, self._epoch, seq)
        )
        body = encode_data_body(self.node, self._epoch, seq, box.to_bytes())
        return seq, Envelope(Label.DATA_MSG, self.node, recipient, body)

    def open(self, envelope: Envelope) -> tuple[str, int, bytes]:
        if envelope.label is not Label.DATA_MSG:
            raise StateError(f"not a data frame: {envelope.label.name}")
        bus = self._telemetry
        fid = frame_id(envelope) if bus else ""
        sender, epoch, seq, box_b = decode_data_body(envelope.body)
        if self._cipher is None:
            raise StateError("baseline channel not bound to a group epoch")
        try:
            plaintext = self._cipher.open(
                SealedBox.from_bytes(box_b), data_ad(sender, epoch, seq)
            )
        except (IntegrityError, CodecError):
            self.shed += 1
            if bus:
                bus.emit(DataShed(self.node, sender, epoch, seq,
                                  "integrity", fid))
            raise
        # No replay check, no window, no ratchet: the baseline accepts
        # any frame the current group key verifies.
        self.delivered += 1
        if bus:
            bus.emit(DataDelivered(self.node, sender, epoch, seq, fid))
        return sender, seq, plaintext

    def skip_stats(self) -> dict:
        return {"skip_hits": 0, "skips_banked": 0, "skips_evicted": 0}


__all__ = [
    "DataChannel",
    "GroupKeyChannel",
    "data_ad",
    "decode_data_body",
    "encode_data_body",
]
