"""Per-sender HMAC chain ratchets (the Sender-Keys construction).

Each sender owns a forward-only key chain seeded from the group key:

.. code-block:: text

    ck_0 = HKDF(group key, "chain" | sender | epoch)
    mk_i = HMAC(ck_i, "msg")        one message key per sequence number
    ck_{i+1} = HMAC(ck_i, "next")   then the chain ratchets forward

Two properties follow directly from the one-wayness of HMAC:

* **Forward secrecy within an epoch** — an endpoint deletes ``ck_i``
  and ``mk_i`` the moment message *i* is sealed or opened, so
  compromising the endpoint afterwards reveals nothing about earlier
  traffic.
* **Per-sender confidentiality** — chains are domain-separated by
  sender id, so no member can forge traffic *as* another member even
  though all chains grow from the one group key.

Rekey-on-leave is the channel layer's job
(:mod:`repro.dataplane.channel`): every group-key epoch re-seeds every
chain, so chain state captured by a leaver is dead after the leave
commits.

Out-of-order delivery is handled with a **bounded skip-window**: when a
frame arrives ``k`` positions ahead, the receiver ratchets forward,
banking the ``k`` skipped message keys for the late frames — but only
up to ``window`` positions per frame, past which the frame is rejected
loudly (:class:`~repro.exceptions.SkipWindowExceeded`) rather than
burning unbounded chain state on attacker-chosen sequence numbers.

State-mutation discipline: :meth:`ReceiverState.lookup` derives keys
**without committing** — the caller verifies the frame's MAC first and
calls :meth:`ReceiverState.commit` only on success.  A garbage frame
with a huge (but in-window) seq therefore cannot make the receiver
throw away chain state or banked skip keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.kdf import hkdf_expand, hkdf_extract
from repro.crypto.keys import KEY_LEN, GroupKey, KeyMaterial
from repro.crypto.mac import hmac_sha256
from repro.exceptions import RatchetReplayError, SkipWindowExceeded, StateError

#: Maximum positions a single frame may ratchet the receive chain
#: forward.  16 matches the stage51 exemplar; 32 tolerates the reorder
#: depths the chaos layer actually produces.
DEFAULT_SKIP_WINDOW = 32

#: Banked skip keys retained per chain.  Gaps that are never filled
#: (the frames were truly lost and not retransmitted) would otherwise
#: accumulate keys forever; past this cap the oldest banked keys are
#: discarded and a very late frame lands as a replay rejection.
DEFAULT_MAX_STORED = 4 * DEFAULT_SKIP_WINDOW

_DOMAIN = b"repro-dataplane-v1"
_MSG_LABEL = b"msg"
_NEXT_LABEL = b"next"


@dataclass(frozen=True, repr=False)
class DataMessageKey(KeyMaterial):
    """``mk_i``: the key for exactly one data frame, then gone."""

    usage: str = field(default="data-msg", init=False, repr=False, compare=False)


def seed_chain(group_key: GroupKey, epoch: int, sender_id: str) -> bytes:
    """Derive sender ``sender_id``'s chain key for one group epoch.

    Both ends run this independently from the shared group key — there
    is no extra key-distribution round.  Domain separation by sender id
    *and* epoch means a new epoch re-seeds every chain and no two
    senders ever share chain state.
    """
    prk = hkdf_extract(_DOMAIN, group_key.material)
    info = b"chain|" + sender_id.encode() + b"|" + epoch.to_bytes(8, "big")
    return hkdf_expand(prk, info, KEY_LEN)


def _message_key(chain_key: bytes) -> DataMessageKey:
    return DataMessageKey(hmac_sha256(chain_key, _MSG_LABEL))


def _advance(chain_key: bytes) -> bytes:
    return hmac_sha256(chain_key, _NEXT_LABEL)


class SenderState:
    """The sending half of one chain: derive, use, ratchet, forget."""

    __slots__ = ("_chain", "_next_seq")

    def __init__(self, chain_key: bytes) -> None:
        self._chain = chain_key
        self._next_seq = 0

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`next_key` call will return."""
        return self._next_seq

    def next_key(self) -> tuple[int, DataMessageKey]:
        """Consume one chain position: ``(seq, message key)``.

        The chain ratchets forward immediately — after this returns,
        the sender state alone can never re-derive the returned key.
        """
        seq = self._next_seq
        key = _message_key(self._chain)
        self._chain = _advance(self._chain)
        self._next_seq += 1
        return seq, key


@dataclass(frozen=True, slots=True)
class PendingKey:
    """A derived-but-uncommitted receive key (see module docstring).

    ``banked`` holds the (seq, key) pairs for positions skipped over on
    the way to ``seq``; ``chain_after`` / ``next_seq_after`` are the
    post-commit chain state.  For a key served from the skip store,
    ``from_skip`` is true and the chain fields are no-ops.
    """

    seq: int
    key: DataMessageKey
    from_skip: bool
    banked: tuple[tuple[int, DataMessageKey], ...]
    chain_after: bytes | None
    next_seq_after: int


class ReceiverState:
    """The receiving half of one sender's chain.

    Tracks the next expected sequence number, banks skipped keys for
    out-of-order frames, and refuses both replays (consumed positions)
    and jumps past the skip-window.
    """

    __slots__ = ("_chain", "_next_seq", "_skipped", "window", "max_stored",
                 "skip_hits", "skips_banked", "skips_evicted")

    def __init__(
        self,
        chain_key: bytes,
        window: int = DEFAULT_SKIP_WINDOW,
        max_stored: int = DEFAULT_MAX_STORED,
    ) -> None:
        if window < 0:
            raise StateError("skip window must be >= 0")
        if max_stored < window:
            raise StateError("max_stored must be >= window")
        self._chain = chain_key
        self._next_seq = 0
        self._skipped: dict[int, DataMessageKey] = {}
        self.window = window
        self.max_stored = max_stored
        #: Late frames served from the skip store (bench: hit rate).
        self.skip_hits = 0
        self.skips_banked = 0
        self.skips_evicted = 0

    @property
    def next_seq(self) -> int:
        """Next in-order sequence number expected on the chain."""
        return self._next_seq

    @property
    def stored(self) -> int:
        """Banked skip keys currently held."""
        return len(self._skipped)

    def lookup(self, seq: int) -> PendingKey:
        """Derive the message key for ``seq`` *without* mutating state.

        Raises :class:`~repro.exceptions.RatchetReplayError` for a
        consumed position and
        :class:`~repro.exceptions.SkipWindowExceeded` for a jump of
        more than ``window`` positions.  Commit the returned value with
        :meth:`commit` only after the frame's MAC verifies.
        """
        if seq in self._skipped:
            return PendingKey(
                seq=seq, key=self._skipped[seq], from_skip=True,
                banked=(), chain_after=None, next_seq_after=self._next_seq,
            )
        if seq < self._next_seq:
            raise RatchetReplayError(
                f"seq {seq} already consumed (next expected {self._next_seq})"
            )
        if seq - self._next_seq > self.window:
            raise SkipWindowExceeded(
                f"seq {seq} is {seq - self._next_seq} ahead of "
                f"{self._next_seq}; window is {self.window}"
            )
        chain = self._chain
        banked: list[tuple[int, DataMessageKey]] = []
        for skipped_seq in range(self._next_seq, seq):
            banked.append((skipped_seq, _message_key(chain)))
            chain = _advance(chain)
        key = _message_key(chain)
        return PendingKey(
            seq=seq, key=key, from_skip=False, banked=tuple(banked),
            chain_after=_advance(chain), next_seq_after=seq + 1,
        )

    def commit(self, pending: PendingKey) -> int:
        """Apply a verified :class:`PendingKey`; returns keys banked.

        For a skip-store hit the stored key is consumed (a second frame
        for the same seq then fails as a replay).  For a chain advance
        the skipped keys are banked — evicting the oldest past
        ``max_stored`` — and the chain moves past ``seq``.
        """
        if pending.from_skip:
            self._skipped.pop(pending.seq, None)
            self.skip_hits += 1
            return 0
        for skipped_seq, key in pending.banked:
            self._skipped[skipped_seq] = key
        self._chain = pending.chain_after
        self._next_seq = pending.next_seq_after
        self.skips_banked += len(pending.banked)
        while len(self._skipped) > self.max_stored:
            self._skipped.pop(min(self._skipped))
            self.skips_evicted += 1
        return len(pending.banked)

    def outstanding(self) -> list[int]:
        """Sequence numbers skipped over and not yet filled (the gaps
        a NACK should name), in ascending order."""
        return sorted(self._skipped)

    def contiguous_delivered(self) -> int:
        """Highest seq below which everything was delivered (cumulative
        ACK value); -1 when nothing contiguous has been delivered."""
        if self._skipped:
            return min(self._skipped) - 1
        return self._next_seq - 1


__all__ = [
    "DEFAULT_MAX_STORED",
    "DEFAULT_SKIP_WINDOW",
    "DataMessageKey",
    "PendingKey",
    "ReceiverState",
    "SenderState",
    "seed_chain",
]
