"""End-to-end data plane: sender-key ratchets over the §3.2 group key.

The management plane (joins, rekeys, expulsion) exists to protect the
*data* a group exchanges — but sealing application traffic directly
under the shared group key gives neither per-sender confidentiality nor
forward secrecy: a departed member holds a usable read key until the
next rekey, and one compromised message key exposes every message.

This package layers a Sender-Keys construction on top of the group key:

* :mod:`~repro.dataplane.ratchet` — per-sender HMAC chain ratchets
  deriving one message key per sequence number, with a bounded
  skip-window for out-of-order delivery.
* :mod:`~repro.dataplane.channel` — binds every chain to the current
  group epoch, so each membership rekey re-seeds all chains and an
  expelled member's captured chain state opens nothing post-leave.
* :mod:`~repro.dataplane.member` — a :class:`DataMember` wrapper
  composing a §3.2 member with the ratcheted channel and reliability.
* :mod:`~repro.dataplane.reliable` — ACK/NACK reliable multicast with
  adaptive retransmit deadlines (reusing the overload layer's
  estimators).
* :mod:`~repro.dataplane.soak` — mixed management + data chaos soak.
"""

from repro.dataplane.channel import DataChannel, GroupKeyChannel
from repro.dataplane.member import DataMember
from repro.dataplane.ratchet import (
    DEFAULT_SKIP_WINDOW,
    DataMessageKey,
    ReceiverState,
    SenderState,
    seed_chain,
)
from repro.dataplane.reliable import ReliableReceiver, ReliableSender

__all__ = [
    "DEFAULT_SKIP_WINDOW",
    "DataChannel",
    "DataMember",
    "DataMessageKey",
    "GroupKeyChannel",
    "ReceiverState",
    "ReliableReceiver",
    "ReliableSender",
    "SenderState",
    "seed_chain",
]
