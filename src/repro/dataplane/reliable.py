"""ACK/NACK reliable multicast over the ratcheted channel.

The leader relays data frames without opening them, so it also cannot
acknowledge them — reliability is end-to-end.  Each receiver answers
every delivered frame with a cumulative ``DATA_ACK`` for that sender's
chain, plus a ``DATA_NACK`` naming outstanding gaps whenever its skip
store holds banked keys (frames ratcheted past but not yet seen).

The sender keeps the *plaintext* of every unacknowledged frame and the
sealed envelope it last sent for it:

* a NACK retransmits the cached envelope verbatim (the receiver's
  banked skip key is exactly the key that opens it);
* a retransmit timer (:class:`~repro.overload.deadline.AdaptiveDeadline`
  over an RFC 6298 :class:`~repro.overload.deadline.LatencyTracker`,
  driven by the sim clock) resends frames whose ACKs are overdue,
  spending a Finagle-style
  :class:`~repro.overload.deadline.RetryBudget` so a dead group drains
  into a bounded, observable give-up instead of a retry storm;
* an epoch rebind (membership changed → every chain re-seeded)
  re-seals all pending plaintexts on the *new* chain with new sequence
  numbers — the old epoch's frames are undeliverable by design.

ACK/NACK payloads are sealed under the current group key (they are
group-internal flow control, not end-to-end secrets) with associated
data binding label, origin sender, acker, and epoch; the origin and
acker ride in the clear so the relay can route without opening.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.crypto.aead import AuthenticatedCipher, SealedBox
from repro.crypto.keys import GroupKey
from repro.crypto.mac import hmac_sha256
from repro.exceptions import CodecError, IntegrityError, StateError
from repro.overload.deadline import AdaptiveDeadline, LatencyTracker, RetryBudget
from repro.telemetry.events import (
    EventBus,
    RetryBudgetExhausted,
    resolve_bus,
)
from repro.wire.codec import decode_fields, decode_str, encode_fields, encode_str
from repro.wire.labels import Label
from repro.wire.message import Envelope

_SEQ_LEN = 8


def _control_ad(label: Label, origin: str, acker: str, epoch: int) -> bytes:
    return encode_fields([
        b"repro-data-ctl", bytes([label.value]),
        encode_str(origin), encode_str(acker), epoch.to_bytes(8, "big"),
    ])


def _seal_control(
    label: Label,
    group_key: GroupKey,
    origin: str,
    acker: str,
    epoch: int,
    seqs: list[int],
    relay: str,
) -> Envelope:
    """Build one sealed ACK/NACK envelope addressed at the relay."""
    payload = encode_fields(
        [epoch.to_bytes(8, "big")] + [s.to_bytes(_SEQ_LEN, "big") for s in seqs]
    )
    ad = _control_ad(label, origin, acker, epoch)
    # Deterministic nonce: the message key is the (multi-use) group
    # key, but (label, origin, acker, epoch, payload) fully determines
    # the plaintext, so equal nonces only ever pair with equal
    # plaintexts — reproducible frames, no keystream reuse leak.
    nonce = hmac_sha256(b"repro-data-ctl-nonce", ad + payload)[:8]
    box = AuthenticatedCipher(group_key).seal_with_nonce(nonce, payload, ad)
    body = encode_fields([encode_str(origin), encode_str(acker), box.to_bytes()])
    return Envelope(label, acker, relay, body)


def decode_control_routing(body: bytes) -> tuple[str, str, bytes]:
    """Parse ``(origin, acker, sealed box)`` — the relay-visible part."""
    origin_b, acker_b, box = decode_fields(body, expect=3)
    return decode_str(origin_b), decode_str(acker_b), box


_MSG_MAGIC = b"repro-data-msg"


def wrap_msg(msg_id: int, payload: bytes) -> bytes:
    """Prefix a payload with its stable message id.

    The id is assigned once per ``send`` and survives epoch re-seals
    (which mint *new* sequence numbers on *new* chains), so it is the
    only handle a receiver has to notice "I already delivered this
    payload at the previous epoch, its ack just got lost".
    """
    return encode_fields([_MSG_MAGIC, msg_id.to_bytes(8, "big"), payload])


def unwrap_msg(plain: bytes) -> tuple[int | None, bytes]:
    """Inverse of :func:`wrap_msg`; bare payloads pass through as
    ``(None, plain)`` so unreliable senders interoperate."""
    try:
        magic, mid, payload = decode_fields(plain, expect=3)
    except CodecError:
        return None, plain
    if magic != _MSG_MAGIC or len(mid) != 8:
        return None, plain
    return int.from_bytes(mid, "big"), payload


class ReliableSender:
    """Sender-side reliability for one node's outgoing chain."""

    def __init__(
        self,
        node: str,
        channel,
        *,
        peers: Callable[[], Iterable[str]],
        telemetry: EventBus | None = None,
        tracker: LatencyTracker | None = None,
        budget: RetryBudget | None = None,
        deadline_floor: float = 0.25,
    ) -> None:
        self.node = node
        self.channel = channel
        self._peers = peers
        self._telemetry = resolve_bus(telemetry)
        self.tracker = tracker if tracker is not None else LatencyTracker()
        self.deadline = AdaptiveDeadline(self.tracker, floor=deadline_floor)
        self.budget = budget if budget is not None else RetryBudget()
        #: seq -> (message id, plaintext, sealed envelope, last send time).
        #: The message id is assigned once per payload and survives
        #: epoch re-seals, so receivers can deduplicate a payload that
        #: was delivered at epoch e and re-sent (unacked) at e+1.
        self._pending: dict[int, tuple[int, bytes, Envelope, float]] = {}
        self._next_msg_id = 0
        self._acked: dict[str, int] = {}
        self._relay: str | None = None
        self._epoch = -1
        self.sent = 0
        self.retransmits = 0
        self.fully_acked = 0
        self._budget_starved = False

    @property
    def pending(self) -> int:
        return len(self._pending)

    def send(self, payload: bytes, relay: str, now: float) -> Envelope:
        """Seal one payload and start tracking it until fully acked."""
        self._sync_epoch()
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        seq, envelope = self.channel.seal(wrap_msg(msg_id, payload), relay)
        self._relay = relay
        self._pending[seq] = (msg_id, payload, envelope, now)
        self.budget.record_request()
        self.sent += 1
        return envelope

    def _sync_epoch(self) -> None:
        if self.channel.epoch != self._epoch:
            self._epoch = self.channel.epoch
            self._acked = {}

    def rebind(self, now: float) -> list[Envelope]:
        """Re-seal every pending payload on the (new-epoch) chain.

        Returns the fresh envelopes to post.  Old-epoch acks are
        meaningless against new sequence numbers, so per-peer ack state
        resets with the chains.
        """
        if self._relay is None or self.channel.epoch == self._epoch:
            self._sync_epoch()
            return []
        pending = [self._pending[seq][:2] for seq in sorted(self._pending)]
        self._pending = {}
        self._sync_epoch()
        out = []
        for msg_id, payload in pending:
            seq, envelope = self.channel.seal(
                wrap_msg(msg_id, payload), self._relay)
            self._pending[seq] = (msg_id, payload, envelope, now)
            out.append(envelope)
        return out

    def on_ack(self, envelope: Envelope, now: float) -> None:
        """Fold one DATA_ACK into the pending set (bad acks ignored)."""
        if envelope.label is not Label.DATA_ACK:
            return
        parsed = self._open(Label.DATA_ACK, envelope)
        if parsed is None:
            return
        # ACK values ride +1 on the wire so "nothing contiguous yet"
        # (cumulative -1) stays an unsigned field.
        acker = parsed[0]
        cum = parsed[1][0] - 1 if parsed[1] else -1
        previous = self._acked.get(acker, -1)
        if cum <= previous:
            return
        self._acked[acker] = cum
        # RTT sample: age of the newest frame this ack covers.
        newest = max(
            (sent for seq, (_, _, _, sent) in self._pending.items()
             if seq <= cum),
            default=None,
        )
        if newest is not None:
            self.tracker.observe(max(0.0, now - newest))
        self._collect()

    def on_nack(self, envelope: Envelope) -> list[Envelope]:
        """Retransmit the cached frames a DATA_NACK names."""
        if envelope.label is not Label.DATA_NACK:
            return []
        parsed = self._open(Label.DATA_NACK, envelope)
        if parsed is None:
            return []
        out = []
        for seq in parsed[1]:
            entry = self._pending.get(seq)
            if entry is None:
                continue
            if not self.budget.record_retry():
                self._starve()
                break
            out.append(entry[2])
            self.retransmits += 1
        return out

    def tick(self, now: float) -> list[Envelope]:
        """Retransmit frames whose acknowledgements are overdue."""
        self._sync_epoch()
        overdue = self.deadline.current()
        out = []
        for seq in sorted(self._pending):
            msg_id, payload, envelope, sent_at = self._pending[seq]
            if now - sent_at < overdue:
                continue
            if not self.budget.record_retry():
                self._starve()
                break
            self._pending[seq] = (msg_id, payload, envelope, now)
            out.append(envelope)
            self.retransmits += 1
        return out

    def _starve(self) -> None:
        if not self._budget_starved and self._telemetry:
            self._telemetry.emit(RetryBudgetExhausted(
                self.node, "data-retransmit", self.budget.retries))
        self._budget_starved = True

    def _collect(self) -> None:
        """Drop frames every current peer has cumulatively acked."""
        peers = [p for p in self._peers() if p != self.node]
        if not peers:
            return
        floor = min(self._acked.get(p, -1) for p in peers)
        done = [seq for seq in self._pending if seq <= floor]
        for seq in done:
            del self._pending[seq]
            self.fully_acked += 1
        if done:
            self._budget_starved = False

    def _open(self, label: Label, envelope: Envelope):
        key = getattr(self.channel, "group_key", None)
        if key is None:
            return None
        try:
            origin, acker, box_b = decode_control_routing(envelope.body)
            if origin != self.node:
                return None
            ad = _control_ad(label, origin, acker, self.channel.epoch)
            plain = AuthenticatedCipher(key).open(
                SealedBox.from_bytes(box_b), ad)
            fields = decode_fields(plain)
        except (CodecError, IntegrityError):
            return None
        if not fields or len(fields[0]) != 8:
            return None
        epoch = int.from_bytes(fields[0], "big")
        if epoch != self.channel.epoch:
            return None
        seqs = []
        for raw in fields[1:]:
            if len(raw) != _SEQ_LEN:
                return None
            seqs.append(int.from_bytes(raw, "big"))
        return acker, seqs


class ReliableReceiver:
    """Receiver-side reliability: deliver, then ack and report gaps."""

    def __init__(self, node: str, channel) -> None:
        self.node = node
        self.channel = channel
        self.acks_sent = 0
        self.nacks_sent = 0
        #: sender -> message ids already delivered (any epoch).  The
        #: ratchet already rejects within-epoch replays; this catches
        #: the one duplicate it cannot — a payload re-sealed on a new
        #: chain after its ack was lost across an epoch bump.
        self._seen: dict[str, set[int]] = {}
        self.duplicates_suppressed = 0

    def on_data(
        self, envelope: Envelope, relay: str
    ) -> tuple[tuple[str, int, bytes] | None, list[Envelope]]:
        """Open one data frame: ``((sender, seq, payload) | None, control)``.

        Rejections are already counted and emitted by the channel —
        this layer only swallows the typed exception and answers
        deliveries with flow control.  A cross-epoch duplicate (same
        message id, fresh chain position) returns ``None`` for the
        application but still acks, so the sender's pending clears.
        """
        from repro.exceptions import RatchetError

        try:
            sender, seq, plaintext = self.channel.open(envelope)
        except (RatchetError, IntegrityError, CodecError, StateError):
            return None, []
        msg_id, payload = unwrap_msg(plaintext)
        delivery: tuple[str, int, bytes] | None = (sender, seq, payload)
        if msg_id is not None:
            seen = self._seen.setdefault(sender, set())
            if msg_id in seen:
                delivery = None
                self.duplicates_suppressed += 1
            else:
                seen.add(msg_id)
        key = self.channel.group_key
        state = getattr(self.channel, "receiver_state", lambda _s: None)(sender)
        if key is None or state is None:
            return delivery, []
        control = [_seal_control(
            Label.DATA_ACK, key, sender, self.node, self.channel.epoch,
            [state.contiguous_delivered() + 1], relay,  # +1: see on_ack
        )]
        self.acks_sent += 1
        gaps = state.outstanding()
        if gaps:
            control.append(_seal_control(
                Label.DATA_NACK, key, sender, self.node, self.channel.epoch,
                gaps, relay,
            ))
            self.nacks_sent += 1
        return delivery, control


__all__ = [
    "ReliableReceiver",
    "ReliableSender",
    "decode_control_routing",
    "unwrap_msg",
    "wrap_msg",
]
