"""Legacy setuptools shim.

Kept so `pip install -e .` works on minimal environments that lack the
`wheel` package (PEP 660 editable installs need it; the legacy
`setup.py develop` path does not).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
