"""PERF-DATA: data-plane throughput + ratchet overhead gate.

Three measurements, written to ``BENCH_dataplane.json``:

* **Throughput** — end-to-end seal→open frames/second through the
  ratcheted :class:`DataChannel` pair at a 1 KiB payload (the size
  where AES-CTR, not chain bookkeeping, should dominate).

* **Ratchet overhead** — the same seal→open loop on the plain
  :class:`GroupKeyChannel` baseline, interleaved best-of with the
  ratcheted arm.  The ratchet buys per-message forward secrecy with
  one extra HMAC derivation per frame plus replay accounting; the
  gate is that the whole package stays within 2× of group-key-only
  sealing.  Above that the "use the ratchet everywhere" guidance in
  docs/architecture.md would need a caveat.

* **Skip-window hit rate** — delivery in seq-reversed batches (the
  worst in-window disorder) must recover every frame from the skip
  store, no evictions.  This is the property the reliability layer
  leans on when NACK refills arrive late.
"""

from __future__ import annotations

import contextlib
import gc
import time

from conftest import write_bench_record
from repro.crypto.keys import KEY_LEN, GroupKey
from repro.dataplane.channel import DataChannel, GroupKeyChannel

REPEATS = 7
FRAMES = 400
PAYLOAD = b"\xa5" * 1024
#: The acceptance bound: ratcheted seal→open within 2x of the plain
#: group-key baseline.
MAX_OVERHEAD = 2.0
#: Out-of-order batch size for the skip-store measurement — must stay
#: inside the default window so nothing is shed.
SHUFFLE_SPAN = 16

KEY = GroupKey(b"\x5c" * KEY_LEN)

ENTRIES = ("ratchet", "group_key")


@contextlib.contextmanager
def _gc_pinned():
    """Collector parked during a timed region, as in the other gates:
    a cycle collection landing inside one arm but not the other would
    swamp the ratio under measurement."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _pair(entry: str):
    cls = DataChannel if entry == "ratchet" else GroupKeyChannel
    alice, bob = cls("alice"), cls("bob")
    alice.rebind(KEY, 1)
    bob.rebind(KEY, 1)
    return alice, bob


def _seal_open_once(entry: str, attempt: int) -> float:
    """Seconds to push FRAMES payloads sender→receiver through one
    freshly bound channel pair of the given flavour."""
    alice, bob = _pair(entry)
    with _gc_pinned():
        start = time.perf_counter()
        for _ in range(FRAMES):
            _, env = alice.seal(PAYLOAD, "leader")
            bob.open(env)
        elapsed = time.perf_counter() - start
    assert bob.delivered == FRAMES and bob.shed == 0
    return elapsed


def _interleaved_best() -> dict[str, float]:
    """Best-of-REPEATS per arm, interleaved and alternating order each
    repeat so clock drift and frequency scaling hit both equally."""
    best = {entry: float("inf") for entry in ENTRIES}
    for attempt in range(REPEATS):
        order = ENTRIES if attempt % 2 == 0 else ENTRIES[::-1]
        for entry in order:
            best[entry] = min(best[entry], _seal_open_once(entry, attempt))
    return best


def _skip_window_rate() -> dict:
    """Deliver FRAMES frames in seq-reversed batches of SHUFFLE_SPAN
    and report how the skip store absorbed the disorder."""
    alice, bob = _pair("ratchet")
    frames = [alice.seal(PAYLOAD, "leader")[1] for _ in range(FRAMES)]
    for base in range(0, FRAMES, SHUFFLE_SPAN):
        for env in reversed(frames[base:base + SHUFFLE_SPAN]):
            bob.open(env)
    stats = bob.skip_stats()
    assert bob.delivered == FRAMES and bob.shed == 0
    assert stats["skips_evicted"] == 0
    assert stats["skip_hits"] == stats["skips_banked"] > 0
    return {
        "frames": FRAMES,
        "shuffle_span": SHUFFLE_SPAN,
        "hit_rate": stats["skip_hits"] / FRAMES,
        **stats,
    }


def test_dataplane_bench_gate():
    best = _interleaved_best()
    ratio = best["ratchet"] / best["group_key"]
    throughput = FRAMES / best["ratchet"]
    skip = _skip_window_rate()

    write_bench_record("dataplane", {
        "bound": MAX_OVERHEAD,
        "frames_per_measurement": FRAMES,
        "payload_bytes": len(PAYLOAD),
        "repeats": REPEATS,
        "ratchet_s": best["ratchet"],
        "group_key_s": best["group_key"],
        "ratio": ratio,
        "throughput_frames_per_s": throughput,
        "skip_window": skip,
    })

    assert ratio <= MAX_OVERHEAD, (
        f"ratchet seal/open overhead {ratio:.4f} > {MAX_OVERHEAD}"
    )
    assert throughput > 0
