"""Ablation: Dolev-Yao closure costs.

The bounded-exhaustive verification (FIG-4) spends its time in
Parts/Analz/Synth and ideal-membership; these benches measure those
operators against knowledge-set size, explaining where the verification
wall-clock goes and how far the bounds can be pushed.
"""

import pytest

from repro.formal.fields import (
    Agent,
    Concat,
    Crypt,
    LongTerm,
    NonceF,
    SessionK,
)
from repro.formal.ideals import in_ideal
from repro.formal.knowledge import KnowledgeState, analz, can_synth, parts

A, L = Agent("A"), Agent("L")


def protocol_like_fields(n: int) -> list:
    """n fields shaped like real protocol traffic."""
    fields = []
    for i in range(n):
        key = SessionK(i % 8)
        fields.append(
            Crypt(key, Concat((L, A, NonceF(2 * i), NonceF(2 * i + 1),
                               SessionK(i % 8))))
        )
        fields.append(Crypt(LongTerm("A"), Concat((A, L, NonceF(3 * i)))))
    return fields


@pytest.mark.parametrize("n", [10, 50, 200])
def test_parts_closure(benchmark, n):
    fields = protocol_like_fields(n)
    result = benchmark(lambda: parts(fields))
    assert len(result) > n
    benchmark.extra_info["fields"] = n
    benchmark.extra_info["parts"] = len(result)


@pytest.mark.parametrize("n", [10, 50, 200])
def test_analz_closure_with_keys(benchmark, n):
    fields = protocol_like_fields(n) + [SessionK(i) for i in range(8)]
    result = benchmark(lambda: analz(fields))
    # With the keys present, the nonces inside become extractable.
    assert any(isinstance(f, NonceF) for f in result)
    benchmark.extra_info["fields"] = n


@pytest.mark.parametrize("n", [10, 200])
def test_incremental_add(benchmark, n):
    """The explorer's hot path: one observation added to a big closure."""
    state = KnowledgeState.from_fields(protocol_like_fields(n))
    new_field = Crypt(SessionK(1), Concat((A, L, NonceF(99_991))))

    result = benchmark(lambda: state.add(new_field))
    assert result.knows(new_field)
    benchmark.extra_info["base_fields"] = n


def test_synth_membership(benchmark):
    known = analz(protocol_like_fields(50) + [SessionK(0)])
    target = Crypt(SessionK(0), Concat((A, L, NonceF(0), NonceF(1))))

    assert benchmark(lambda: can_synth(target, known))


def test_ideal_membership(benchmark):
    secrets = frozenset({SessionK(0), LongTerm("A")})
    deep = Crypt(
        LongTerm("C"),
        Concat((A, Crypt(SessionK(5), Concat((L, SessionK(0)))))),
    )

    assert benchmark(lambda: in_ideal(deep, secrets))
