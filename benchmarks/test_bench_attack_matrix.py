"""SEC-2.3: the attack matrix — the paper's central security table.

Regenerates, as a measured run, the claim structure of §2.3/§3:

    attack                legacy §2.2     improved §3.2
    forged-denial         SUCCEEDS        blocked
    forged-removal        SUCCEEDS        blocked
    rekey-replay          SUCCEEDS        blocked
    admin-replay          SUCCEEDS        blocked
    impersonation         blocked         blocked
    forged-close          SUCCEEDS        blocked
    stale-session-key     blocked         blocked
    quorum-forgery        SUCCEEDS        blocked
    quorum-equivocation   SUCCEEDS        blocked

For the two Byzantine-insider rows the "legacy" column is the single
*trusted-leader* deployment (the improved §3.2 stack with no quorum
layer — §6's stated trust assumption) and the "improved" column is the
quorum-certified stack from :mod:`repro.quorum`.

A failing assertion here means the reproduction no longer matches the
paper's predictions.
"""

import pytest

from repro.attacks import ALL_ATTACKS, run_attack_matrix
from repro.attacks.suite import format_matrix


def test_attack_matrix(benchmark):
    rows = benchmark(run_attack_matrix)
    print("\n" + format_matrix(rows))
    for row in rows:
        assert row.as_expected, (
            f"{row.attack} deviates from the paper: "
            f"legacy={row.legacy.succeeded} "
            f"(expected {row.expected_legacy}), "
            f"itgm={row.itgm.succeeded} (expected {row.expected_itgm})"
        )
    # Shape of the table: the trusted-leader stacks fall to 7 attacks
    # (5 wire attacks + 2 Byzantine-insider ones), improved to none.
    legacy_broken = sum(1 for r in rows if r.legacy.succeeded)
    itgm_broken = sum(1 for r in rows if r.itgm.succeeded)
    assert legacy_broken == 7
    assert itgm_broken == 0
    benchmark.extra_info["legacy_broken"] = legacy_broken
    benchmark.extra_info["itgm_broken"] = itgm_broken


@pytest.mark.parametrize("attack_cls", ALL_ATTACKS,
                         ids=[a.name for a in ALL_ATTACKS])
def test_individual_attack_cost(benchmark, attack_cls):
    """Per-attack wall time against both stacks (defender-side cost of
    repelling each attack is included, since the victims run inline)."""

    def run_both():
        return attack_cls().run_both()

    legacy, itgm = benchmark(run_both)
    attack = attack_cls()
    assert legacy.succeeded == attack.expected_on_legacy
    assert itgm.succeeded == attack.expected_on_itgm
