"""Ablation: rekey policy cost under churn, and raw rekey cost.

The paper leaves rekeying to "an application-dependent policy" (§2.2)
and fixes its mechanism (§3.2: the new key travels in the authenticated
admin channel).  This bench quantifies the policies: rekeys performed
and frames moved under identical churn, and the raw cost of one rekey
round vs. group size.
"""

import pytest

from conftest import build_itgm_group
from repro.enclaves.common import RekeyPolicy
from repro.sim.scenarios import ChurnScenario, run_churn


@pytest.mark.parametrize("n_members", [2, 8, 16])
def test_rekey_round(benchmark, n_members):
    """One full rekey: generate, distribute to every member, collect
    every ack (stop-and-wait per member)."""
    net, leader, members = build_itgm_group(n_members)

    def rekey():
        net.post_all(leader.rekey_now())
        net.run()

    benchmark(rekey)
    # Everyone converged on the newest epoch.
    assert all(m.group_epoch == leader.group_epoch
               for m in members.values())
    benchmark.extra_info["group_size"] = n_members


@pytest.mark.parametrize("grace", [True, False], ids=["grace", "strict"])
def test_rekey_grace_ablation(benchmark, grace):
    """Ablation: in-flight frames across a benign rotation are delivered
    with the grace window and lost without it (eviction rotations close
    the window in both modes — that is a security requirement, not a
    knob)."""
    from repro.enclaves.common import AppMessage
    from repro.enclaves.itgm.leader import LeaderConfig
    from conftest import build_itgm_group
    from repro.crypto.rng import DeterministicRandom
    from repro.enclaves.common import UserDirectory
    from repro.enclaves.harness import SyncNetwork, wire
    from repro.enclaves.itgm.leader import GroupLeader
    from repro.enclaves.itgm.member import MemberProtocol

    def one_round():
        rng = DeterministicRandom(9)
        net = SyncNetwork()
        directory = UserDirectory()
        leader = GroupLeader(
            "leader", directory,
            config=LeaderConfig(rekey_grace=grace),
            rng=rng.fork("leader"),
        )
        wire(net, "leader", leader)
        members = {}
        for uid in ("alice", "bob"):
            creds = directory.register_password(uid, f"pw-{uid}")
            member = MemberProtocol(creds, "leader", rng.fork(uid),
                                    rekey_grace=grace)
            members[uid] = member
            wire(net, uid, member)
            net.post(member.start_join())
            net.run()
        # Seal in-flight, rotate (benign), then deliver the old frame.
        frame = members["alice"].seal_app(b"in-flight")
        net.post_all(leader.rekey_now())
        net.run()
        net.post(frame)
        net.run()
        return len(net.events_of("bob", AppMessage))

    delivered = benchmark(one_round)
    assert delivered == (1 if grace else 0)
    benchmark.extra_info["in_flight_delivered"] = delivered


POLICIES = [
    ("membership", RekeyPolicy.ON_JOIN | RekeyPolicy.ON_LEAVE),
    ("on-leave", RekeyPolicy.ON_LEAVE),
    ("periodic", RekeyPolicy.PERIODIC),
    ("manual", RekeyPolicy.MANUAL),
]


@pytest.mark.parametrize("name,policy", POLICIES,
                         ids=[p[0] for p in POLICIES])
def test_policy_cost_under_churn(benchmark, name, policy):
    scenario = ChurnScenario(
        n_users=8, duration=60.0, join_rate=0.5, mean_session=20.0,
        message_rate=1.0, rekey_policy=policy, rekey_interval=10.0,
        seed=21,
    )

    report = benchmark(lambda: run_churn(scenario))
    assert report.views_consistent
    benchmark.extra_info["rekeys"] = report.rekeys
    benchmark.extra_info["joins"] = report.joins
    benchmark.extra_info["leaves"] = report.leaves

    # Shape assertions: the membership policy rekeys per join+leave;
    # manual only mints the initial key.
    if name == "membership":
        assert report.rekeys >= report.joins  # at least one per join
    if name == "manual":
        assert report.rekeys == 1
    if name == "periodic":
        assert 2 <= report.rekeys <= 60.0 / 10.0 + 2
