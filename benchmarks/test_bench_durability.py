"""DUR: durability cost and recovery latency of the write-ahead journal.

Three paper-relevant numbers from the storage layer:

* **append overhead** — wall cost of the admin-broadcast hot path with
  the journal attached versus bare (the WAL tax on every mutation);
* **replay latency vs log length** — recovery is a linear scan, so the
  replay time must grow with the delta count and stay milliseconds at
  the sizes the soak produces;
* **compaction bound** — with a compaction threshold the on-disk record
  count (and hence replay work) is bounded regardless of how many
  mutations ran.

All three are asserted and written to ``BENCH_durability.json`` so the
durability trajectory is part of the artifact history.
"""

from __future__ import annotations

import time

from conftest import build_itgm_group, write_bench_record
from repro.crypto.keys import KEY_LEN, KeyMaterial
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.itgm.admin import TextPayload
from repro.storage.journal import Journal
from repro.storage.recovery import replay_records
from repro.storage.simdisk import SimDisk

REPEATS = 3
BROADCAST_ROUNDS = 40
#: Delta counts for the replay-latency curve (compaction disabled).
LOG_LENGTHS = (16, 64, 256)
COMPACT_THRESHOLD = 16
#: Journaled hot path within 5x of bare (the per-mutation diff, JSON
#: encode, and seal dominate; measured ~3.3x).  The bound still trips
#: if appends degrade to full-snapshot writes.
MAX_APPEND_OVERHEAD = 5.0


def _journaled_group(n_members=4, seed=0, **journal_kw):
    net, leader, members = build_itgm_group(n_members, seed=seed)
    rng = DeterministicRandom(seed + 1000)
    disk = SimDisk(rng=rng.fork("disk"))
    key = KeyMaterial(rng.fork("storage").key_material(KEY_LEN))
    journal = Journal(
        disk, "leader.wal", key, rng=rng.fork("seal"), **journal_kw
    )
    journal.attach(leader)
    return net, leader, members, journal, disk, key


def _broadcast_rounds(net, leader, rounds):
    start = time.perf_counter()
    for i in range(rounds):
        net.post_all(leader.broadcast_admin(TextPayload(f"m{i}")))
        net.run()
    return time.perf_counter() - start


def _grow_log(deltas, seed=0):
    """A journal holding ``deltas`` delta records (no compaction)."""
    net, leader, members, journal, disk, key = _journaled_group(
        seed=seed, compact_threshold=None,
    )
    base = journal.seq
    while journal.seq - base < deltas:
        net.post_all(leader.broadcast_admin(
            TextPayload(f"d{journal.seq}")))
        net.run()
    return disk.read("leader.wal"), key


def test_append_overhead_and_replay_curve():
    payload = {}

    # -- append overhead: journaled vs bare broadcast hot path -------
    bare = float("inf")
    journaled = float("inf")
    for attempt in range(REPEATS):
        net, leader, _ = build_itgm_group(4, seed=attempt)
        bare = min(bare, _broadcast_rounds(net, leader, BROADCAST_ROUNDS))
        net, leader, _, journal, disk, _ = _journaled_group(
            seed=attempt, compact_threshold=None)
        journaled = min(
            journaled, _broadcast_rounds(net, leader, BROADCAST_ROUNDS))
        assert journal.appends >= BROADCAST_ROUNDS
    overhead = journaled / bare
    payload["append"] = {
        "rounds": BROADCAST_ROUNDS,
        "bare_s": bare,
        "journaled_s": journaled,
        "overhead_ratio": overhead,
        "appends_per_s": BROADCAST_ROUNDS / journaled,
    }
    assert overhead < MAX_APPEND_OVERHEAD, \
        f"journal tax {overhead:.2f}x exceeds {MAX_APPEND_OVERHEAD}x"

    # -- replay latency vs log length --------------------------------
    curve = []
    for deltas in LOG_LENGTHS:
        data, key = _grow_log(deltas)
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = replay_records(data, key)
            best = min(best, time.perf_counter() - start)
        assert not result.truncated
        # At least the asked-for deltas plus the base snapshot (member
        # acks journal too, so a broadcast round adds several records).
        assert result.records >= deltas + 1
        curve.append({
            "deltas": deltas,
            "records": result.records,
            "bytes": len(data),
            "replay_s": best,
        })
    payload["replay_curve"] = curve
    # Linear scan: 16x the log must not replay faster than the shortest.
    assert curve[-1]["replay_s"] >= curve[0]["replay_s"]

    # -- compaction bounds replay ------------------------------------
    net, leader, _, journal, disk, key = _journaled_group(
        compact_threshold=COMPACT_THRESHOLD)
    _broadcast_rounds(net, leader, max(LOG_LENGTHS))
    data = disk.read("leader.wal")
    start = time.perf_counter()
    result = replay_records(data, key)
    compacted_replay = time.perf_counter() - start
    assert result.records <= COMPACT_THRESHOLD + 1
    payload["compaction"] = {
        "mutations": max(LOG_LENGTHS),
        "threshold": COMPACT_THRESHOLD,
        "records_on_disk": result.records,
        "compactions": journal.compactions,
        "bytes": len(data),
        "replay_s": compacted_replay,
    }
    # Replaying the compacted log is cheaper than the longest raw log.
    assert result.records < max(LOG_LENGTHS)

    write_bench_record("durability", payload)
