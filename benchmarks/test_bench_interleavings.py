"""THM-5.4 companion: exhaustive schedule enumeration throughput.

Measures the concrete-stack interleaving explorer on the scenarios the
§5.4 properties care about, recording how many delivery schedules get
certified per run (the concrete analogue of the FIG-4 state counts).
"""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import Credentials
from repro.enclaves.itgm.admin import TextPayload
from repro.enclaves.itgm.leader_session import LeaderSession
from repro.enclaves.itgm.member import MemberProtocol
from repro.enclaves.modelcheck import World, explore_interleavings


def build_pair(seed=0):
    creds = Credentials.from_password("alice", "pw")
    rng = DeterministicRandom(seed)
    member = MemberProtocol(creds, "leader", rng.fork("m"))
    session = LeaderSession("leader", "alice", creds.long_term_key,
                            rng.fork("l"))
    return member, session


def requirements(world):
    member = world.endpoints["alice"]
    session = world.endpoints["leader"]
    rcv, snd = member.admin_log, session.admin_log
    if rcv != snd[: len(rcv)]:
        return f"prefix violated: {rcv} vs {snd}"
    return None


def test_handshake_enumeration(benchmark):
    seeds = iter(range(1_000_000))

    def build():
        member, session = build_pair(next(seeds))
        world = World({"alice": member, "leader": session})
        world.post(member.start_join())
        return world

    result = benchmark.pedantic(
        lambda: explore_interleavings(build, requirements,
                                      with_duplicates=True, max_depth=10),
        rounds=2, iterations=1,
    )
    assert result.ok
    benchmark.extra_info["worlds"] = result.worlds_explored


def test_close_race_enumeration(benchmark):
    seeds = iter(range(1_000_000))

    def build():
        member, session = build_pair(next(seeds))
        out1, _ = session.handle(member.start_join())
        out2, _ = member.handle(out1[0])
        session.handle(out2[0])
        world = World({"alice": member, "leader": session})
        world.post(session.send_admin(TextPayload("racing")))
        world.post(member.start_leave())
        return world

    result = benchmark.pedantic(
        lambda: explore_interleavings(build, requirements,
                                      with_duplicates=True, max_depth=12),
        rounds=2, iterations=1,
    )
    assert result.ok
    benchmark.extra_info["worlds"] = result.worlds_explored
