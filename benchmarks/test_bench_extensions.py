"""Extension benchmarks: DH provisioning, failover, loss recovery.

The paper's footnote (public-key authentication) and future work
(multiple group managers) carry costs; these benches quantify them next
to the password-provisioned single-leader baseline.
"""

import pytest

from repro.crypto.dh import generate_keypair, shared_secret
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.itgm.failover import run_failover_drill
from repro.enclaves.pubkey import PublicKeyInfrastructure


def test_dh_keypair_generation(benchmark):
    rng = DeterministicRandom(0)
    pair = benchmark(lambda: generate_keypair(rng))
    assert pair.public > 1


def test_dh_agreement(benchmark):
    alice = generate_keypair(DeterministicRandom(1))
    leader = generate_keypair(DeterministicRandom(2))
    secret = benchmark(lambda: shared_secret(alice, leader.public))
    assert len(secret) == 256


def test_pki_enrollment(benchmark):
    pki = PublicKeyInfrastructure.create("leader", DeterministicRandom(0))
    rng = DeterministicRandom(1)
    counter = [0]

    def enroll():
        counter[0] += 1
        return pki.enroll_user(f"user-{counter[0]}", rng)

    creds = benchmark(enroll)
    assert creds.long_term_key is not None


def test_failover_drill(benchmark):
    """Full drill: bring up 2 members on mgr-0, crash it, promote
    mgr-1, re-authenticate everyone, resume traffic."""
    seeds = iter(range(100_000))

    def drill():
        return run_failover_drill(n_managers=3,
                                  member_ids=("alice", "bob"),
                                  seed=next(seeds))

    report = benchmark(drill)
    assert report["after"]["members"] == ["alice", "bob"]
    assert report["received"]["bob"] == [b"we survived"]


def test_loss_recovery_roundtrip(benchmark):
    """Cost of one lost-AdminMsg recovery: drop, retransmit, ack."""
    from repro.enclaves.itgm.admin import TextPayload
    from repro.wire.labels import Label
    from conftest import build_itgm_group

    net, leader, members = build_itgm_group(2)
    counter = [0]

    def lose_and_recover():
        counter[0] += 1
        dropped = []

        def drop_one(envelope):
            if (
                envelope.label is Label.ADMIN_MSG
                and not dropped
            ):
                dropped.append(envelope)
                return []
            return None

        net.set_interceptor(drop_one)
        net.post_all(
            leader.broadcast_admin(TextPayload(f"frame-{counter[0]}"))
        )
        net.run()
        net.set_interceptor(None)
        net.post_all(leader.retransmit_stalled())
        net.run()

    benchmark(lose_and_recover)
    for user_id, member in members.items():
        assert member.admin_log == leader.admin_send_log(user_id)
