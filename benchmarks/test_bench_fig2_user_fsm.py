"""FIG-2: the user state-transition model.

Reproduces Figure 2 as an executable conformance check — the member FSM
has exactly the states NotConnected / WaitingForKey / Connected and
exactly the transitions the figure draws — plus throughput benchmarks of
the two hot transitions (admin accept+ack, app open).
"""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import Credentials
from repro.enclaves.itgm.admin import TextPayload
from repro.enclaves.itgm.leader_session import LeaderSession
from repro.enclaves.itgm.member import MemberProtocol, MemberState
from repro.exceptions import StateError


def make_pair(seed=0):
    creds = Credentials.from_password("alice", "pw")
    rng = DeterministicRandom(seed)
    member = MemberProtocol(creds, "leader", rng.fork("m"))
    session = LeaderSession("leader", "alice", creds.long_term_key,
                            rng.fork("l"))
    return member, session


def connect(member, session):
    out1, _ = session.handle(member.start_join())
    out2, _ = member.handle(out1[0])
    session.handle(out2[0])


def test_fig2_conformance(benchmark):
    """The FSM walks exactly the Figure 2 cycle; illegal moves raise."""

    def walk_figure_2():
        member, session = make_pair()
        # NotConnected --join--> WaitingForKey
        assert member.state is MemberState.NOT_CONNECTED
        req = member.start_join()
        assert member.state is MemberState.WAITING_FOR_KEY
        # Illegal in WaitingForKey: join again, leave, seal app.
        for illegal in (member.start_join, member.start_leave):
            try:
                illegal()
                raise AssertionError("illegal transition allowed")
            except StateError:
                pass
        # WaitingForKey --AuthKeyDist--> Connected
        out1, _ = session.handle(req)
        out2, _ = member.handle(out1[0])
        assert member.state is MemberState.CONNECTED
        session.handle(out2[0])
        # Connected --AdminMsg/Ack--> Connected (self-loop)
        env = session.send_admin(TextPayload("t"))
        out3, _ = member.handle(env)
        assert member.state is MemberState.CONNECTED
        session.handle(out3[0])
        # Connected --ReqClose--> NotConnected
        member.start_leave()
        assert member.state is MemberState.NOT_CONNECTED
        return member

    member = benchmark(walk_figure_2)
    assert member.stats.joins_completed >= 1
    # Figure 2 has exactly three states.
    assert len(MemberState) == 3


def test_admin_accept_throughput(benchmark):
    """Throughput of the Connected self-loop (decrypt, verify nonce,
    apply, ack) — the protocol's steady-state operation."""
    member, session = make_pair()
    connect(member, session)

    def one_admin_roundtrip():
        env = session.send_admin(TextPayload("payload"))
        out, _ = member.handle(env)
        session.handle(out[0])

    benchmark(one_admin_roundtrip)
    assert member.admin_log  # messages were actually accepted


def test_replay_rejection_throughput(benchmark):
    """Cost of *rejecting* a stale replayed AdminMsg (attack-path hot
    loop).  The replay is from two exchanges back: a duplicate of the
    *immediately previous* message would instead hit the idempotent
    loss-recovery path (cached-ack resend), which is not a rejection."""
    member, session = make_pair()
    connect(member, session)
    stale = session.send_admin(TextPayload("old"))
    out, _ = member.handle(stale)
    session.handle(out[0])
    env2 = session.send_admin(TextPayload("newer"))
    out2, _ = member.handle(env2)
    session.handle(out2[0])
    rejected_before = member.stats.rejected

    def replay():
        member.handle(stale)

    benchmark(replay)
    assert member.stats.rejected > rejected_before
    assert member.admin_log == [TextPayload("old"), TextPayload("newer")]
