"""QRM: what the Byzantine leader quorum costs, measured.

The quorum layer's design claim is that certification is *off-wire*:
witnesses co-sign over the journal shipping stream that already exists,
and the certificate rides inside the sealed admin payloads members
already receive.  Three numbers pin that down:

* **rekey overhead** — wire frames per certified rekey must equal the
  single-leader count exactly (no extra protocol rounds); the costs
  that remain are CPU (witness replays + MACs) and bytes (the
  certificate inside the sealed payload), both measured and bounded.
* **join frame parity** — the §3.2 handshake is untouched: frames per
  join identical on both stacks.
* **view-change latency** — wall seconds for the full equivocation
  story (strike, gossip detection, eviction, promotion, re-key, heal),
  plus the soak verdict riding along.

All asserted and written to ``BENCH_quorum.json`` (shared artifact
envelope, see ``schema.py``).
"""

from __future__ import annotations

import time

from conftest import write_bench_record
from repro.quorum.byzantine import build_quorum_scenario, build_single_scenario
from repro.quorum.soak import run_quorum_soak, soak_as_expected

REPEATS = 3
REKEY_ROUNDS = 10
MEMBER_IDS = ["user-0", "user-1", "user-2"]
#: Certification does CPU work per mutation (one replica replay and one
#: MAC per witness) that the single leader skips; replay is bounded by
#: the quorum journal's aggressive compaction cadence
#: (``QUORUM_COMPACT_THRESHOLD``), so the whole overhead must stay
#: within this factor of the single-leader rekey, wall-clock.
MAX_REKEY_SLOWDOWN = 30.0
#: The certificate inflates the sealed rekey payload; bounded so the
#: "layer, not a protocol" claim stays honest at f=1.
MAX_BYTES_BLOWUP = 4.0


def _measure_rekeys(scenario) -> dict:
    """Best-of wall seconds, frames, and bytes for REKEY_ROUNDS rekeys."""
    net = scenario.net
    frames_before = len(net.wire_log)
    start = time.perf_counter()
    for _ in range(REKEY_ROUNDS):
        net.post_all(scenario.leader.rekey_now())
        net.run()
    elapsed = time.perf_counter() - start
    frames = net.wire_log[frames_before:]
    epochs = {m.group_epoch for m in scenario.members.values()}
    fps = {m.group_key_fingerprint for m in scenario.members.values()}
    assert epochs == {scenario.leader.group_epoch}
    assert fps == {scenario.leader.group_key_fingerprint}
    return {
        "seconds_per_rekey": elapsed / REKEY_ROUNDS,
        "frames_per_rekey": len(frames) / REKEY_ROUNDS,
        "bytes_per_rekey": sum(len(e.body) for e in frames) / REKEY_ROUNDS,
    }


def test_certified_rekey_overhead():
    """Certified rekeys: same frames, bounded CPU and byte overhead."""
    quorum = {"seconds_per_rekey": float("inf")}
    single = {"seconds_per_rekey": float("inf")}
    for attempt in range(REPEATS):
        q = _measure_rekeys(build_quorum_scenario(MEMBER_IDS, seed=attempt))
        s = _measure_rekeys(build_single_scenario(MEMBER_IDS, seed=attempt))
        if q["seconds_per_rekey"] < quorum["seconds_per_rekey"]:
            quorum = q
        if s["seconds_per_rekey"] < single["seconds_per_rekey"]:
            single = s

    # The central shape claim: certification adds ZERO wire frames.
    assert quorum["frames_per_rekey"] == single["frames_per_rekey"], (
        f"certification added protocol rounds: "
        f"{quorum['frames_per_rekey']} vs {single['frames_per_rekey']} "
        "frames per rekey"
    )
    slowdown = (
        quorum["seconds_per_rekey"] / single["seconds_per_rekey"]
    )
    assert slowdown < MAX_REKEY_SLOWDOWN, (
        f"certified rekey is {slowdown:.1f}x the single-leader rekey"
    )
    blowup = quorum["bytes_per_rekey"] / single["bytes_per_rekey"]
    assert blowup < MAX_BYTES_BLOWUP, (
        f"certificates inflated rekey bytes {blowup:.2f}x"
    )
    write_bench_record("quorum", _payload(rekey={
        "rounds": REKEY_ROUNDS,
        "members": len(MEMBER_IDS),
        "quorum": quorum,
        "single": single,
        "wall_slowdown": slowdown,
        "max_wall_slowdown": MAX_REKEY_SLOWDOWN,
        "bytes_blowup": blowup,
        "max_bytes_blowup": MAX_BYTES_BLOWUP,
    }))


def test_join_frame_parity():
    """The handshake is untouched: frames per join match exactly."""
    per_stack = {}
    for stack, build in (
        ("quorum", build_quorum_scenario),
        ("single", build_single_scenario),
    ):
        best = float("inf")
        frames = None
        for attempt in range(REPEATS):
            start = time.perf_counter()
            scenario = build(MEMBER_IDS, seed=attempt)
            best = min(
                best, (time.perf_counter() - start) / len(MEMBER_IDS)
            )
            assert all(
                m.group_epoch == scenario.leader.group_epoch
                for m in scenario.members.values()
            )
            frames = len(scenario.net.wire_log) / len(MEMBER_IDS)
        per_stack[stack] = {
            "seconds_per_join": best, "frames_per_join": frames,
        }
    assert (
        per_stack["quorum"]["frames_per_join"]
        == per_stack["single"]["frames_per_join"]
    ), f"join handshake diverged: {per_stack}"
    write_bench_record("quorum", _payload(join=per_stack))


def test_view_change_latency():
    """Strike-to-healed wall time for the equivocation drill."""
    best = float("inf")
    report = None
    for attempt in range(REPEATS):
        start = time.perf_counter()
        report = run_quorum_soak("equivocation", stack="quorum", seed=7)
        best = min(best, time.perf_counter() - start)
    assert report is not None
    assert soak_as_expected(report), report.violations
    assert report.view_changes == 1
    write_bench_record("quorum", _payload(view_change={
        "fault": "equivocation",
        "seconds_full_drill": best,
        "view_changes": report.view_changes,
        "final_epoch": report.final_epoch,
        "violations": len(report.violations),
        "detected": report.detected,
    }))


# -- artifact assembly --------------------------------------------------------

#: Each bench owns one section; whichever runs last writes the union.
_SECTIONS: dict = {}


def _payload(**section) -> dict:
    _SECTIONS.update(section)
    return dict(_SECTIONS)
