"""PERF-R: overload-machinery disabled overhead + soak shed fairness.

Two halves of one gate, written to ``BENCH_overload.json``:

* **Disabled overhead** — the overload machinery ships behind no-op
  defaults, and the contract is that the defaults are (nearly) free.
  Both guarded hot paths keep their seed bodies as separate entry
  points, so the cost of the falsy guard is directly measurable:

  - journal shipping fan-out: ``_ship_all`` (the seed body) vs
    ``_on_record`` (one ``breaker_config is None`` branch);
  - fabric redirect chase: ``_chase`` (the seed body) vs
    ``_on_redirect`` (one ``retry_budget is None`` branch).

  Each pair must stay within 2%, measured with the same interleaved
  best-of discipline as the telemetry and observability benches.

* **Shed fairness** — one protected run of the seeded overload soak
  (flooding insider + join surge).  The shed pain must land on the
  flooder: honest members absorb at most 5% of all sheds, and the
  protected stack's honest join p99 stays inside the SLO the
  unprotected baseline violates.
"""

from __future__ import annotations

import contextlib
import gc
import time

from conftest import write_bench_record
from repro.crypto.keys import KEY_LEN, KeyMaterial
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.enclaves.itgm.admin import TextPayload
from repro.enclaves.itgm.leader import GroupLeader
from repro.enclaves.itgm.member import MemberProtocol
from repro.fabric.directory import GroupDirectory
from repro.fabric.member import FabricMember
from repro.fabric.shard import redirect_envelope
from repro.overload.soak import OverloadConfig, run_overload_soak
from repro.storage.journal import Journal
from repro.storage.shipping import JournalFollower, JournalShipper
from repro.storage.simdisk import SimDisk

REPEATS = 7
MUTATIONS = 50
FOLLOWERS = 3
REDIRECTS = 1500
#: The acceptance bound: overload-disabled hot paths within 2% of the
#: seed bodies.
MAX_OVERHEAD = 1.02
#: Honest members may absorb at most this fraction of all sheds.
SHED_HONEST_FRACTION = 0.05

SHIP_ENTRIES = ("_ship_all", "_on_record")
CHASE_ENTRIES = ("_chase", "_on_redirect")

SOAK_CONFIG = OverloadConfig(seed=7, duration=8.0, surge_at=4.0,
                             flood_until=7.0)


@contextlib.contextmanager
def _gc_pinned():
    """Collector parked during a timed region: a cycle collection
    landing inside one arm but not the other would dwarf the sub-2%
    effect under measurement."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _interleaved_best(entries, measure) -> dict[str, float]:
    """Best-of-REPEATS per entry point, the two arms interleaved and
    alternating order each repeat so clock drift and frequency scaling
    hit both equally."""
    best = {entry: float("inf") for entry in entries}
    for attempt in range(REPEATS):
        order = entries if attempt % 2 == 0 else entries[::-1]
        for entry in order:
            best[entry] = min(best[entry], measure(entry, attempt))
    return best


def _ship_once(entry: str, attempt: int) -> float:
    """Seconds to run MUTATIONS journaled admin broadcasts with the
    journal's record hook bound to ``entry`` — ``_ship_all`` is the
    seed fan-out body, ``_on_record`` adds the breaker guard (left at
    its no-op default here)."""
    rng = DeterministicRandom(attempt)
    net = SyncNetwork()
    directory = UserDirectory()
    creds = directory.register_password("alice", "pw")
    leader = GroupLeader("mgr-0", directory, rng=rng.fork("leader"))
    wire(net, "mgr-0", leader)
    member = MemberProtocol(creds, "mgr-0", rng.fork("alice"))
    wire(net, "alice", member)
    key = KeyMaterial(rng.fork("storage").key_material(KEY_LEN))
    journal = Journal(
        SimDisk(rng=rng.fork("disk")), "mgr-0.wal", key,
        rng=rng.fork("seal"), node="mgr-0",
    )
    shipper = JournalShipper(journal)
    if entry == "_ship_all":
        # Rebind the record hook to the bare seed body.
        shipper.detach()
        journal.subscribe_records(shipper._ship_all)
    followers = [
        JournalFollower(f"standby-{i}", key) for i in range(FOLLOWERS)
    ]
    for follower in followers:
        shipper.add_follower(follower)
    journal.attach(leader)
    net.post(member.start_join())
    net.run()
    with _gc_pinned():
        start = time.perf_counter()
        for _ in range(MUTATIONS):
            net.post_all(leader.broadcast_admin(TextPayload("t")))
            net.run()
        elapsed = time.perf_counter() - start
    assert all(f.applied_seq == f.offered_seq for f in followers)
    assert all(f.applied_seq >= MUTATIONS for f in followers)
    return elapsed


def _chase_once(entry: str, attempt: int) -> float:
    """Seconds to chase REDIRECTS redirect frames through ``entry`` on
    a default (no retry budget) fabric member."""
    rng = DeterministicRandom(attempt)
    fabric = GroupDirectory(["shard-0", "shard-1"], rng=rng.fork("d"))
    record = fabric.create_group("grp")
    users = UserDirectory()
    creds = users.register_password("alice", "pw")
    member = FabricMember(creds, "grp", fabric, rng=rng.fork("alice"))
    member.start_join()
    envelope = redirect_envelope(record.shard_id, "alice", "grp", None)
    fn = getattr(member, entry)
    with _gc_pinned():
        start = time.perf_counter()
        for _ in range(REDIRECTS):
            out = fn(envelope)
        elapsed = time.perf_counter() - start
    assert out  # every redirect was chased
    assert member.chases_dropped == 0
    return elapsed


def test_overload_bench_gate():
    ship = _interleaved_best(SHIP_ENTRIES, _ship_once)
    chase = _interleaved_best(CHASE_ENTRIES, _chase_once)
    ship_ratio = ship["_on_record"] / ship["_ship_all"]
    chase_ratio = chase["_on_redirect"] / chase["_chase"]

    report = run_overload_soak(SOAK_CONFIG)
    protected = report.protected
    unprotected = report.unprotected

    write_bench_record("overload", {
        "bound": MAX_OVERHEAD,
        "shipping_fanout": {
            "seed_s": ship["_ship_all"],
            "disabled_s": ship["_on_record"],
            "ratio": ship_ratio,
            "mutations_per_measurement": MUTATIONS,
            "followers": FOLLOWERS,
        },
        "redirect_chase": {
            "seed_s": chase["_chase"],
            "disabled_s": chase["_on_redirect"],
            "ratio": chase_ratio,
            "redirects_per_measurement": REDIRECTS,
        },
        "repeats": REPEATS,
        "soak": {
            "seed": SOAK_CONFIG.seed,
            "duration_s": SOAK_CONFIG.duration,
            "protection_holds": report.protection_holds,
            "shed_honest_bound": SHED_HONEST_FRACTION,
            "protected": protected.as_dict(),
            "unprotected": unprotected.as_dict(),
        },
    })

    assert ship_ratio <= MAX_OVERHEAD, (
        f"shipping fan-out overhead {ship_ratio:.4f} > {MAX_OVERHEAD}"
    )
    assert chase_ratio <= MAX_OVERHEAD, (
        f"redirect chase overhead {chase_ratio:.4f} > {MAX_OVERHEAD}"
    )

    # Shed fairness: the pain lands on the flooder.
    assert report.protection_holds
    assert protected.frames_shed > 0
    assert protected.shed_flooder > protected.shed_honest
    assert (protected.shed_honest
            <= protected.frames_shed * SHED_HONEST_FRACTION)
    # And the protected stack keeps the SLO the baseline violates.
    assert protected.slo_met and not unprotected.slo_met
