"""PERF-A: authentication handshake — improved vs. legacy baseline.

The paper replaces the legacy 5-message join (2 pre-auth + 3 auth, group
key inside message 2) with a 3-message join (group key via the admin
channel).  This bench measures both, so the cost delta of the security
fix is visible: the improved join trades the pre-auth round-trip for
extra admin-channel exchanges after connecting.
"""

import pytest

from conftest import build_itgm_group, build_legacy_group
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.enclaves.itgm.leader import GroupLeader
from repro.enclaves.itgm.member import MemberProtocol, MemberState
from repro.enclaves.legacy.leader import LegacyGroupLeader
from repro.enclaves.legacy.member import LegacyMemberProtocol, LegacyMemberState


def bench_join(benchmark, build, member_cls, leader_factory, connected_state):
    rng = DeterministicRandom(7)
    net = SyncNetwork()
    directory = UserDirectory()
    leader = leader_factory(directory, rng)
    wire(net, "leader", leader)
    counter = [0]

    def join_once():
        counter[0] += 1
        user_id = f"joiner-{counter[0]:05d}"
        creds = directory.register_password(user_id, "pw")
        member = member_cls(creds, "leader", rng.fork(user_id))
        wire(net, user_id, member)
        frames_before = len(net.wire_log)
        net.post(member.start_join())
        net.run()
        assert member.state is connected_state
        return len(net.wire_log) - frames_before

    frames = benchmark(join_once)
    benchmark.extra_info["wire_frames_per_join"] = frames
    return frames


def test_itgm_join(benchmark):
    frames = bench_join(
        benchmark,
        build_itgm_group,
        MemberProtocol,
        lambda d, rng: GroupLeader("leader", d, rng=rng.fork("leader")),
        MemberState.CONNECTED,
    )
    # 3 handshake frames + 2 admin exchanges (view, key) x2 frames = 7
    # for the first joiner; later joiners trigger notifications too.
    assert frames >= 7


def test_legacy_join(benchmark):
    frames = bench_join(
        benchmark,
        build_legacy_group,
        LegacyMemberProtocol,
        lambda d, rng: LegacyGroupLeader("leader", d, rng=rng.fork("leader")),
        LegacyMemberState.CONNECTED,
    )
    # req_open/ack_open + 3 auth frames + membership view = 6 minimum.
    assert frames >= 6


def test_itgm_rejoin_cycle(benchmark):
    """Leave + rejoin of an existing member (fresh session key each
    time, §3.1)."""
    net, leader, members = build_itgm_group(4)
    member = members["user-000"]

    def cycle():
        net.post(member.start_leave())
        net.run()
        net.post(member.start_join())
        net.run()
        assert member.state is MemberState.CONNECTED

    benchmark(cycle)
    session = leader._sessions["user-000"]
    # Every cycle discarded a key: none were reused.
    assert len(set(session.discarded_keys)) == len(session.discarded_keys)
