"""FIG-1 companion: latency structure of the star architecture.

Under a modelled one-way delay d, the §3.2 message diagram predicts
exact hop counts (join→K_a = 2d, join→operational = 6d, admin delivery
= 1d).  This bench measures the study itself and asserts those shapes —
the latency-structure half of the Figure 1 reproduction.
"""

import pytest

from repro.sim.latency import run_latency_study
from repro.sim.netmodel import ExponentialDelay, FixedDelay


@pytest.mark.parametrize("delay", [0.01, 0.05], ids=["10ms", "50ms"])
def test_fixed_delay_study(benchmark, delay):
    report = benchmark(
        lambda: run_latency_study(
            n_members=4, delay_model=FixedDelay(delay), n_admin_rounds=3
        )
    )
    assert abs(report.join_to_connected.mean - 2 * delay) < 1e-9
    assert abs(report.join_to_group_key.mean - 6 * delay) < 1e-9
    assert abs(report.admin_round_trip.mean - delay) < 1e-9
    benchmark.extra_info["join_to_key_hops"] = round(
        report.join_to_group_key.mean / delay
    )


def test_exponential_delay_study(benchmark):
    mean = 0.02
    report = benchmark(
        lambda: run_latency_study(
            n_members=4, delay_model=ExponentialDelay(mean, seed=1),
            n_admin_rounds=3,
        )
    )
    # Expected join-to-key ≈ 6 hops x mean; allow wide slack for the
    # exponential tails with few samples.
    assert 2 * mean < report.join_to_group_key.mean < 18 * mean
