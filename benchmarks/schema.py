"""Shared envelope schema for committed ``BENCH_*.json`` artifacts.

Every benchmark artifact is one JSON document with the same top-level
shape, so tooling (CI artifact uploads, trend dashboards, the next
benchmark that wants to read a previous one) can parse any of them
without per-artifact knowledge::

    {
      "artifact": "durability",        # matches BENCH_<artifact>.json
      "schema_version": 1,
      "payload": { ... }               # the benchmark's own measurements
    }

Writers go through :func:`record` (usually via the conftest's
``write_bench_record``); readers go through :func:`validate_record`,
which checks the envelope and returns the payload.
"""

from __future__ import annotations

import json

SCHEMA_VERSION = 1

_ENVELOPE_KEYS = {"artifact", "schema_version", "payload"}


def record(artifact: str, payload: dict) -> dict:
    """Wrap one benchmark's measurements in the shared envelope.

    ``artifact`` must be the BENCH file's name stem (``durability`` for
    ``BENCH_durability.json``); ``payload`` must be a JSON-serializable
    dict.  Raises ``ValueError`` on malformed input so a benchmark
    fails at write time, not when someone later reads the artifact.
    """
    if not isinstance(artifact, str) or not artifact:
        raise ValueError(f"artifact name must be a non-empty str, "
                         f"got {artifact!r}")
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be a dict, got {type(payload)}")
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"payload is not JSON-serializable: {exc}")
    return {
        "artifact": artifact,
        "schema_version": SCHEMA_VERSION,
        "payload": payload,
    }


def validate_record(doc: dict) -> dict:
    """Check one artifact document's envelope; return its payload."""
    if not isinstance(doc, dict):
        raise ValueError(f"artifact document must be a dict, "
                         f"got {type(doc)}")
    missing = _ENVELOPE_KEYS - doc.keys()
    if missing:
        raise ValueError(f"artifact document lacks {sorted(missing)}")
    extra = doc.keys() - _ENVELOPE_KEYS
    if extra:
        raise ValueError(f"artifact document has stray keys "
                         f"{sorted(extra)}")
    if doc["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {doc['schema_version']!r} != {SCHEMA_VERSION}"
        )
    if not isinstance(doc["artifact"], str) or not doc["artifact"]:
        raise ValueError("artifact name must be a non-empty str")
    if not isinstance(doc["payload"], dict):
        raise ValueError("payload must be a dict")
    return doc["payload"]
