"""PERF-T: telemetry-disabled overhead on the protocol hot paths.

The instrumentation contract is that an unsubscribed bus is free: the
public ``handle()`` is the seed dispatch body plus a single falsy-bus
branch.  This bench times both entry points — ``_dispatch`` *is* the
seed code path, ``handle`` is the instrumented one with zero
subscribers — on the auth-handshake and rekey hot paths, and asserts
the events-disabled cost stays within 2% of the seed path.

The measured ratios (min over repeats, so scheduler noise cancels) are
written to ``BENCH_telemetry.json`` so the overhead trajectory is part
of the artifact history.
"""

from __future__ import annotations

import time

from conftest import write_bench_record
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import UserDirectory
from repro.enclaves.harness import SyncNetwork
from repro.enclaves.itgm.leader import GroupLeader
from repro.enclaves.itgm.member import MemberProtocol, MemberState

REPEATS = 5
JOINERS = 6
REKEY_ROUNDS = 10
#: The acceptance bound: events-disabled hot path within 2% of seed.
MAX_OVERHEAD = 1.02

ENTRIES = ("_dispatch", "handle")


def _fresh_stack(entry: str, seed: int, n_members: int):
    """A network whose cores are wired through ``entry`` —
    ``"_dispatch"`` (the seed body) or ``"handle"`` (instrumented)."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    directory = UserDirectory()
    leader = GroupLeader("leader", directory, rng=rng.fork("leader"))
    net.register("leader", getattr(leader, entry))
    members = {}
    for i in range(n_members):
        user_id = f"user-{i:03d}"
        creds = directory.register_password(user_id, f"pw-{i}")
        member = MemberProtocol(creds, "leader", rng.fork(user_id))
        members[user_id] = member
        net.register(user_id, getattr(member, entry))
    return net, leader, members


def _interleaved_best(measure) -> dict[str, float]:
    """Best-of-REPEATS per entry point, the two arms interleaved and
    alternating order each repeat so clock drift and frequency scaling
    hit both equally."""
    best = {entry: float("inf") for entry in ENTRIES}
    for attempt in range(REPEATS):
        order = ENTRIES if attempt % 2 == 0 else ENTRIES[::-1]
        for entry in order:
            best[entry] = min(best[entry], measure(entry, attempt))
    return best


def _joins_once(entry: str, attempt: int) -> float:
    """Seconds to run JOINERS full handshakes."""
    net, leader, members = _fresh_stack(entry, seed=attempt,
                                        n_members=JOINERS)
    start = time.perf_counter()
    for member in members.values():
        net.post(member.start_join())
        net.run()
    elapsed = time.perf_counter() - start
    assert all(m.state is MemberState.CONNECTED
               for m in members.values())
    return elapsed


def _rekeys_once(entry: str, attempt: int) -> float:
    """Seconds for REKEY_ROUNDS full rekey fan-outs over a joined
    four-member group."""
    net, leader, members = _fresh_stack(entry, seed=attempt, n_members=4)
    for member in members.values():
        net.post(member.start_join())
        net.run()
    start = time.perf_counter()
    for _ in range(REKEY_ROUNDS):
        net.post_all(leader.rekey_now())
        net.run()
    elapsed = time.perf_counter() - start
    epochs = {m.group_epoch for m in members.values()}
    assert epochs == {leader._group_epoch}
    return elapsed


def test_disabled_telemetry_overhead_within_bound():
    handshake = _interleaved_best(_joins_once)
    rekey = _interleaved_best(_rekeys_once)
    handshake_seed = handshake["_dispatch"]
    handshake_instr = handshake["handle"]
    rekey_seed = rekey["_dispatch"]
    rekey_instr = rekey["handle"]

    handshake_ratio = handshake_instr / handshake_seed
    rekey_ratio = rekey_instr / rekey_seed

    write_bench_record("telemetry", {
        "bound": MAX_OVERHEAD,
        "auth_handshake": {
            "seed_s": handshake_seed,
            "instrumented_disabled_s": handshake_instr,
            "ratio": handshake_ratio,
            "joins_per_measurement": JOINERS,
        },
        "rekey": {
            "seed_s": rekey_seed,
            "instrumented_disabled_s": rekey_instr,
            "ratio": rekey_ratio,
            "rounds_per_measurement": REKEY_ROUNDS,
        },
        "repeats": REPEATS,
    })

    assert handshake_ratio <= MAX_OVERHEAD, (
        f"auth-handshake overhead {handshake_ratio:.4f} > {MAX_OVERHEAD}"
    )
    assert rekey_ratio <= MAX_OVERHEAD, (
        f"rekey overhead {rekey_ratio:.4f} > {MAX_OVERHEAD}"
    )
