"""FIG-1: the Enclaves architecture (star topology, leader-mediated
multicast) as a running system.

Reproduces Figure 1 operationally: N members connected to one leader by
point-to-point links; a group message from one member is relayed by the
leader to the other N-1.  The benchmark sweeps the group size and
asserts the architectural invariants (exactly N-1 relays per message,
all communication passes the leader, views converge).
"""

import pytest

from conftest import build_itgm_group


@pytest.mark.parametrize("n_members", [2, 4, 8, 16])
def test_broadcast_relay_scales_with_group(benchmark, n_members):
    net, leader, members = build_itgm_group(n_members)
    sender = next(iter(members.values()))

    def broadcast():
        net.post(sender.seal_app(b"x" * 64))
        net.run()

    relayed_before = leader.stats.relayed_frames
    benchmark(broadcast)
    rounds = (leader.stats.relayed_frames - relayed_before) // (n_members - 1)
    # Architectural invariant: each broadcast produced exactly N-1 relays.
    assert (leader.stats.relayed_frames - relayed_before) == \
        rounds * (n_members - 1)
    benchmark.extra_info["group_size"] = n_members
    benchmark.extra_info["relays_per_message"] = n_members - 1


@pytest.mark.parametrize("n_members", [2, 8])
def test_group_bringup(benchmark, n_members):
    """Time to build the full star: N joins, keys, membership views."""

    def bringup():
        net, leader, members = build_itgm_group(n_members)
        assert len(leader.members) == n_members
        return net, leader, members

    net, leader, members = benchmark(bringup)
    # Views converged: every member sees the full membership.
    full = set(leader.members)
    for member in members.values():
        assert member.membership == full
    benchmark.extra_info["group_size"] = n_members


def test_all_traffic_passes_the_leader(benchmark):
    """Figure 1's defining property: members never talk directly."""
    net, leader, members = build_itgm_group(4)

    def chat_round():
        for member in members.values():
            net.post(member.seal_app(b"ping"))
            net.run()

    benchmark(chat_round)
    for envelope in net.wire_log:
        assert (
            envelope.recipient == "leader" or envelope.sender == "leader"
            # relayed app frames keep the origin as claimed sender but
            # are emitted by the leader toward a member:
            or envelope.recipient in members
        )
    # Every member-originated frame was addressed to the leader.
    member_frames = [e for e in net.wire_log if e.sender in members
                     and e.recipient != "leader"]
    # (Relay frames carry the origin's name as sender but go to members;
    #  they were emitted by the leader, which the wire log can't show —
    #  the real check is that no member->member address pair occurs in
    #  frames *posted by members*, which the harness guarantees since
    #  members only ever send to their leader endpoint.)
    assert all(e.label.name == "APP_DATA" for e in member_frames)
