"""Ablation: the stop-and-wait admin channel vs. group size.

The §3.2 nonce chain forces one outstanding AdminMsg per member (the
next message needs the nonce from the previous Ack).  This bench
measures broadcast cost as the group grows — the price of ordered,
replay-proof delivery — and the per-member pipeline behaviour of the
leader's outboxes.
"""

import pytest

from conftest import build_itgm_group
from repro.enclaves.itgm.admin import TextPayload


@pytest.mark.parametrize("n_members", [1, 4, 8, 16])
def test_admin_broadcast(benchmark, n_members):
    net, leader, members = build_itgm_group(n_members)
    counter = [0]

    def broadcast():
        counter[0] += 1
        net.post_all(
            leader.broadcast_admin(TextPayload(f"notice-{counter[0]}"))
        )
        net.run()

    benchmark(broadcast)
    # Every member accepted every notice, in order.
    for user_id, member in members.items():
        assert member.admin_log == leader.admin_send_log(user_id)
    benchmark.extra_info["group_size"] = n_members


@pytest.mark.parametrize("burst", [1, 8, 32])
def test_admin_burst_drain(benchmark, burst):
    """Queue a burst of payloads then drain the stop-and-wait channel:
    the outbox depth bounds the in-flight count to one."""
    net, leader, members = build_itgm_group(4)
    counter = [0]

    def queue_and_drain():
        out = []
        for _ in range(burst):
            counter[0] += 1
            out += leader.broadcast_admin(TextPayload(f"b{counter[0]}"))
        # Stop-and-wait: at most one frame per member left the leader.
        assert len(out) <= len(members)
        net.post_all(out)
        net.run()
        assert all(leader.outbox_depth(uid) == 0 for uid in members)

    benchmark(queue_and_drain)
    benchmark.extra_info["burst"] = burst
    for user_id, member in members.items():
        assert member.admin_log == leader.admin_send_log(user_id)
