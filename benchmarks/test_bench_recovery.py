"""Recovery latency: how fast the self-healing runtime rejoins.

Two recovery paths from the robustness layer, measured on the
virtual-time loop (so the *virtual* rejoin latency is exact and
deterministic; the benchmark clock measures the wall cost of driving
the whole asyncio stack through the scenario):

* leader crash -> failover to the standby manager;
* network partition -> heal -> rejoin of the severed members.

Both assert full recovery and report the virtual downtime, which is
the paper-relevant number: how long a member is without the group key.
"""

import asyncio

import pytest

from repro.chaos.loop import LoopClock, run_virtual
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import UserDirectory
from repro.enclaves.itgm import (
    LeaderOrchestrator,
    ResilientMemberClient,
    SupervisorConfig,
)
from repro.net import Adversary, FaultPlan, MemoryNetwork

MANAGERS = ["mgr-0", "mgr-1"]
MEMBERS = ["user-0", "user-1", "user-2"]

SUPERVISION = SupervisorConfig(
    liveness_timeout=1.0,
    check_interval=0.1,
    join_timeout=0.5,
    retransmit_interval=0.1,
    backoff_base=0.1,
    backoff_max=0.5,
)


async def _scenario(fault, seed=3):
    """Join everyone, inject ``fault``, wait for full reconvergence.

    Returns the per-member recovery downtimes (virtual seconds).
    """
    loop = asyncio.get_running_loop()
    net = MemoryNetwork()
    directory = UserDirectory()
    rng = DeterministicRandom(seed)
    creds = {
        uid: directory.register_password(uid, f"pw-{uid}")
        for uid in MEMBERS
    }
    orchestrator = LeaderOrchestrator(
        net, directory, MANAGERS,
        rng=rng.fork("mgrs"), clock=LoopClock(loop),
        tick_interval=0.1, heartbeat_interval=0.25,
    )
    await orchestrator.start()
    members = {
        uid: ResilientMemberClient(
            {m: creds[uid] for m in MANAGERS}, MANAGERS, net,
            config=SUPERVISION, rng=rng.fork(uid),
        )
        for uid in MEMBERS
    }
    for supervisor in members.values():
        await supervisor.start()
    await asyncio.sleep(0.5)
    assert all(s.connected for s in members.values())

    await fault(net, orchestrator)

    def reconverged():
        target = orchestrator.current_id
        fingerprint = orchestrator.current_leader.group_key_fingerprint
        return all(
            s.connected and s.active == target
            and s.group_key_fingerprint == fingerprint
            for s in members.values()
        )

    while not reconverged():
        await asyncio.sleep(0.1)

    downtimes = [
        latency
        for supervisor in members.values()
        for latency in supervisor.rejoin_latencies[1:]
    ]
    for supervisor in members.values():
        await supervisor.stop()
    await orchestrator.stop()
    return downtimes


def test_rejoin_after_leader_crash(benchmark):
    """Crash the primary cold; every member must fail over to the
    standby.  Reported: virtual seconds from crash detection to
    re-keyed membership at mgr-1."""

    async def crash(net, orchestrator):
        await orchestrator.failover()

    downtimes = benchmark(lambda: run_virtual(_scenario(crash)))
    assert len(downtimes) == len(MEMBERS)
    benchmark.extra_info["rejoin_mean_s"] = round(
        sum(downtimes) / len(downtimes), 3
    )
    benchmark.extra_info["rejoin_max_s"] = round(max(downtimes), 3)
    # Detection (1.0s liveness timeout) + one failed attempt at the
    # dead primary + the standby handshake: well under ten seconds.
    assert max(downtimes) < 10.0


def test_rejoin_after_partition_heal(benchmark):
    """Sever every member from both managers for 3 virtual seconds;
    after the heal each member closes its stale session and rejoins
    the *same* (still live) leader."""

    async def partition(net, orchestrator):
        loop = asyncio.get_running_loop()
        start = loop.time()
        plan = FaultPlan(seed=3).partition(
            start, start + 3.0, [set(MANAGERS), set(MEMBERS)]
        )
        adversary = Adversary()
        net.attach_adversary(adversary)
        adversary.set_policy(plan.as_policy(loop.time))
        await asyncio.sleep(3.0)

    downtimes = benchmark(lambda: run_virtual(_scenario(partition)))
    assert len(downtimes) >= len(MEMBERS)
    benchmark.extra_info["rejoin_mean_s"] = round(
        sum(downtimes) / len(downtimes), 3
    )
    benchmark.extra_info["rejoin_max_s"] = round(max(downtimes), 3)
    assert max(downtimes) < 10.0
