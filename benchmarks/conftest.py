"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one artifact of the paper (see the
per-experiment index in DESIGN.md).  Everything runs under::

    pytest benchmarks/ --benchmark-only

Benchmarks both *time* an operation and *assert* the reproduced
artifact's shape (who wins, what converges, what is blocked), so a
passing benchmark run is itself a reproduction check.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from schema import record as bench_record

from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import RekeyPolicy, UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.enclaves.itgm.leader import GroupLeader, LeaderConfig
from repro.enclaves.itgm.member import MemberProtocol
from repro.enclaves.legacy.leader import LegacyGroupLeader
from repro.enclaves.legacy.member import LegacyMemberProtocol


BENCH_DIR = Path(__file__).resolve().parent


def write_bench_artifact(name: str, payload: dict) -> Path:
    """Persist one ``BENCH_<name>.json`` artifact next to the suite.

    Artifacts are committed, so the bench trajectory across revisions
    is reviewable in the history, not just in CI logs.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_bench_record(name: str, payload: dict) -> Path:
    """Persist ``payload`` wrapped in the shared artifact envelope
    (see :mod:`schema`) — the writer every benchmark should use, so all
    committed ``BENCH_*.json`` files share one parseable shape."""
    return write_bench_artifact(name, bench_record(name, payload))


def build_itgm_group(n_members: int, seed: int = 0,
                     rekey_policy=RekeyPolicy.MANUAL):
    """A joined improved-protocol group of the given size."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    directory = UserDirectory()
    leader = GroupLeader(
        "leader", directory,
        config=LeaderConfig(rekey_policy=rekey_policy),
        rng=rng.fork("leader"),
    )
    wire(net, "leader", leader)
    members = {}
    for i in range(n_members):
        user_id = f"user-{i:03d}"
        creds = directory.register_password(user_id, f"pw-{i}")
        member = MemberProtocol(creds, "leader", rng.fork(user_id))
        members[user_id] = member
        wire(net, user_id, member)
        net.post(member.start_join())
        net.run()
    return net, leader, members


def build_legacy_group(n_members: int, seed: int = 0,
                       rekey_policy=RekeyPolicy.MANUAL):
    """A joined legacy group of the given size."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    directory = UserDirectory()
    leader = LegacyGroupLeader(
        "leader", directory, rekey_policy=rekey_policy,
        rng=rng.fork("leader"),
    )
    wire(net, "leader", leader)
    members = {}
    for i in range(n_members):
        user_id = f"user-{i:03d}"
        creds = directory.register_password(user_id, f"pw-{i}")
        member = LegacyMemberProtocol(creds, "leader", rng.fork(user_id))
        members[user_id] = member
        wire(net, user_id, member)
        net.post(member.start_join())
        net.run()
    return net, leader, members
