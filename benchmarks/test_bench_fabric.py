"""FAB: fabric-layer costs — demux throughput, join scaling, downtime.

Three numbers the fabric design argues about, measured:

* **demux throughput** — sealed app frames routed per second through
  one :class:`ShardHost` as the number of co-hosted groups grows.  The
  demux is a dict hop, so per-frame cost must not grow with group
  count (bounded ratio between the largest and smallest hosting).
* **join cost vs group count** — wire frames per §3.2 join must be
  *identical* however many groups the fabric hosts: the directory and
  the wrapper add routing, never handshake rounds.  Wall seconds ride
  along for the trajectory.
* **migration downtime in virtual time** — from a seeded soak with a
  live migration: virtual seconds between the directory flip and the
  migrated group's members all holding the new leader's key.

All three are asserted and written to ``BENCH_fabric.json`` (shared
artifact envelope, see ``schema.py``).
"""

from __future__ import annotations

import time

from conftest import write_bench_record
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import AppMessage, UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.fabric.directory import GroupDirectory
from repro.fabric.member import FabricMember
from repro.fabric.scale import FabricConfig, run_fabric_soak
from repro.fabric.shard import ShardHost
from repro.storage.simdisk import SimDisk

REPEATS = 3
MEMBERS_PER_GROUP = 2
THROUGHPUT_GROUPS = (1, 4, 8)
THROUGHPUT_ROUNDS = 10
JOIN_GROUP_COUNTS = (1, 4, 16)
#: Demux is a dict lookup: per-frame cost at 8 co-hosted groups within
#: 3x of the single-group cost (generous — scheduler noise included).
MAX_DEMUX_SPREAD = 3.0


def _build_fabric(n_groups: int, seed: int):
    """One shard hosting ``n_groups`` groups, members wired but not
    yet joined."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    fabric = GroupDirectory(["shard-0"], rng=rng.fork("directory"))
    host = ShardHost(
        "shard-0", SimDisk(rng=rng.fork("disk")), rng=rng.fork("host"),
    )
    wire(net, "shard-0", host)
    members = {}
    for g in range(n_groups):
        group_id = f"grp-{g:02d}"
        users = UserDirectory()
        record = fabric.create_group(group_id)
        host.host_group(group_id, users, storage_key=record.storage_key)
        for j in range(MEMBERS_PER_GROUP):
            uid = f"{group_id}.u{j}"
            creds = users.register_password(uid, f"pw-{uid}")
            fm = FabricMember(creds, group_id, fabric, rng=rng.fork(uid))
            members[uid] = fm
            wire(net, uid, fm)
    return net, host, members


def _join_all(net, members) -> None:
    for fm in members.values():
        net.post_all(fm.start_join())
        net.run()


def test_demux_throughput_vs_cohosted_groups():
    """Frames/s through one shard as co-hosting grows."""
    points = []
    for n_groups in THROUGHPUT_GROUPS:
        best = float("inf")
        for attempt in range(REPEATS):
            net, host, members = _build_fabric(n_groups, seed=attempt)
            _join_all(net, members)
            frames = n_groups * MEMBERS_PER_GROUP * THROUGHPUT_ROUNDS
            start = time.perf_counter()
            for round_no in range(THROUGHPUT_ROUNDS):
                for uid, fm in members.items():
                    net.post(fm.seal_app(f"{uid}|r{round_no}".encode()))
                    net.run()
            best = min(best, (time.perf_counter() - start) / frames)
            # Every sealed frame was demuxed to its own group's leader
            # and fanned out to the other member — no foreign rejects.
            assert host.stats.foreign_rejected == 0
            delivered = sum(
                len(net.events_of(uid, AppMessage)) for uid in members
            )
            assert delivered == frames * (MEMBERS_PER_GROUP - 1)
        points.append({
            "groups": n_groups,
            "members": n_groups * MEMBERS_PER_GROUP,
            "seconds_per_frame": best,
            "frames_per_s": 1.0 / best,
        })
    spread = (points[-1]["seconds_per_frame"]
              / points[0]["seconds_per_frame"])
    assert spread < MAX_DEMUX_SPREAD, (
        f"per-frame demux cost grew {spread:.2f}x from "
        f"{THROUGHPUT_GROUPS[0]} to {THROUGHPUT_GROUPS[-1]} groups"
    )
    write_bench_record("fabric", _payload(throughput={
        "rounds": THROUGHPUT_ROUNDS,
        "curve": points,
        "spread_ratio": spread,
        "max_spread": MAX_DEMUX_SPREAD,
    }))


def test_join_cost_vs_group_count():
    """Wire frames per join must not depend on how many groups exist."""
    points = []
    frames_per_join = set()
    for n_groups in JOIN_GROUP_COUNTS:
        best = float("inf")
        frames = None
        for attempt in range(REPEATS):
            net, host, members = _build_fabric(n_groups, seed=attempt)
            start = time.perf_counter()
            _join_all(net, members)
            best = min(best, (time.perf_counter() - start) / len(members))
            frames = len(net.wire_log) / len(members)
        frames_per_join.add(frames)
        points.append({
            "groups": n_groups,
            "joins": n_groups * MEMBERS_PER_GROUP,
            "seconds_per_join": best,
            "frames_per_join": frames,
        })
    assert len(frames_per_join) == 1, (
        f"handshake frame count varies with group count: "
        f"{sorted(frames_per_join)}"
    )
    write_bench_record("fabric", _payload(join_latency={
        "curve": points,
        "frames_per_join": frames_per_join.pop(),
    }))


def test_migration_downtime_virtual():
    """Downtime of a live migration, in virtual (simulated) seconds."""
    config = FabricConfig.full(
        seed=7, n_groups=4, n_shards=2, duration=30.0,
        rebalance_at=None, crash_shard_at=None,
    )
    report = run_fabric_soak(config)
    assert report.safe and report.isolated and report.converged
    assert report.migrations, "the soak must have performed a migration"
    assert report.migration_downtime is not None
    assert report.migration_downtime < config.converge_timeout
    write_bench_record("fabric", _payload(migration={
        "groups": config.n_groups,
        "shards": config.n_shards,
        "duration_virtual_s": config.duration,
        "downtime_virtual_s": report.migration_downtime,
        "redirects": report.redirects,
        "rejoins": report.rejoins,
        "moves": report.migrations,
    }))


# -- artifact assembly --------------------------------------------------------

#: The three benches each own one section; whichever runs last writes
#: the union, so a full ``pytest benchmarks/`` run commits all three.
_SECTIONS: dict = {}


def _payload(**section) -> dict:
    _SECTIONS.update(section)
    return dict(_SECTIONS)
