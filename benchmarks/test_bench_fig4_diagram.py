"""FIG-4 + THM-5.x: the verification diagram and the §5 theorem suite.

Reproduces the paper's verification as a measured computation: explore
the symbolic model and check, on every state/edge, all nine invariants
plus the 14-box diagram coverage and successor obligations.  The
benchmark asserts the verification *succeeds* (the paper's result) and
records how many states/transitions that certification covered.
"""

import pytest

from repro.formal.diagram import DIAGRAM
from repro.formal.model import ModelConfig
from repro.formal.verify import verify_protocol


@pytest.mark.parametrize(
    "label,config",
    [
        ("baseline", ModelConfig(max_sessions=1, max_admin=1, spy_budget=0)),
        ("with-spy", ModelConfig(max_sessions=1, max_admin=1, spy_budget=1)),
        ("two-admin", ModelConfig(max_sessions=1, max_admin=2, spy_budget=1)),
        ("compromised-member",
         ModelConfig(max_sessions=1, max_admin=1, spy_budget=1,
                     compromised_member=True)),
    ],
    ids=["baseline", "with-spy", "two-admin", "compromised-member"],
)
def test_verification_suite(benchmark, label, config):
    report = benchmark(lambda: verify_protocol(config))
    # The reproduced result: every §5 property holds, the diagram is a
    # valid abstraction (coverage + all successor obligations).
    assert report.ok, report.summary()
    assert report.diagram_boxes == len(DIAGRAM) == 14
    benchmark.extra_info["states"] = report.states_explored
    benchmark.extra_info["transitions"] = report.transitions_explored
    benchmark.extra_info["invariants"] = len(report.checks_run)


def test_verification_depth_sweep(benchmark):
    """Certified state count vs. exploration budget (the bounded-
    exhaustive analogue of 'proof effort')."""
    sweep = [
        ModelConfig(max_sessions=1, max_admin=1, spy_budget=0),
        ModelConfig(max_sessions=1, max_admin=2, spy_budget=0),
        ModelConfig(max_sessions=2, max_admin=1, spy_budget=0),
    ]

    def run_sweep():
        return [verify_protocol(config) for config in sweep]

    reports = benchmark(run_sweep)
    states = [r.states_explored for r in reports]
    assert all(r.ok for r in reports)
    # Wider budgets certify strictly more states.
    assert states[0] < states[1] < states[2]
    benchmark.extra_info["states_by_budget"] = states


def test_mutant_detection_cost(benchmark):
    """Time-to-counterexample for a flawed protocol — the checker's
    'bite' (negative control for the FIG-4 result)."""
    from repro.formal.explorer import Explorer
    from repro.formal.mutants import NoNonceChainModel

    config = ModelConfig(max_sessions=1, max_admin=2, spy_budget=0)

    def find_flaw():
        return Explorer(NoNonceChainModel(config)).run()

    result = benchmark(find_flaw)
    assert not result.ok
    assert result.violations[0].check in ("prefix", "no_duplicates")
    benchmark.extra_info["states_to_counterexample"] = result.states_explored
