"""PERF-O: phase-profile attribution and disabled-observability overhead.

Two halves of one gate, written to ``BENCH_observability.json``:

* **Attribution** — the seeded quorum-on-fabric workload (the same one
  ``repro obs`` drives: joins, a sealed app round, a certified rekey)
  run under a :class:`~repro.observability.PhaseProfiler` on its own
  virtual clock.  Every expected hot-path phase must appear, nested
  under the shard's ``demux`` where the call actually happens, and the
  deterministic tick totals are committed so attribution drift across
  revisions shows up in review.
* **Disabled overhead** — with no profiler bound and no subscribers,
  the instrumented shard entry point (``handle``: one stats bump, one
  profiler guard) must stay within 2% of the bare demux body
  (``_demux``), measured on full join and rekey rounds through the
  fabric.  Same interleaved best-of discipline as the telemetry bench.
"""

from __future__ import annotations

import time

from conftest import write_bench_record
from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import UserDirectory
from repro.enclaves.harness import SyncNetwork, wire
from repro.enclaves.itgm.member import MemberState
from repro.fabric.directory import GroupDirectory
from repro.fabric.member import FabricMember
from repro.fabric.shard import ShardHost
from repro.observability import PhaseProfiler
from repro.quorum.fabric import host_quorum_group, quorum_fabric_member
from repro.storage.simdisk import SimDisk
from repro.telemetry.events import EventBus
from repro.util.clock import TickClock

REPEATS = 5
REKEY_ROUNDS = 8
MEMBER_IDS = ("alice", "bob", "carol")
#: The acceptance bound: observability-disabled hot path within 2%.
MAX_OVERHEAD = 1.02

#: Leaf phases the quorum-on-fabric workload must attribute time to.
EXPECTED_LEAVES = (
    "seal", "open", "demux", "certify", "wal.append", "multicast",
)

ENTRIES = ("_demux", "handle")


def _profiled_scenario(seed: int = 7) -> PhaseProfiler:
    """The ``repro obs`` workload under a deterministic profiler."""
    profiler = PhaseProfiler(TickClock())
    bus = EventBus()  # no subscribers: guards stay falsy
    group_id = "grp-obs"
    rng = DeterministicRandom(seed)
    users = UserDirectory()
    net = SyncNetwork(telemetry=bus)
    fabric = GroupDirectory(
        ["shard-a"], rng=rng.fork("directory"), telemetry=bus
    )
    shard = ShardHost(
        "shard-a", SimDisk(rng=rng.fork("disk")),
        rng=rng.fork("shard"), telemetry=bus,
    )
    wire(net, "shard-a", shard)
    fabric.create_group(group_id)
    qs = host_quorum_group(
        shard, users, group_id, rng=rng.fork("quorum"), telemetry=bus
    )
    shard.bind_profiler(profiler)
    qs.leader.bind_profiler(profiler)
    qs.journal.bind_profiler(profiler)
    members = {}
    for name in MEMBER_IDS:
        creds = users.register_password(name, f"pw-{name}")
        fm = quorum_fabric_member(
            creds, group_id, fabric, qs, rng=rng.fork(name), telemetry=bus
        )
        fm.protocol.bind_profiler(profiler)
        members[name] = fm
        wire(net, name, fm)
        net.post_all(fm.start_join())
        net.run()
    net.post(members["alice"].seal_app(b"profiled app round"))
    net.run()
    net.post_all(qs.leader.rekey_now())
    net.run()
    return profiler


def _fabric_stack(entry: str, seed: int):
    """A fabric group whose shard is wired through ``entry`` —
    ``"_demux"`` (the bare body) or ``"handle"`` (instrumented)."""
    rng = DeterministicRandom(seed)
    net = SyncNetwork()
    fabric = GroupDirectory(["shard-a"], rng=rng.fork("directory"))
    shard = ShardHost(
        "shard-a", SimDisk(rng=rng.fork("disk")), rng=rng.fork("shard"),
    )
    net.register("shard-a", getattr(shard, entry))
    group_id = "grp-bench"
    record = fabric.create_group(group_id)
    users = UserDirectory()
    shard.host_group(group_id, users, storage_key=record.storage_key)
    members = {}
    for uid in MEMBER_IDS:
        creds = users.register_password(uid, f"pw-{uid}")
        fm = FabricMember(creds, group_id, fabric, rng=rng.fork(uid))
        members[uid] = fm
        wire(net, uid, fm)
    return net, shard, group_id, members


def _interleaved_best(measure) -> dict[str, float]:
    best = {entry: float("inf") for entry in ENTRIES}
    for attempt in range(REPEATS):
        order = ENTRIES if attempt % 2 == 0 else ENTRIES[::-1]
        for entry in order:
            best[entry] = min(best[entry], measure(entry, attempt))
    return best


def _joins_once(entry: str, attempt: int) -> float:
    net, shard, group_id, members = _fabric_stack(entry, seed=attempt)
    start = time.perf_counter()
    for fm in members.values():
        net.post_all(fm.start_join())
        net.run()
    elapsed = time.perf_counter() - start
    assert all(fm.protocol.state is MemberState.CONNECTED
               for fm in members.values())
    return elapsed


def _rekeys_once(entry: str, attempt: int) -> float:
    net, shard, group_id, members = _fabric_stack(entry, seed=attempt)
    for fm in members.values():
        net.post_all(fm.start_join())
        net.run()
    leader = shard.leader(group_id)
    start = time.perf_counter()
    for _ in range(REKEY_ROUNDS):
        net.post_all(leader.rekey_now())
        net.run()
    elapsed = time.perf_counter() - start
    epochs = {fm.protocol.group_epoch for fm in members.values()}
    assert epochs == {leader.group_epoch}
    return elapsed


def test_phase_attribution_and_disabled_overhead():
    # -- attribution (deterministic: TickClock on both axes) -------------
    profiler = _profiled_scenario(seed=7)
    phases = profiler.phases()
    leaves = {path.split("/")[-1] for path in phases}
    missing = [name for name in EXPECTED_LEAVES if name not in leaves]
    assert not missing, f"phases never attributed: {missing}"
    # The nested paths prove attribution flows through the demux: the
    # hosted leader's work lands *under* the shard's phase.
    assert any(path.startswith("demux/") for path in phases), (
        f"no phase nested under demux: {sorted(phases)}"
    )
    total = profiler.total()
    assert total > 0.0

    # -- disabled overhead ------------------------------------------------
    handshake = _interleaved_best(_joins_once)
    rekey = _interleaved_best(_rekeys_once)
    handshake_ratio = handshake["handle"] / handshake["_demux"]
    rekey_ratio = rekey["handle"] / rekey["_demux"]

    write_bench_record("observability", {
        "bound": MAX_OVERHEAD,
        "profile": {
            "workload": "quorum-on-fabric join + app + certified rekey",
            "seed": 7,
            "clock": "TickClock(step=1)",
            "total_ticks": total,
            "phases": profiler.as_dict()["phases"],
        },
        "disabled_overhead": {
            "join": {
                "seed_s": handshake["_demux"],
                "instrumented_disabled_s": handshake["handle"],
                "ratio": handshake_ratio,
                "joins_per_measurement": len(MEMBER_IDS),
            },
            "rekey": {
                "seed_s": rekey["_demux"],
                "instrumented_disabled_s": rekey["handle"],
                "ratio": rekey_ratio,
                "rounds_per_measurement": REKEY_ROUNDS,
            },
            "repeats": REPEATS,
        },
    })

    assert handshake_ratio <= MAX_OVERHEAD, (
        f"join overhead {handshake_ratio:.4f} > {MAX_OVERHEAD}"
    )
    assert rekey_ratio <= MAX_OVERHEAD, (
        f"rekey overhead {rekey_ratio:.4f} > {MAX_OVERHEAD}"
    )
