"""PERF-A: crypto substrate microbenchmarks.

The paper relies on "software-implemented cryptography"; these measure
our from-scratch substrate so protocol-level numbers upstream can be
normalized by primitive cost (pure Python: the absolute values are
orders of magnitude below a C implementation — the *ratios* matter).
"""

import pytest

from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.aes import AES
from repro.crypto.keys import SessionKey, derive_long_term_key
from repro.crypto.kdf import pbkdf2_hmac_sha256
from repro.crypto.mac import hmac_sha256
from repro.crypto.rng import DeterministicRandom
from repro.crypto.sha256 import sha256


def test_sha256_1kib(benchmark):
    data = bytes(1024)
    digest = benchmark(lambda: sha256(data))
    assert len(digest) == 32


def test_hmac_sha256_1kib(benchmark):
    data = bytes(1024)
    tag = benchmark(lambda: hmac_sha256(b"key", data))
    assert len(tag) == 32


def test_aes_block(benchmark):
    cipher = AES(bytes(16))
    block = bytes(16)
    out = benchmark(lambda: cipher.encrypt_block(block))
    assert len(out) == 16


@pytest.mark.parametrize("size", [64, 1024], ids=["64B", "1KiB"])
def test_aead_seal(benchmark, size):
    cipher = AuthenticatedCipher(SessionKey(bytes(32)), DeterministicRandom(1))
    payload = bytes(size)
    box = benchmark(lambda: cipher.seal(payload))
    assert len(box.ciphertext) == size


@pytest.mark.parametrize("size", [64, 1024], ids=["64B", "1KiB"])
def test_aead_open(benchmark, size):
    key = SessionKey(bytes(32))
    box = AuthenticatedCipher(key, DeterministicRandom(1)).seal(bytes(size))
    opener = AuthenticatedCipher(key)
    out = benchmark(lambda: opener.open(box))
    assert len(out) == size


def test_aead_reject_forgery(benchmark):
    """Rejection cost (constant-time compare path) — the defender's hot
    loop under attack."""
    from repro.crypto.aead import SealedBox
    from repro.exceptions import IntegrityError

    key = SessionKey(bytes(32))
    box = AuthenticatedCipher(key, DeterministicRandom(1)).seal(bytes(64))
    forged = SealedBox(box.nonce, box.ciphertext,
                       bytes(32))  # wrong tag
    opener = AuthenticatedCipher(key)

    def attempt():
        try:
            opener.open(forged)
        except IntegrityError:
            return True
        return False

    assert benchmark(attempt)


def test_password_derivation(benchmark):
    counter = [0]

    def derive():
        counter[0] += 1
        return pbkdf2_hmac_sha256(
            b"password", str(counter[0]).encode(), 32, 32
        )

    out = benchmark(derive)
    assert len(out) == 32
