"""FIG-3: the leader's per-user state model.

Reproduces Figure 3 as an executable conformance check — NotConnected /
WaitingForKeyAck / Connected / WaitingForAck with ReqClose+Oops edges
from Connected and WaitingForAck — plus handshake and close throughput.
"""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.enclaves.common import Credentials
from repro.enclaves.itgm.admin import TextPayload
from repro.enclaves.itgm.leader_session import LeaderSession, LeaderState
from repro.enclaves.itgm.member import MemberProtocol
from repro.exceptions import StateError


def make_pair(seed=0):
    creds = Credentials.from_password("alice", "pw")
    rng = DeterministicRandom(seed)
    member = MemberProtocol(creds, "leader", rng.fork("m"))
    session = LeaderSession("leader", "alice", creds.long_term_key,
                            rng.fork("l"))
    return member, session


def test_fig3_conformance(benchmark):
    """The FSM walks exactly the Figure 3 cycle, with key discard
    (Oops) on close."""

    def walk_figure_3():
        member, session = make_pair()
        assert session.state is LeaderState.NOT_CONNECTED
        # NotConnected --AuthInitReq/AuthKeyDist--> WaitingForKeyAck
        out1, _ = session.handle(member.start_join())
        assert session.state is LeaderState.WAITING_FOR_KEY_ACK
        # Illegal: sending admin before the key ack.
        try:
            session.send_admin(TextPayload("early"))
            raise AssertionError("illegal transition allowed")
        except StateError:
            pass
        # WaitingForKeyAck --AuthAckKey--> Connected
        out2, _ = member.handle(out1[0])
        session.handle(out2[0])
        assert session.state is LeaderState.CONNECTED
        # Connected --send_admin--> WaitingForAck --Ack--> Connected
        env = session.send_admin(TextPayload("x"))
        assert session.state is LeaderState.WAITING_FOR_ACK
        out3, _ = member.handle(env)
        session.handle(out3[0])
        assert session.state is LeaderState.CONNECTED
        # Connected --ReqClose--> NotConnected, K_a discarded (Oops).
        fp = session.session_key_fingerprint
        session.handle(member.start_leave())
        assert session.state is LeaderState.NOT_CONNECTED
        assert session.discarded_keys[-1] == fp
        assert session.admin_log == []  # snd emptied on close (§5.4)
        return session

    session = benchmark(walk_figure_3)
    assert session.stats.sessions_opened >= 1
    # Figure 3 has exactly four states.
    assert len(LeaderState) == 4


def test_handshake_throughput(benchmark):
    """Full 3-message authentication handshake (leader+member work)."""

    def handshake():
        member, session = make_pair()
        out1, _ = session.handle(member.start_join())
        out2, _ = member.handle(out1[0])
        session.handle(out2[0])
        return session

    session = benchmark(handshake)
    assert session.is_member


def test_session_cycle_throughput(benchmark):
    """Join + one admin exchange + close: one full session lifecycle."""

    def cycle():
        member, session = make_pair()
        out1, _ = session.handle(member.start_join())
        out2, _ = member.handle(out1[0])
        session.handle(out2[0])
        env = session.send_admin(TextPayload("x"))
        out3, _ = member.handle(env)
        session.handle(out3[0])
        session.handle(member.start_leave())
        return session

    session = benchmark(cycle)
    assert session.stats.sessions_closed >= 1
