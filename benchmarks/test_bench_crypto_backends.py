"""CRYPTO: pluggable-backend benchmark gate (BENCH_crypto.json).

Two promises from PR 10, measured and enforced:

* The ``fast`` backend is *worth having*: bulk frame sealing at least
  ``MIN_SPEEDUP``x the from-scratch reference (gated only when the
  ``cryptography`` AES is importable — on a bare interpreter the fast
  backend still accelerates hashing but cannot hit 10x on AEAD, so the
  ratio is recorded and the assertion skips gracefully).
* The provider seam is *free*: routing the reference backend through
  the provider indirection costs at most ``MAX_INDIRECTION`` over
  calling the pure primitives directly (the seed code path).

Alongside the gates, the artifact records per-backend handshake and
rekey throughput so protocol-level numbers can be normalized by crypto
cost across revisions.
"""

from __future__ import annotations

import contextlib
import gc
import time

import pytest

from conftest import build_itgm_group, write_bench_record
from repro.crypto.aes import AES
from repro.crypto.mac import HMACSHA256
from repro.crypto.modes import ctr_transform
from repro.crypto.provider import available_backends, get_provider, using_provider
from repro.crypto.rng import DeterministicRandom

REPEATS = 5
BULK_FRAMES = 120
PAYLOAD_LEN = 256
JOIN_MEMBERS = 4
REKEYS = 3
#: fast backend must seal bulk frames at least this many times faster.
MIN_SPEEDUP = 10.0
#: provider indirection on the reference backend must cost at most this.
MAX_INDIRECTION = 1.02

BACKENDS = sorted(available_backends())


@contextlib.contextmanager
def _gc_pinned():
    """Collector parked during a timed region (a cycle collection in
    one arm but not the other would dwarf a sub-2% effect)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _interleaved_best(entries, measure) -> dict[str, float]:
    """Best-of-REPEATS per entry, arms interleaved and alternating order
    each repeat so clock drift and frequency scaling hit both equally."""
    best = {entry: float("inf") for entry in entries}
    for attempt in range(REPEATS):
        order = list(entries) if attempt % 2 == 0 else list(entries)[::-1]
        for entry in order:
            best[entry] = min(best[entry], measure(entry, attempt))
    return best


def _bulk_jobs(attempt: int):
    rng = DeterministicRandom(1000 + attempt)
    enc_key, mac_key = rng.random_bytes(16), rng.random_bytes(32)
    jobs = [(rng.random_bytes(8), rng.random_bytes(PAYLOAD_LEN), b"bench")
            for _ in range(BULK_FRAMES)]
    return enc_key, mac_key, jobs


def _bulk_seal_once(backend: str, attempt: int) -> float:
    """Seconds to seal_many + open_many one bulk flush."""
    enc_key, mac_key, jobs = _bulk_jobs(attempt)
    with using_provider(backend) as provider:
        provider.seal_many(enc_key, mac_key, jobs[:2])  # warm key cache
        with _gc_pinned():
            start = time.perf_counter()
            sealed = provider.seal_many(enc_key, mac_key, jobs)
            opened = provider.open_many(enc_key, mac_key, [
                (nonce, ct, tag, ad)
                for (nonce, _, ad), (ct, tag) in zip(jobs, sealed)
            ])
            elapsed = time.perf_counter() - start
    assert all(got == job[1] for got, job in zip(opened, jobs))
    return elapsed


def _indirection_best() -> dict[str, float]:
    """Reference sealing, ``routed`` through the provider seam vs the
    pure primitives called ``direct`` (the seed's inline code path).

    A sub-2% effect on ~1.5 ms frames cannot be read off two long
    timed windows — CPU frequency drift across a window swamps it.
    Each frame is instead sealed by *both* arms back to back (order
    alternating), per-arm times accumulated separately, so drift lands
    on both arms equally; best-of-REPEATS as usual.
    """
    enc_key, mac_key, jobs = _bulk_jobs(0)
    best = {"routed": float("inf"), "direct": float("inf")}
    with using_provider("reference") as provider:
        cipher = AES(enc_key)

        def direct_one(nonce, plaintext, ad):
            ciphertext = ctr_transform(cipher, nonce, plaintext)
            header = len(ad).to_bytes(4, "big") + ad
            return ciphertext, HMACSHA256(
                mac_key, header + nonce + ciphertext).digest()

        def routed_one(nonce, plaintext, ad):
            return provider.seal(enc_key, mac_key, nonce, plaintext, ad)

        assert direct_one(*jobs[0]) == routed_one(*jobs[0])  # and warm
        clock = time.perf_counter
        with _gc_pinned():
            for attempt in range(REPEATS):
                t_direct = t_routed = 0.0
                for i, job in enumerate(jobs):
                    pair = ((direct_one, routed_one) if (i + attempt) % 2
                            else (routed_one, direct_one))
                    start = clock()
                    pair[0](*job)
                    mid = clock()
                    pair[1](*job)
                    end = clock()
                    if pair[0] is direct_one:
                        t_direct += mid - start
                        t_routed += end - mid
                    else:
                        t_routed += mid - start
                        t_direct += end - mid
                best["direct"] = min(best["direct"], t_direct)
                best["routed"] = min(best["routed"], t_routed)
    return best


def _handshake_once(backend: str, attempt: int) -> float:
    """Seconds for JOIN_MEMBERS full join handshakes."""
    with using_provider(backend):
        with _gc_pinned():
            start = time.perf_counter()
            net, leader, members = build_itgm_group(
                JOIN_MEMBERS, seed=attempt)
            elapsed = time.perf_counter() - start
    assert leader.members == sorted(members)
    return elapsed


def _rekey_once(backend: str, attempt: int) -> float:
    """Seconds for REKEYS full rekey rounds on a joined group."""
    with using_provider(backend):
        net, leader, members = build_itgm_group(JOIN_MEMBERS, seed=attempt)
        epoch = leader.group_epoch
        with _gc_pinned():
            start = time.perf_counter()
            for _ in range(REKEYS):
                net.post_all(leader.rekey_now())
                net.run()
            elapsed = time.perf_counter() - start
    assert leader.group_epoch == epoch + REKEYS
    return elapsed


def test_crypto_backend_gate():
    bulk = _interleaved_best(BACKENDS, _bulk_seal_once)
    indirection = _indirection_best()
    handshake = _interleaved_best(BACKENDS, _handshake_once)
    rekey = _interleaved_best(BACKENDS, _rekey_once)

    with using_provider("fast") as fast:
        fast_aes = fast.aes_backend
    speedup = bulk["reference"] / bulk["fast"]
    indirection_ratio = indirection["routed"] / indirection["direct"]

    write_bench_record("crypto", {
        "backends": {
            name: {
                "bulk_seal_open_s": bulk[name],
                "bulk_frames_per_s": BULK_FRAMES / bulk[name],
                "handshakes_per_s": JOIN_MEMBERS / handshake[name],
                "rekeys_per_s": REKEYS / rekey[name],
            }
            for name in BACKENDS
        },
        "bulk_frames_per_measurement": BULK_FRAMES,
        "payload_len": PAYLOAD_LEN,
        "repeats": REPEATS,
        "fast_aes_backend": fast_aes,
        "fast_speedup_over_reference": speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "speedup_gate_enforced": fast_aes == "cryptography",
        "provider_indirection": {
            "routed_s": indirection["routed"],
            "direct_s": indirection["direct"],
            "ratio": indirection_ratio,
            "bound": MAX_INDIRECTION,
        },
    })

    assert indirection_ratio <= MAX_INDIRECTION, (
        f"provider indirection {indirection_ratio:.4f} > {MAX_INDIRECTION}"
    )
    if fast_aes != "cryptography":
        pytest.skip(
            "cryptography AES unavailable: fast backend ran on the pure "
            f"block cipher (speedup {speedup:.1f}x recorded, gate skipped)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"fast backend only {speedup:.1f}x reference on bulk sealing "
        f"(gate: {MIN_SPEEDUP}x)"
    )
