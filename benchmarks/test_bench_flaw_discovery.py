"""SEC-2.3 companion: automatic flaw discovery in the legacy model.

Measures time-to-counterexample for each §2.3 weakness when the
explorer searches the symbolic legacy model — the reproduction's
strongest form of the paper's security analysis: the attacks are
*found*, not scripted.  The same search against the improved model
returns clean, which is the paper's claim in one benchmark.
"""

import pytest

from repro.formal.explorer import Explorer
from repro.formal.legacy_model import (
    LEGACY_CHECKS,
    LegacyConfig,
    LegacyEnclavesModel,
)
from repro.formal.model import EnclavesModel, ModelConfig


@pytest.mark.parametrize("check_name", sorted(LEGACY_CHECKS),
                         ids=sorted(LEGACY_CHECKS))
def test_time_to_counterexample(benchmark, check_name):
    config = LegacyConfig(max_sessions=2, max_rekeys=2)

    def discover():
        model = LegacyEnclavesModel(config)
        return Explorer(
            model, checks={check_name: LEGACY_CHECKS[check_name]},
            stop_on_first=True, max_states=200_000,
        ).run()

    result = benchmark(discover)
    assert not result.ok  # the flaw must be found
    benchmark.extra_info["states_to_counterexample"] = result.states_explored
    benchmark.extra_info["trace_length"] = len(result.violations[0].path)


def test_improved_protocol_clean_under_same_search(benchmark):
    config = ModelConfig(max_sessions=2, max_admin=2, spy_budget=1)

    def search():
        return Explorer(EnclavesModel(config), stop_on_first=True).run()

    result = benchmark(search)
    assert result.ok
    benchmark.extra_info["states_certified"] = result.states_explored
